"""Analytic collectives: closed-form barriers, allgathers, and fences.

The op-train fast path (:mod:`repro.rma.train`) removes the per-packet
cost of the *data* plane; what remains on the fig2/halo critical path is
the *control* plane — dissemination barriers, the gather+bcast behind
``expose_collective``, and the flush round trips of
``MPI_RMA_complete_collective``.  Each of those is a fixed message
pattern whose every timestamp is closed-form on an uncontended flat
fabric: injection is a running reservation per NIC, arrival is
``inject + latency`` FIFO-clamped per (src, dst) pair, matching is
``max(posted, arrived)`` plus receive overheads.

:class:`CollectiveNexus` exploits that.  Ranks *enter* a collective and
park on a plain event; the **last** entrant replays the whole exchange
inside a miniature event list (plain ``(time, seq, fn, args)`` heap —
no generators, no Event objects, no packets), using the exact float
arithmetic of :meth:`Nic.send` / :meth:`Fabric.transmit` /
:meth:`MpiEndpoint.irecv`, then commits the results: NIC reservations,
FIFO clamps, traffic counters, op-train materializations at flush
arrivals, and one absolutely-timed wakeup per rank at its computed exit
time.  A ``log2(n)``-round barrier costs ``n`` event-loop interactions
instead of ``O(n log n)`` packet flights with ~6 events each.

Eligibility mirrors the op-train gates and is checked when the first
rank enters (*open*): flat fabric (no topology, no hierarchical
machine), fault-free, untraced, ordered config, no reliable-transport
shims, zero packets in flight, and every RMA engine quiescent (nothing
inbound, gated, or awaiting acks).  Anything else falls back to the
per-packet path untouched.

Correctness of the *late commit* rests on unobservability: while every
rank is parked inside the same collective, no program code runs, so
writing the trajectory's effects at close time is indistinguishable
from having produced them packet by packet.  The one hazard is an
*interloper* — a transmission (or rank kill) by a rank that has not
entered yet.  The fabric hooks :meth:`interrupt` into its transmit
paths; since nothing is committed before close, the nexus can abandon
cleanly by resuming every parked rank onto the real slow path with an
absolutely-timed first charge (``Simulator.wake_at``), provided no
parked rank's first slow-path action lies in the past.  Programs that
mix un-completed non-train traffic with collectives in a way that
violates that window are rejected loudly (RuntimeError) rather than
silently mistimed; the open gates make such programs unreachable from
the repository's workloads and fuzzers.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.mpi.endpoint import payload_nbytes
from repro.network.packet import HEADER_SIZE
from repro.sim.events import DeferredEvent, Event, _PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm
    from repro.runtime import World

__all__ = ["CollectiveNexus"]


class _Unmodelable(Exception):
    """The trajectory hit a state the closed form does not cover."""


class _Entry:
    __slots__ = ("rank", "local", "t", "ev", "obj", "engine", "horizon")

    def __init__(self, rank, local, t, ev, obj, engine, horizon):
        self.rank = rank      # world rank
        self.local = local    # communicator-local rank
        self.t = t            # entry sim time
        self.ev = ev          # park event
        self.obj = obj        # allgather payload
        self.engine = engine  # RmaEngine (complete only)
        #: absolute rescue horizon: the first *irreversible* instant of
        #: this rank's replayed slow path (its first packet delivery),
        #: computed with the replay's exact float grouping.
        self.horizon = horizon


class _Mini:
    """The trajectory's private event list."""

    __slots__ = ("heap", "seq")

    def __init__(self):
        self.heap: list = []
        self.seq = 0

    def at(self, t: float, fn, *args) -> None:
        heapq.heappush(self.heap, (t, self.seq, fn, args))
        self.seq += 1

    def run(self) -> None:
        heap = self.heap
        while heap:
            t, _s, fn, args = heapq.heappop(heap)
            fn(t, *args)


class _Net:
    """Closed-form replica of NIC injection, fabric flight, and message
    matching — same floats, same operand order as the live objects."""

    def __init__(self, world: "World", mini: _Mini):
        self.mini = mini
        fabric = world.fabric
        self.fabric = fabric
        self.cfg = fabric.config
        self.lat = self.cfg.latency
        n = world.n_ranks
        self.res: Dict[int, float] = {}
        self.charge: Dict[int, float] = {}   # call_overhead + overhead_send
        self.orecv: Dict[int, float] = {}
        self.mcopy: Dict[int, float] = {}
        self.eager: Dict[int, int] = {}
        for r in range(n):
            ctx = world.contexts[r]
            ep = ctx.comm.endpoint
            nic = ep.nic
            self.res[r] = nic._reserved_until
            # identical operand order to MpiEndpoint.isend's timeout
            self.charge[r] = ep.timings.call_overhead + nic.config.overhead_send
            self.orecv[r] = nic.config.overhead_recv
            self.mcopy[r] = ep.timings.mem_copy_per_byte
            self.eager[r] = ep.eager_threshold
        self.ld: Dict[Tuple[int, int], float] = {}  # FIFO clamp overlay
        # stat deltas (committed wholesale on clean close)
        self.sends = dict.fromkeys(self.res, 0)
        self.eager_sends = dict.fromkeys(self.res, 0)
        self.recvs = dict.fromkeys(self.res, 0)
        self.unexpected = dict.fromkeys(self.res, 0)
        self.pkts_sent = dict.fromkeys(self.res, 0)
        self.bytes_sent = dict.fromkeys(self.res, 0)
        self.pkts_recv = dict.fromkeys(self.res, 0)
        self.delivered = 0
        self.delivered_bytes = 0
        # exact-key matching: (dst, ctx, tag, src) -> pending post/arrival
        self.slots: Dict[tuple, tuple] = {}
        # ANY_SOURCE matching (gather root): (dst, ctx) -> state
        self.anybuf: Dict[tuple, deque] = {}
        self.anywait: Dict[tuple, tuple] = {}

    # -- NIC / fabric ----------------------------------------------------
    def inject(self, src: int, t: float, wire: int) -> float:
        r = self.res[src]
        base = t if t >= r else r
        inj = base + self.cfg.serialization_time(wire)
        self.res[src] = inj
        self.pkts_sent[src] += 1
        self.bytes_sent[src] += wire
        return inj

    def flight(self, src: int, dst: int, inject: float) -> float:
        arrival = inject + self.lat
        key = (src, dst)
        prev = self.ld.get(key)
        if prev is None:
            prev = self.fabric._last_delivery.get(key, -1.0)
        if arrival <= prev:
            arrival = prev + 1e-9
        self.ld[key] = arrival
        return arrival

    def count_send(self, src: int) -> None:
        self.sends[src] += 1
        self.eager_sends[src] += 1

    def deliver_stats(self, dst: int, wire: int) -> None:
        self.pkts_recv[dst] += 1
        self.delivered += 1
        self.delivered_bytes += wire

    # -- message matching -------------------------------------------------
    def post(self, dst: int, key: tuple, posted: float, cb, meta) -> None:
        full = (dst,) + key
        slot = self.slots.pop(full, None)
        if slot is None:
            self.slots[full] = ("p", posted, cb, meta)
        else:
            _a, arrival, data, nbytes = slot
            self._match(dst, posted, arrival, data, nbytes, cb, meta)

    def arrive_msg(self, now: float, dst: int, key: tuple,
                   data: Any, nbytes: int) -> None:
        self.deliver_stats(dst, HEADER_SIZE + nbytes)
        full = (dst,) + key
        slot = self.slots.pop(full, None)
        if slot is None:
            self.slots[full] = ("a", now, data, nbytes)
        else:
            _p, posted, cb, meta = slot
            self._match(dst, posted, now, data, nbytes, cb, meta)

    def post_any(self, dst: int, ctx: tuple, posted: float, cb, meta) -> None:
        buf = self.anybuf.get((dst, ctx))
        if buf:
            arrival, data, nbytes, tag, srcw = buf.popleft()
            self._match(dst, posted, arrival, data, nbytes, cb, meta,
                        tag, srcw)
        else:
            self.anywait[(dst, ctx)] = (posted, cb, meta)

    def arrive_any(self, now: float, dst: int, ctx: tuple,
                   tag: int, data: Any, nbytes: int, srcw: int) -> None:
        self.deliver_stats(dst, HEADER_SIZE + nbytes)
        waiter = self.anywait.pop((dst, ctx), None)
        if waiter is not None:
            posted, cb, meta = waiter
            self._match(dst, posted, now, data, nbytes, cb, meta, tag, srcw)
        else:
            self.anybuf.setdefault((dst, ctx), deque()).append(
                (now, data, nbytes, tag, srcw))

    def _match(self, dst: int, posted: float, arrival: float, data: Any,
               nbytes: int, cb, meta, tag: int = 0, srcw: int = -1) -> None:
        match = posted if posted >= arrival else arrival
        mc = self.mcopy[dst]
        if arrival < posted:
            self.unexpected[dst] += 1
            copy_cost = nbytes * mc
        else:
            copy_cost = 0.0
        # identical operand order to MpiEndpoint.irecv's receiver timeout
        done = match + (self.orecv[dst] + nbytes * mc + copy_cost)
        self.recvs[dst] += 1
        self.mini.at(done, cb, meta, data, nbytes, tag, srcw)


class CollectiveNexus:
    """World-level analytic fast path for full-communicator collectives.

    One instance per :class:`~repro.runtime.World`, reachable as
    ``sim.context["nexus"]``.  ``Comm.barrier``, ``Comm.allgather`` and
    ``RmaInterface.complete_collective`` offer their entry to it; a
    ``None`` return means "run the per-packet path yourself".
    """

    #: Class-wide toggle (tests pin it off to diff against the real path).
    enabled = True

    def __init__(self, world: "World") -> None:
        self.world = world
        self.sim = world.sim
        self.active = False
        self._abandoned = False
        self._kind: Optional[str] = None
        self._entries: List[_Entry] = []
        self._comm_ctx: Optional[tuple] = None
        self._coll_ctxs: Tuple[tuple, ...] = ()
        #: number of collectives committed analytically (observability)
        self.commits = 0
        self.rescues = 0
        # Collective instances (by their context tuples) where the open
        # check failed for the first entrant: later entrants of the SAME
        # instance must decline too, or half the ranks would run the
        # per-packet protocol against analytically-parked peers.
        # Maps instance key -> number of ranks turned away so far; the
        # map self-cleans once every rank of the instance declined.
        self._declined: dict = {}
        #: window generation — bumped on every reset so stale sentinel
        #: callbacks recognise the window they guarded is gone.
        self._gen = 0
        self._comm_size = 0
        # Earliest *virtual* flush-request arrival per target rank, over
        # every parked "complete" entrant (lower bounds: a standing
        # origin-NIC reservation only pushes the true arrival later).
        # Past that instant the target's engine and NIC reservation are
        # part of the replayed trajectory: note_reserve() rejects local
        # sends that would mutate them, and a rescue *delivers* the
        # overdue flushes through _drain_backdated().
        self._flush_due: Dict[int, float] = {}
        #: deliveries whose computed arrival predates a rescue instant,
        #: queued by Fabric.transmit during the rescue replay and
        #: executed in global arrival order by _drain_backdated().
        self._backdated: List[tuple] = []
        self._backdated_seq = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def _send_horizon(self, t: float, charge: float, cfg) -> float:
        """First-delivery instant of a charge-then-send replay: the
        charge end replays absolutely (``resume_at``), a charge end in
        the past backdates the injection (``inject_from``), so the first
        *irreversible* real instant is the packet's delivery.  The float
        grouping mirrors the replay exactly: ``Nic.send`` computes
        ``max(inject_from, reserved) + ser`` (a reservation beyond the
        charge end only pushes the delivery later) and
        ``Fabric.transmit`` adds the latency on top."""
        return ((t + charge) + cfg.serialization_time(HEADER_SIZE)
                ) + self.world.fabric.config.latency

    def enter_barrier(self, comm: "Comm", ctx: tuple) -> Optional[Event]:
        ep = comm.endpoint
        cfg = ep.nic.config
        horizon = self._send_horizon(
            self.sim.now, ep.timings.call_overhead + cfg.overhead_send, cfg)
        return self._enter("barrier", comm, (ctx,), horizon, None, None)

    def enter_allgather(self, comm: "Comm", obj: Any):
        """Returns ``(park_event, gather_ctx, bcast_ctx)`` or ``None``.

        Consumes both collective contexts itself (the same two the real
        gather+bcast pair would) so a rescued fallback can reuse them.
        """
        ep = comm.endpoint
        if comm.rank == 0:
            horizon = float("inf")  # root's first action is a recv post
        else:
            cfg = ep.nic.config
            horizon = self._send_horizon(
                self.sim.now,
                ep.timings.call_overhead + cfg.overhead_send, cfg)
        gctx = comm._next_coll_ctx()
        bctx = comm._next_coll_ctx()
        ev = self._enter("allgather", comm, (gctx, bctx), horizon, obj, None)
        if ev is None:
            # undo nothing: the caller falls back and must use these
            # exact contexts, so hand them over regardless
            return None, gctx, bctx
        return ev, gctx, bctx

    def enter_complete(self, comm: "Comm", engine) -> Optional[tuple]:
        """Fused ``complete_all`` + barrier.  Returns
        ``(park_event, barrier_ctx)`` or ``None``."""
        bctx = comm._next_coll_ctx()
        # With a flush round trip ahead, a late replay stays exact until
        # the first flush *acknowledgement* would deliver back to this
        # rank: the requests themselves land on engines whose state is
        # frozen from each virtual arrival onward (deliveries are barred
        # by note_transmit, local reservation writes by note_reserve), so
        # a rescue re-delivers them verbatim through _drain_backdated().
        # Without a flush the horizon is just the charge itself (the
        # resume — first ack or a future deferred due — postdates any
        # in-bound rescue instant).
        now = self.sim.now
        flush_dsts = sorted(
            dst for dst, peer in engine._origin_peers.items()
            if peer.outstanding
            and any(rec.ev_remote is None for rec in peer.outstanding))
        if flush_dsts:
            cfg = engine.nic.config
            ser = cfg.serialization_time(HEADER_SIZE)
            lat = self.world.fabric.config.latency
            # Replay float grouping: complete_all resumes at now+CO, the
            # flush requests chain on the origin NIC in sorted(dst) order.
            inject = now + engine.timings.call_overhead
            first_arrival = None
            arrivals = []
            for dst in flush_dsts:
                inject = inject + ser
                arrival = inject + lat
                if first_arrival is None:
                    first_arrival = arrival
                arrivals.append((dst, arrival))
            # First irreversible instant: the earliest flush ack's
            # delivery back here (an idle target answers immediately;
            # anything else only delays it).
            horizon = (first_arrival + ser) + lat
        else:
            arrivals = []
            horizon = now + engine.timings.call_overhead
        ev = self._enter("complete", comm, (bctx,), horizon, None, engine)
        if ev is None:
            return None, bctx
        if self.active:  # window still open (not closed by this entry)
            due = self._flush_due
            for dst, arrival in arrivals:
                prev = due.get(dst)
                if prev is None or arrival < prev:
                    due[dst] = arrival
        return ev, bctx

    # ------------------------------------------------------------------
    def _enter(self, kind: str, comm: "Comm", ctxs: tuple, horizon: float,
               obj: Any, engine) -> Optional[Event]:
        if not self.enabled or self._abandoned:
            return None
        key = (kind, comm.context, ctxs)
        if key in self._declined:
            # A peer already declined this very instance — everyone must
            # take the real path together.
            self._decline(key, comm.size)
            return None
        if (kind == "allgather" and comm.rank != 0
                and payload_nbytes(obj) > comm.endpoint.eager_threshold):
            # Rendezvous-size gather payload: the closed form only covers
            # the eager protocol.  Decline; if peers are already parked on
            # this instance, pull them back onto the real path too.
            if self.active:
                self._rescue("rendezvous-size allgather payload")
            self._decline(key, comm.size)
            return None
        if not self.active:
            if not self._open_ok(comm):
                self._decline(key, comm.size)
                return None
            self._kind = kind
            self._comm_ctx = comm.context
            self._coll_ctxs = ctxs
            self._comm_size = comm.size
        elif (kind != self._kind or comm.context != self._comm_ctx
                or ctxs != self._coll_ctxs):
            # Mismatched concurrent collectives (only possible with
            # derived comms racing COMM_WORLD) — bail out to the real
            # path for everyone, on both instances.
            self._rescue("mismatched collective entries")
            self._decline(key, comm.size)
            return None
        ev = self.sim.event()
        self._entries.append(_Entry(comm.endpoint.rank, comm.rank,
                                    self.sim.now, ev, obj, engine, horizon))
        self.active = True
        self.world.fabric._nexus_active = True
        if len(self._entries) == comm.size:
            self._close(comm)
        elif horizon != float("inf"):
            # Sentinel: the window may only stay open while every parked
            # rank is still replayable.  At this entrant's horizon — the
            # first irreversible instant of its replayed slow path —
            # abandon the window unless everyone has arrived, so a rescue
            # is in-bounds *by construction* no matter when real traffic
            # or a straggler forces one.
            self.sim.schedule_call_at(horizon, self._sentinel, self._gen)
        return ev

    def _decline(self, key: tuple, size: int) -> None:
        # Count declines per instance; the map self-cleans once every
        # rank of the instance has been turned away.
        cnt = self._declined.get(key, 0) + 1
        if cnt >= size:
            self._declined.pop(key, None)
        else:
            self._declined[key] = cnt

    def _open_ok(self, comm: "Comm") -> bool:
        world = self.world
        if comm.size != world.n_ranks or comm.size < 2:
            return False
        fabric = world.fabric
        if (fabric._topo is not None or fabric._faulty
                or fabric.tracer.enabled or fabric.intra_config is not None
                or fabric._in_flight or not fabric.config.ordered):
            return False
        from repro.network.nic import Nic
        from repro.rma.engine import _TRAIN_MUTATIONS, RmaEngine

        if not RmaEngine.train_enabled or not Nic.burst_enabled:
            return False
        for r in range(world.n_ranks):
            ctx = world.contexts[r]
            eng = ctx.rma.engine
            nic = eng.nic
            if nic.transport is not None or nic._pending:
                return False
            if nic._scheduled:
                return False
            ep = ctx.comm.endpoint
            if ep._inbox._items or ep._rdv_out or ep._rdv_in:
                return False
            if (eng._flush_waiters or eng._pending_gets
                    or eng._pending_replies or eng._sw_ack_waiters):
                return False
            if not eng.conformance_mutations <= _TRAIN_MUTATIONS:
                return False
            for tpeer in eng._target_peers.values():
                if tpeer.inbound or tpeer.gated or tpeer.flush_waiters:
                    return False
            ser = eng.serializer
            if getattr(ser, "queue_depth", 0):
                return False
            if getattr(ser, "_pending", None):
                return False
            if getattr(ser, "_held_by", -1) != -1 or getattr(
                    ser, "_wait_queue", None):
                return False
        return True

    # ------------------------------------------------------------------
    # Interrupt / rescue
    # ------------------------------------------------------------------
    def note_reserve(self, rank: int) -> None:
        """A rank is about to read-and-write its NIC serializer
        reservation while a window is open.  Harmless — the trajectory
        reads live NIC state at close — *unless* a parked entrant's
        flush request virtually arrived at this rank earlier: from that
        instant on the reservation is an *input* to the replayed flush
        acknowledgement, and advancing it now would make a later commit
        inexact.  Rescue synchronously instead: every parked generator
        replays its sends inline, the overdue flush requests are
        delivered (and acknowledged, reserving this very NIC at the
        true instants) by the drain, and only then does the caller
        proceed against the — now correct — reservation."""
        if self.active:
            due = self._flush_due.get(rank)
            if due is not None and self.sim.now > due:
                self._rescue("new traffic at a rank already holding a "
                             "parked peer's virtual flush request",
                             sync=True)

    def queue_backdated(self, arrival: float, packet) -> None:
        """A rescue replay produced a delivery whose computed arrival
        predates the rescue instant (a flush request to an engine whose
        state is frozen since that arrival — see note_reserve).  Queue it;
        _drain_backdated executes the queue in global arrival order after
        every rescued generator has replayed its sends."""
        self._backdated.append((arrival, self._backdated_seq, packet))
        self._backdated_seq += 1

    def deliver_due(self, rank: int, upto: float) -> None:
        """Phase-one interleaving: a rescued generator is about to claim
        ``rank``'s serializer for a send replayed at ``upto``.  Queued
        backdated deliveries to that rank with ``arrival <= upto`` claimed
        the serializer *first* in the live order (their handlers ran at
        the arrival instants) — execute them now, in arrival order,
        before the caller reads the reservation."""
        queue = self._backdated
        if not queue:
            return
        mine = [e for e in queue if e[2].dst == rank and e[0] <= upto]
        if not mine:
            return
        self._backdated = [e for e in queue
                           if not (e[2].dst == rank and e[0] <= upto)]
        mine.sort()
        self._deliver_backdated(mine)

    def _drain_backdated(self) -> None:
        queue, self._backdated = self._backdated, []
        if queue:
            queue.sort()
            self._deliver_backdated(queue)

    def _deliver_backdated(self, queue: List[tuple]) -> None:
        fabric = self.world.fabric
        contexts = self.world.contexts
        for arrival, _seq, packet in queue:
            if packet.kind != "rma.flush_req" or packet.want_ack:
                raise RuntimeError(
                    f"unreplayable backdated delivery: {packet.kind} to "
                    f"rank {packet.dst} at {arrival}")
            # Mirror Fabric._deliver at `arrival` exactly: op-trains that
            # analytically landed first materialize first, counters bump,
            # then the real handler runs.  Its acknowledgement send picks
            # the arrival up as its injection base (Nic._backdate), so
            # the ack timeline matches a live delivery bit for bit.
            fabric._in_flight -= 1
            nic = contexts[packet.dst].rma.engine.nic
            nic._backdate = arrival
            try:
                fabric.materialize_trains_upto(packet.dst, arrival)
                fabric.packets_delivered += 1
                fabric.bytes_delivered += packet.wire_bytes
                fabric._deliver_fns[packet.dst](packet)
            finally:
                nic._backdate = None

    def note_transmit(self) -> None:
        """A real packet hit the fabric while a window was open: abandon
        the window before anything is committed.  The sentinel guarantees
        this is always replayable — past the earliest entrant's bound the
        window has already dissolved itself, so no transmit can ever
        interrupt an unrescuable window."""
        if self.active:
            self._rescue("real traffic interleaved with an analytic "
                         "collective window")

    def _sentinel(self, gen: int) -> None:
        """Fires at an entrant's rescue bound.  If the window it guarded
        is still open (a peer is late), dissolve it now while every
        parked rank can still replay its first charge exactly."""
        if self.active and gen == self._gen:
            self._rescue("collective entry skew exceeded the rescue "
                         "bound")

    def interrupt(self) -> None:
        """A rank kill (or other hard fabric mutation) while ranks were
        parked: abandon the analytic window before anything is
        committed, and never engage again this run."""
        if self.active:
            self._rescue("fabric mutated under an analytic collective "
                         "window", abandon=True)
        else:
            self._abandoned = True

    def _rescue(self, reason: str, abandon: bool = False,
                sync: bool = False) -> None:
        now = self.sim.now
        for ent in self._entries:
            if now > ent.horizon:
                raise RuntimeError(
                    f"analytic collective cannot be abandoned: rank "
                    f"{ent.rank} entered at {ent.t} and its first "
                    f"slow-path action predates {now} ({reason}); set "
                    f"CollectiveNexus.enabled = False to force the "
                    f"per-packet path")
        entries = self._entries
        # Ranks of this instance that have NOT entered yet must take the
        # real path too — pre-mark the instance as declined on their
        # behalf so they join the rescued ranks on the wire.
        if len(entries) < self._comm_size:
            key = (self._kind, self._comm_ctx, self._coll_ctxs)
            self._declined[key] = len(entries)
        self._reset(abandoned=abandon)
        self.rescues += 1
        if sync:
            # The caller (note_reserve) must observe the fully replayed
            # state before it continues: resume every rescued generator
            # inline, then execute the backdated deliveries their
            # replays produced.
            for ent in entries:
                ent.ev.succeed_now(("rescue", ent.t))
            self._drain_backdated()
            return
        for ent in entries:
            ent.ev.succeed(("rescue", ent.t))
        # Event.succeed defers its callbacks through the urgent FIFO, so
        # enqueueing the drain *after* the loop runs it once every rescued
        # generator has resumed and replayed its (possibly backdated)
        # sends — phase two of the rescue, in global arrival order.
        self.sim.schedule_urgent_call(self._drain_backdated)

    def _reset(self, abandoned: bool = False) -> None:
        self._entries = []
        self._kind = None
        self._comm_ctx = None
        self._coll_ctxs = ()
        self._flush_due = {}
        self.active = False
        self._gen += 1
        self.world.fabric._nexus_active = False
        if abandoned:
            self._abandoned = True

    # ------------------------------------------------------------------
    # Close: compute, then commit
    # ------------------------------------------------------------------
    def _close(self, comm: "Comm") -> None:
        try:
            traj = self._compute(comm)
        except _Unmodelable as exc:
            self._rescue(str(exc))
            return
        self._commit(traj)

    def _compute(self, comm: "Comm") -> dict:
        world = self.world
        mini = _Mini()
        net = _Net(world, mini)
        n = comm.size
        wmap = comm.group.world_ranks
        exits: List[tuple] = []   # (time, mini_seq, park_ev, value)
        mats: List[tuple] = []    # (dst_world, upto) in chronological order
        flush_next: Dict[int, int] = {}
        swaps: List[tuple] = []   # (_OriginPeer,) to completing-swap
        kind = self._kind

        def record_exit(ent: _Entry, t: float, value: Any) -> None:
            exits.append((t, mini.seq, ent.ev, value))
            mini.seq += 1

        # -- dissemination barrier (used standalone and by "complete") --
        def barrier_begin(t: float, ent: _Entry, ctx: tuple) -> None:
            barrier_step(t, ent, ctx, 0, 1)

        def barrier_step(t: float, ent: _Entry, ctx: tuple,
                         k: int, dist: int) -> None:
            if dist >= n:
                record_exit(ent, t, None)
                return
            mini.at(t + net.charge[ent.rank], barrier_send,
                    ent, ctx, k, dist)

        def barrier_send(t: float, ent: _Entry, ctx: tuple,
                         k: int, dist: int) -> None:
            net.count_send(ent.rank)
            inject = net.inject(ent.rank, t, HEADER_SIZE)
            mini.at(inject, barrier_sent, ent, ctx, k, dist)

        def barrier_sent(t: float, ent: _Entry, ctx: tuple,
                         k: int, dist: int) -> None:
            # the rank resumes inline at injection: it posts the round's
            # receive *before* the fabric computes the flight
            srcw = wmap[(ent.local - dist) % n]
            net.post(ent.rank, (ctx, k, srcw), t, barrier_got,
                     (ent, ctx, k, dist))
            dstw = wmap[(ent.local + dist) % n]
            arrival = net.flight(ent.rank, dstw, t)
            mini.at(arrival, net.arrive_msg, dstw, (ctx, k, ent.rank),
                    None, 0)

        def barrier_got(t: float, meta, _data, _nb, _tag, _src) -> None:
            ent, ctx, k, dist = meta
            barrier_step(t, ent, ctx, k + 1, dist << 1)

        if kind == "barrier":
            ctx = self._coll_ctxs[0]
            for ent in self._entries:
                barrier_begin(ent.t, ent, ctx)

        # -- allgather = linear gather to local 0, binomial bcast -------
        elif kind == "allgather":
            gctx, bctx = self._coll_ctxs
            rootw = wmap[0]
            out: List[Any] = [None] * n
            ents_by_local = {ent.local: ent for ent in self._entries}
            out[0] = ents_by_local[0].obj
            nb_of = {}
            for ent in self._entries:
                nb = payload_nbytes(ent.obj)
                if ent.local != 0 and nb > net.eager[ent.rank]:
                    raise _Unmodelable("rendezvous-size allgather payload")
                nb_of[ent.local] = nb
            nb_list: List[int] = []  # pickled size of the gathered list

            def gathered_nbytes() -> int:
                if not nb_list:
                    nb = payload_nbytes(out)
                    for ent in self._entries:
                        if nb > net.eager[ent.rank]:
                            raise _Unmodelable(
                                "rendezvous-size gathered list")
                    nb_list.append(nb)
                return nb_list[0]

            def bcast_forward(t: float, ent: _Entry, mask: int,
                              data: Any) -> None:
                while mask > 0 and ent.local + mask >= n:
                    mask >>= 1
                if mask == 0:
                    record_exit(ent, t, data)
                    return
                mini.at(t + net.charge[ent.rank], bcast_send,
                        ent, mask, data)

            def bcast_send(t: float, ent: _Entry, mask: int,
                           data: Any) -> None:
                nb = gathered_nbytes()
                net.count_send(ent.rank)
                inject = net.inject(ent.rank, t, HEADER_SIZE + nb)
                mini.at(inject, bcast_sent, ent, mask, data, nb)

            def bcast_sent(t: float, ent: _Entry, mask: int,
                           data: Any, nb: int) -> None:
                dstw = wmap[(ent.local + mask) % n]
                arrival = net.flight(ent.rank, dstw, t)
                mini.at(arrival, net.arrive_msg, dstw,
                        (bctx, 0, ent.rank), data, nb)
                bcast_forward(t, ent, mask >> 1, data)

            def bcast_got(t: float, meta, data, _nb, _tag, _src) -> None:
                ent, mask = meta
                bcast_forward(t, ent, mask >> 1, data)

            def ng_send(t: float, ent: _Entry) -> None:
                net.count_send(ent.rank)
                inject = net.inject(ent.rank, t,
                                    HEADER_SIZE + nb_of[ent.local])
                mini.at(inject, ng_sent, ent)

            def ng_sent(t: float, ent: _Entry) -> None:
                # back from the gather send: this rank is a bcast
                # receiver — find its subtree parent and post the recv
                mask = 1
                while not (ent.local & mask):
                    mask <<= 1
                srcw = wmap[(ent.local - mask) % n]
                net.post(ent.rank, (bctx, 0, srcw), t, bcast_got,
                         (ent, mask))
                arrival = net.flight(ent.rank, rootw, t)
                mini.at(arrival, net.arrive_any, rootw, gctx, ent.local,
                        ents_by_local[ent.local].obj, nb_of[ent.local],
                        ent.rank)

            def root_recv(t: float, got: int) -> None:
                ent = ents_by_local[0]
                if got == n - 1:
                    top = 1
                    while top < n:
                        top <<= 1
                    bcast_forward(t, ent, top >> 1, out)
                    return
                net.post_any(rootw, gctx, t, root_got, got)

            def root_got(t: float, got, data, _nb, tag, _src) -> None:
                out[tag] = data
                root_recv(t, got + 1)

            for ent in self._entries:
                if ent.local == 0:
                    root_recv(ent.t, 0)
                else:
                    mini.at(ent.t + net.charge[ent.rank], ng_send, ent)

        # -- complete_all + barrier (MPI_RMA_complete_collective) -------
        elif kind == "complete":
            bctx = self._coll_ctxs[0]

            def complete_start(t: float, ent: _Entry) -> None:
                eng = ent.engine
                me = ent.rank
                times: List[float] = []
                pending = 0
                for dst in sorted(eng._origin_peers):
                    peer = eng._origin_peers[dst]
                    if not peer.outstanding:
                        continue
                    if peer.broken:
                        raise _Unmodelable("broken path at complete")
                    watermark = 0
                    due_max = -1.0
                    for rec in peer.outstanding:
                        ev = rec.ev_remote
                        if ev is None:
                            if rec.seq > watermark:
                                watermark = rec.seq
                        elif (ev._value is _PENDING
                                and ev._exception is None):
                            if type(ev) is not DeferredEvent or ev._armed:
                                raise _Unmodelable(
                                    "pending non-analytic completion")
                            # the per-packet path observes it at t: past
                            # due it auto-fires (no wait); otherwise the
                            # bulk-arm retires the group at max(due)
                            if ev.due > t and ev.due > due_max:
                                due_max = ev.due
                        # else: already triggered, contributes no wait
                    if due_max > t:
                        times.append(due_max)
                    if watermark:
                        flush_next[me] = flush_next.get(
                            me, eng._next_flush_id) + 1
                        inject = net.inject(me, t, HEADER_SIZE)
                        arrival = net.flight(me, dst, inject)
                        pending += 1
                        mini.at(arrival, flush_req_arrive, ent, dst)
                    swaps.append((peer,))
                ent_state[ent.local] = [times, pending]
                if pending == 0:
                    resume = max(times) if times else t
                    if resume == t:
                        barrier_begin(t, ent, bctx)
                    else:
                        mini.at(resume, barrier_begin, ent, bctx)

            def flush_req_arrive(t: float, ent: _Entry, dst: int) -> None:
                net.deliver_stats(dst, HEADER_SIZE)
                # every op covered by the watermark is an op-train
                # element whose analytic arrival predates this flight
                # (same-NIC reservation chaining + per-pair FIFO), so
                # the target answers immediately after materializing
                mats.append((dst, t))
                inject = net.inject(dst, t, HEADER_SIZE)
                arrival = net.flight(dst, ent.rank, inject)
                mini.at(arrival, flush_ack_arrive, ent)

            def flush_ack_arrive(t: float, ent: _Entry) -> None:
                net.deliver_stats(ent.rank, HEADER_SIZE)
                times, pending = state = ent_state[ent.local]
                times.append(t)
                state[1] = pending - 1
                if state[1] == 0:
                    # AllOf completes at the last contribution; acks are
                    # processed chronologically so that is simply `t`,
                    # unless a deferred due lies even later
                    resume = max(times)
                    if resume == t:
                        barrier_begin(t, ent, bctx)
                    else:
                        mini.at(resume, barrier_begin, ent, bctx)

            ent_state: Dict[int, list] = {}
            for ent in self._entries:
                mini.at(ent.t + ent.engine.timings.call_overhead,
                        complete_start, ent)

        else:  # pragma: no cover - defensive
            raise _Unmodelable(f"unknown collective kind {kind!r}")

        mini.run()
        if len(exits) != n:
            raise _Unmodelable("collective trajectory did not converge")
        return {
            "net": net,
            "exits": sorted(exits, key=lambda e: (e[0], e[1])),
            "mats": mats,
            "flush_next": flush_next,
            "swaps": swaps,
            "kind": kind,
        }

    def _commit(self, traj: dict) -> None:
        world = self.world
        sim = self.sim
        fabric = world.fabric
        net: _Net = traj["net"]
        for r, reserved in net.res.items():
            ctx = world.contexts[r]
            ep = ctx.comm.endpoint
            nic = ep.nic
            nic._reserved_until = reserved
            nic.packets_sent += net.pkts_sent[r]
            nic.bytes_sent += net.bytes_sent[r]
            nic.packets_received += net.pkts_recv[r]
            ep.sends += net.sends[r]
            ep.eager_sends += net.eager_sends[r]
            ep.recvs += net.recvs[r]
            ep.unexpected_matches += net.unexpected[r]
        fabric._last_delivery.update(net.ld)
        fabric.packets_delivered += net.delivered
        fabric.bytes_delivered += net.delivered_bytes
        if traj["kind"] == "complete":
            for ent in self._entries:
                eng = ent.engine
                eng.stats["completes"] += 1
                nxt = traj["flush_next"].get(ent.rank)
                if nxt is not None:
                    eng._next_flush_id = nxt
            for (peer,) in traj["swaps"]:
                peer.completing, peer.outstanding = peer.outstanding, []
            for dst, upto in traj["mats"]:
                fabric.materialize_trains_upto(dst, upto)
        self.commits += 1
        self._reset()
        for t, _seq, ev, value in traj["exits"]:
            sim.schedule_call_at(t, ev.succeed, ("ok", value))
