"""Groups, communicators, and collective algorithms.

Communicators carry a *context* — a tuple that isolates their traffic
from every other communicator's (the simulation analogue of MPI context
ids).  Collectives additionally stamp a per-comm sequence number into
the match context, so back-to-back collectives can never interfere even
on an unordered fabric.

Algorithms are the textbook ones: dissemination barrier, binomial-tree
broadcast and reduction, linear gather/scatter.  They exist both as a
substrate (the RMA layers use barriers and bcasts in their collective
completion calls) and as the two-sided baseline the paper's latency
ablation compares against.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, MAX_USER_TAG
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.request import Request, Status

__all__ = ["Group", "Comm"]


class Group:
    """An ordered set of world ranks."""

    def __init__(self, world_ranks: Sequence[int]) -> None:
        ranks = list(world_ranks)
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in group")
        self._ranks: Tuple[int, ...] = tuple(ranks)
        self._index = {wr: i for i, wr in enumerate(self._ranks)}

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def world_ranks(self) -> Tuple[int, ...]:
        return self._ranks

    def world_rank(self, local_rank: int) -> int:
        """Translate a group-local rank to a world rank."""
        if local_rank < 0 or local_rank >= self.size:
            raise ValueError(f"local rank {local_rank} out of range")
        return self._ranks[local_rank]

    def local_rank(self, world_rank: int) -> Optional[int]:
        """Translate a world rank to this group, or ``None`` if absent."""
        return self._index.get(world_rank)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Group {self._ranks}>"


class Comm:
    """A communicator bound to one rank's endpoint.

    All communication methods are generators (``yield from``).  Ranks in
    every argument/return are *communicator-local*.
    """

    def __init__(
        self, endpoint: MpiEndpoint, group: Group, context: Tuple
    ) -> None:
        if endpoint.rank not in group:
            raise ValueError(
                f"rank {endpoint.rank} is not a member of {group!r}"
            )
        self.endpoint = endpoint
        self.group = group
        self.context = context
        self.rank: int = group.local_rank(endpoint.rank)  # type: ignore[assignment]
        self.size: int = group.size
        self._coll_seq = 0
        self._derive_seq = 0

    @property
    def sim(self):
        """The owning simulator (convenience for timeouts etc.)."""
        return self.endpoint.sim

    # -- contexts -------------------------------------------------------
    def _user_ctx(self) -> Tuple:
        return ("u",) + self.context

    def _next_coll_ctx(self) -> Tuple:
        ctx = ("c",) + self.context + (self._coll_seq,)
        self._coll_seq += 1
        return ctx

    # -- point to point --------------------------------------------------
    def _world(self, local: int) -> int:
        return self.group.world_rank(local)

    def _check_tag(self, tag: int) -> None:
        if tag != ANY_TAG and (tag < 0 or tag > MAX_USER_TAG):
            raise ValueError(f"tag {tag} outside 0..{MAX_USER_TAG}")

    def isend(self, obj: Any, dest: int, tag: int = 0):
        """Nonblocking send; returns a :class:`Request` (``yield from``)."""
        self._check_tag(tag)
        req = yield from self.endpoint.isend(
            obj, self._world(dest), tag, self._user_ctx()
        )
        return req

    def send(self, obj: Any, dest: int, tag: int = 0):
        """Blocking send."""
        self._check_tag(tag)
        yield from self.endpoint.send(obj, self._world(dest), tag, self._user_ctx())

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; request value is the received object."""
        if tag != ANY_TAG:
            self._check_tag(tag)
        world_src = ANY_SOURCE if source == ANY_SOURCE else self._world(source)
        return self.endpoint.irecv(world_src, tag, self._user_ctx())

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the object."""
        req = self.irecv(source, tag)
        obj = yield from req.wait()
        return obj

    def recv_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns ``(object, Status)`` with the source
        translated to a communicator-local rank."""
        req = self.irecv(source, tag)
        obj = yield from req.wait()
        st = req.status
        assert st is not None
        local_src = self.group.local_rank(st.source)
        return obj, Status(source=local_src, tag=st.tag, nbytes=st.nbytes)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0):
        """Combined send+receive (deadlock-free)."""
        sreq = yield from self.isend(obj, dest, tag)
        got = yield from self.recv(source, tag)
        yield from sreq.wait()
        return got

    # -- collectives -----------------------------------------------------
    def barrier(self, _ctx=None, _resume_at=None):
        """Dissemination barrier: ceil(log2(n)) rounds.

        ``_ctx``/``_resume_at`` are internal: a caller falling back from
        the collective nexus passes the context it already consumed and
        (when rescued out of an abandoned window) the absolute instant
        its first send charge would have ended.
        """
        ctx = self._next_coll_ctx() if _ctx is None else _ctx
        n = self.size
        if n == 1:
            return
        if _ctx is None:
            nexus = self.sim.context.get("nexus")
            if nexus is not None:
                ev = nexus.enter_barrier(self, ctx)
                if ev is not None:
                    state, val = yield ev
                    if state == "ok":
                        return
                    # rescued: replay the first charge at its exact end
                    _resume_at = val + (
                        self.endpoint.timings.call_overhead
                        + self.endpoint.nic.config.overhead_send
                    )
        k = 0
        dist = 1
        while dist < n:
            dst = (self.rank + dist) % n
            src = (self.rank - dist) % n
            yield from self.endpoint.send(None, self._world(dst), k, ctx,
                                          resume_at=_resume_at)
            _resume_at = None
            yield from self.endpoint.recv(self._world(src), k, ctx)
            dist <<= 1
            k += 1

    def bcast(self, obj: Any, root: int = 0, _ctx=None):
        """Binomial-tree broadcast; returns the object on every rank."""
        ctx = self._next_coll_ctx() if _ctx is None else _ctx
        n = self.size
        if n == 1:
            return obj
        relative = (self.rank - root) % n
        mask = 1
        while mask < n:
            if relative & mask:
                src = (self.rank - mask) % n
                obj = yield from self.endpoint.recv(self._world(src), 0, ctx)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if relative + mask < n:
                dst = (self.rank + mask) % n
                yield from self.endpoint.send(obj, self._world(dst), 0, ctx)
            mask >>= 1
        return obj

    def gather(self, obj: Any, root: int = 0, _ctx=None, _entry=None):
        """Linear gather; returns the list at root, ``None`` elsewhere.

        ``_entry`` is the original entry time of a rank rescued out of
        an abandoned analytic allgather: the root backdates its first
        receive post to it, senders replay their first charge from it.
        """
        ctx = self._next_coll_ctx() if _ctx is None else _ctx
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = obj
            posted_at = _entry
            for _ in range(self.size - 1):
                data, st = yield from self.endpoint.recv_status(
                    ANY_SOURCE, ANY_TAG, ctx, posted_at=posted_at
                )
                posted_at = None
                out[st.tag] = data  # tag carries the sender's local rank
            return out
        resume_at = None
        if _entry is not None:
            resume_at = _entry + (self.endpoint.timings.call_overhead
                                  + self.endpoint.nic.config.overhead_send)
        yield from self.endpoint.send(obj, self._world(root), self.rank, ctx,
                                      resume_at=resume_at)
        return None

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0):
        """Root sends ``objs[i]`` to local rank ``i``; returns own item."""
        ctx = self._next_coll_ctx()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter root needs exactly `size` items")
            for dst in range(self.size):
                if dst != root:
                    yield from self.endpoint.send(
                        objs[dst], self._world(dst), 0, ctx
                    )
            return objs[root]
        item = yield from self.endpoint.recv(self._world(root), 0, ctx)
        return item

    def allgather(self, obj: Any):
        """Gather to rank 0 then broadcast; returns the full list."""
        nexus = self.sim.context.get("nexus")
        if nexus is None:
            gathered = yield from self.gather(obj, root=0)
            out = yield from self.bcast(gathered, root=0)
            return out
        ev, gctx, bctx = nexus.enter_allgather(self, obj)
        entry = None
        if ev is not None:
            state, val = yield ev
            if state == "ok":
                return val
            entry = val  # rescued: replay with the original entry time
        gathered = yield from self.gather(obj, root=0, _ctx=gctx,
                                          _entry=entry)
        out = yield from self.bcast(gathered, root=0, _ctx=bctx)
        return out

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0):
        """Binomial-tree reduction; result at root, ``None`` elsewhere.

        ``op`` must be associative; reduction order is deterministic.
        """
        ctx = self._next_coll_ctx()
        n = self.size
        relative = (self.rank - root) % n
        result = obj
        mask = 1
        while mask < n:
            if relative & mask == 0:
                src_rel = relative | mask
                if src_rel < n:
                    src = (src_rel + root) % n
                    data = yield from self.endpoint.recv(self._world(src), 0, ctx)
                    result = op(result, data)
            else:
                dst_rel = relative & ~mask
                dst = (dst_rel + root) % n
                yield from self.endpoint.send(result, self._world(dst), 0, ctx)
                return None
            mask <<= 1
        return result if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]):
        """Reduce to rank 0 then broadcast the result to all."""
        partial = yield from self.reduce(obj, op, root=0)
        out = yield from self.bcast(partial, root=0)
        return out

    def alltoall(self, objs: Sequence[Any]):
        """Everyone sends ``objs[i]`` to rank ``i``; returns a list
        indexed by source rank."""
        if len(objs) != self.size:
            raise ValueError("alltoall needs exactly `size` items")
        ctx = self._next_coll_ctx()
        sreqs = []
        for dst in range(self.size):
            if dst == self.rank:
                continue
            req = yield from self.endpoint.isend(
                objs[dst], self._world(dst), self.rank, ctx
            )
            sreqs.append(req)
        out: List[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for _ in range(self.size - 1):
            data, st = yield from self.endpoint.recv_status(ANY_SOURCE, ANY_TAG, ctx)
            out[st.tag] = data
        yield from Request.waitall(sreqs)
        return out

    # -- derived communicators --------------------------------------------
    def dup(self):
        """Collective duplicate with a fresh context."""
        ctx = self.context + ("dup", self._derive_seq)
        self._derive_seq += 1
        yield from self.barrier()
        return Comm(self.endpoint, self.group, ctx)

    def split(self, color: int, key: int = 0):
        """Partition into sub-communicators by ``color`` (MPI_Comm_split).

        Returns the new communicator, or ``None`` for ``color=None``.
        """
        triples = yield from self.allgather((color, key, self.rank))
        new_ctx = self.context + ("split", self._derive_seq)
        self._derive_seq += 1
        if color is None:
            return None
        members = sorted(
            (
                (k, r)
                for (c, k, r) in triples
                if c == color
            ),
        )
        world = [self.group.world_rank(r) for _, r in members]
        return Comm(self.endpoint, Group(world), new_ctx + (color,))

    # -- failure recovery (ULFM-style) ------------------------------------
    def shrink(self, dead) -> Optional["Comm"]:
        """Survivor communicator excluding the ``dead`` world ranks.

        Unlike MPI's ``MPI_Comm_shrink`` this is *not* itself a
        collective: every survivor constructs the identical group and
        context purely locally from the agreed-on dead set (use
        :meth:`agree` first to reach that agreement), so no message ever
        has to transit a failed process.  The first collective on the
        returned communicator synchronizes the survivors.

        Returns ``None`` when the calling rank is itself in ``dead``.
        ``dead`` holds *world* ranks (the detector's currency); ranks
        not in this communicator are ignored.
        """
        dead = frozenset(dead)
        survivors = [wr for wr in self.group.world_ranks if wr not in dead]
        if self.endpoint.rank in dead or not survivors:
            return None
        # The context derives from the dead set, not a per-rank counter:
        # every survivor computes the same tuple without communicating.
        ctx = self.context + ("shrink", tuple(sorted(
            wr for wr in dead if wr in self.group)))
        return Comm(self.endpoint, Group(survivors), ctx)

    def agree(self, dead, flag: bool = True):
        """Fault-tolerant agreement among the survivors (``yield from``).

        Every survivor passes its locally suspected ``dead`` world-rank
        set (normally the failure detector's converged view — see
        DESIGN §13 for the convergence requirement) plus a local
        ``flag``.  Returns ``(all_flags, agreed_dead)``: the logical
        AND of every survivor's flag and the union of their dead sets,
        identical on all survivors — MPI ULFM's ``MPIX_Comm_agree``
        shape.  The exchange itself runs on the shrunk survivor group,
        so it cannot block on a failed process.
        """
        dead = frozenset(dead)
        scomm = self.shrink(dead)
        if scomm is None:
            raise ValueError("agree() called by a rank in the dead set")
        views = yield from scomm.allgather(
            (bool(flag), tuple(sorted(dead))))
        agreed = set()
        verdict = True
        for f, d in views:
            verdict = verdict and f
            agreed.update(d)
        return verdict, frozenset(agreed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm rank={self.rank}/{self.size} ctx={self.context}>"
