"""Per-rank MPI endpoint: wire protocol and tag matching.

One :class:`MpiEndpoint` exists per rank.  It owns the ``p2p.*`` packet
handlers and a matching engine (a predicate
:class:`~repro.sim.resources.Channel`), and exposes the primitive
``isend``/``irecv`` that :class:`~repro.mpi.comm.Comm` builds on.

Two transfer protocols, as in real MPI libraries:

- **eager** (payload ≤ ``eager_threshold``): the data rides the first
  packet.  If it arrives before the matching receive is posted it sits
  in the unexpected-message queue and the receiver pays an extra copy
  when it finally matches.
- **rendezvous** (larger): the sender ships a ready-to-send (RTS)
  envelope; the receiver answers clear-to-send (CTS) once the receive
  is posted; only then does the payload move — straight into the posted
  buffer, no unexpected copy, at the price of a round trip.

Matching is FIFO per (context, source, tag), preserving MPI's
non-overtaking rule — on an *ordered* fabric.  On an unordered fabric
two same-tag messages may arrive swapped, which is faithful to why MPI
implementations add sequence numbers; we keep the raw behaviour visible
because the RMA ordering-attribute benches rely on it.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Tuple

import numpy as np

from repro.machine.config import MachineTimings
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request, Status
from repro.network.nic import Nic
from repro.network.packet import Packet
from repro.sim.resources import Channel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["MpiEndpoint", "Message", "payload_nbytes"]

#: Messages larger than this use the rendezvous protocol (bytes).
DEFAULT_EAGER_THRESHOLD = 16384

_msg_ids = itertools.count(1)


def payload_nbytes(obj: Any) -> int:
    """Wire size estimate for an arbitrary Python payload."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    if isinstance(obj, (int, float, bool)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


@dataclass(frozen=True)
class Message:
    """A matchable envelope (eager payload or rendezvous RTS)."""

    context: Tuple
    src: int
    tag: int
    data: Any
    nbytes: int
    arrived_at: float
    rdv_id: int = 0  # nonzero: RTS of a rendezvous transfer


class MpiEndpoint:
    """The per-rank messaging engine."""

    def __init__(
        self,
        sim: "Simulator",
        rank: int,
        nic: Nic,
        timings: MachineTimings,
        eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.nic = nic
        self.timings = timings
        self.eager_threshold = eager_threshold
        self._inbox = Channel(sim)
        #: sender side: rendezvous payloads awaiting CTS
        self._rdv_out: Dict[int, Tuple[Any, Any]] = {}  # id -> (data, req_ev)
        #: receiver side: events per rendezvous payload arrival
        self._rdv_in: Dict[int, Any] = {}
        nic.register_handler("p2p.msg", self._on_message)
        nic.register_handler("p2p.rts", self._on_rts)
        nic.register_handler("p2p.cts", self._on_cts)
        nic.register_handler("p2p.data", self._on_data)
        # stats
        self.sends = 0
        self.recvs = 0
        self.eager_sends = 0
        self.rdv_sends = 0
        self.unexpected_matches = 0

    # -- receive-side packet handlers -------------------------------------
    def _on_message(self, packet: Packet) -> None:
        p = packet.payload
        self._inbox.put(
            Message(
                context=p["context"],
                src=packet.src,
                tag=p["tag"],
                data=p["data"],
                nbytes=packet.data_bytes,
                arrived_at=self.sim.now,
            )
        )

    def _on_rts(self, packet: Packet) -> None:
        p = packet.payload
        self._inbox.put(
            Message(
                context=p["context"],
                src=packet.src,
                tag=p["tag"],
                data=None,
                nbytes=p["nbytes"],
                arrived_at=self.sim.now,
                rdv_id=p["rdv_id"],
            )
        )

    def _on_cts(self, packet: Packet) -> None:
        rdv_id = packet.payload["rdv_id"]
        data, req_ev = self._rdv_out.pop(rdv_id)
        pkt = Packet(
            src=self.rank,
            dst=packet.src,
            kind="p2p.data",
            payload={"rdv_id": rdv_id, "data": data},
            data_bytes=payload_nbytes(data),
        )
        self.nic.send(pkt)
        # the send request completes when the payload has left
        pkt.ev_injected.add_callback(lambda ev: req_ev.succeed(ev.value))

    def _on_data(self, packet: Packet) -> None:
        ev = self._rdv_in.pop(packet.payload["rdv_id"], None)
        if ev is None:
            raise RuntimeError(
                f"rank {self.rank}: rendezvous payload without a waiter"
            )
        ev.succeed(packet.payload["data"])

    # ------------------------------------------------------------------
    def isend(
        self, data: Any, dst: int, tag: int, context: Tuple,
        resume_at: float = None,
    ) -> Generator[Any, Any, Request]:
        """Start a nonblocking send; returns a :class:`Request`.

        Charges the sender's call + injection overhead before returning,
        which is why this is a generator.  ``resume_at`` replaces the
        relative charge with an absolute wakeup — a rank rescued out of
        an abandoned analytic collective replays its first charge at the
        exact instant the charge would have ended.
        """
        nbytes = payload_nbytes(data)
        inject_from = None
        if resume_at is None:
            yield self.sim.timeout(
                self.timings.call_overhead + self.nic.config.overhead_send
            )
        elif resume_at >= self.sim.now:
            yield self.sim.wake_at(resume_at)
        else:
            # The charge ended in the simulated past (late nexus rescue):
            # skip the wait and hand the NIC the original instant so the
            # injection timeline is reproduced exactly.
            inject_from = resume_at
        self.sends += 1
        if nbytes <= self.eager_threshold:
            self.eager_sends += 1
            pkt = Packet(
                src=self.rank,
                dst=dst,
                kind="p2p.msg",
                payload={"context": context, "tag": tag, "data": data},
                data_bytes=nbytes,
            )
            self.nic.send(pkt, inject_from=inject_from)
            return Request(self.sim, event=pkt.ev_injected, kind="isend")
        # rendezvous
        self.rdv_sends += 1
        rdv_id = next(_msg_ids)
        req_ev = self.sim.event()
        self._rdv_out[rdv_id] = (data, req_ev)
        self.nic.send(Packet(
            src=self.rank,
            dst=dst,
            kind="p2p.rts",
            payload={"context": context, "tag": tag, "nbytes": nbytes,
                     "rdv_id": rdv_id},
        ), inject_from=inject_from)
        return Request(self.sim, event=req_ev, kind="isend-rdv")

    def send(
        self, data: Any, dst: int, tag: int, context: Tuple,
        resume_at: float = None,
    ) -> Generator[Any, Any, None]:
        """Blocking send (complete when the payload left this rank)."""
        req = yield from self.isend(data, dst, tag, context,
                                    resume_at=resume_at)
        yield from req.wait()

    def irecv(
        self, src: int, tag: int, context: Tuple,
        posted_at: float = None,
    ) -> Request:
        """Post a nonblocking receive; returns a :class:`Request` whose
        value is the received object.  ``posted_at`` backdates the post
        instant (unexpected-message accounting) for a rank rescued out
        of an abandoned analytic collective."""
        req = Request(self.sim, kind="irecv")
        if posted_at is None:
            posted_at = self.sim.now

        def match(m: Message) -> bool:
            if m.context != context:
                return False
            if src != ANY_SOURCE and m.src != src:
                return False
            if tag != ANY_TAG and m.tag != tag:
                return False
            return True

        def receiver():
            msg: Message = yield from self._inbox.get(match)
            data = msg.data
            copy_cost = 0.0
            if msg.rdv_id:
                # rendezvous: answer CTS, wait for the payload to land
                # directly in our (posted) buffer
                arrival = self.sim.event()
                self._rdv_in[msg.rdv_id] = arrival
                self.nic.send(Packet(
                    src=self.rank, dst=msg.src, kind="p2p.cts",
                    payload={"rdv_id": msg.rdv_id},
                ))
                data = yield arrival
            elif msg.arrived_at < posted_at:
                # eager + unexpected: it sat in the queue; pay the copy
                # out of the unexpected buffer
                self.unexpected_matches += 1
                copy_cost = msg.nbytes * self.timings.mem_copy_per_byte
            yield self.sim.timeout(
                self.nic.config.overhead_recv
                + msg.nbytes * self.timings.mem_copy_per_byte
                + copy_cost
            )
            req.status = Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)
            self.recvs += 1
            req.event.succeed(data)

        self.sim.spawn(receiver(), name=f"irecv-{self.rank}")
        return req

    def recv(
        self, src: int, tag: int, context: Tuple,
        posted_at: float = None,
    ) -> Generator[Any, Any, Any]:
        """Blocking receive; returns the received object."""
        req = self.irecv(src, tag, context, posted_at=posted_at)
        data = yield from req.wait()
        return data

    def recv_status(
        self, src: int, tag: int, context: Tuple,
        posted_at: float = None,
    ) -> Generator[Any, Any, Tuple[Any, Status]]:
        """Blocking receive returning ``(data, Status)``."""
        req = self.irecv(src, tag, context, posted_at=posted_at)
        data = yield from req.wait()
        assert req.status is not None
        return data, req.status
