"""A simulated MPI runtime.

This is the two-sided substrate the paper's RMA interfaces are compared
against (and implemented over, where a software protocol needs target
cooperation).  It provides:

- tag-matched, non-overtaking point-to-point messaging
  (:meth:`~repro.mpi.comm.Comm.send` / :meth:`~repro.mpi.comm.Comm.recv`
  and their nonblocking ``i``-variants returning
  :class:`~repro.mpi.request.Request`);
- communicators with context isolation, :meth:`~repro.mpi.comm.Comm.dup`
  and :meth:`~repro.mpi.comm.Comm.split`;
- collectives: barrier (dissemination), bcast (binomial tree), gather,
  scatter, allgather, reduce, allreduce, alltoall.

All user-facing calls are generators meant for ``yield from`` inside a
rank program, mirroring how blocking MPI calls suspend a process.
"""

from repro.mpi.comm import Comm, Group
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.endpoint import Message, MpiEndpoint
from repro.mpi.request import Request, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Group",
    "Message",
    "MpiEndpoint",
    "Request",
    "Status",
]
