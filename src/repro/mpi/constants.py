"""MPI wildcard and tag-space constants."""

__all__ = ["ANY_SOURCE", "ANY_TAG", "COLL_TAG_BASE", "MAX_USER_TAG"]

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1

#: Largest tag available to applications; larger tags are reserved for
#: the runtime's internal protocols (collectives, RMA software paths).
MAX_USER_TAG = 2**20 - 1

#: Base of the internal tag space used by collective algorithms.
COLL_TAG_BASE = 2**20
