"""MPI wildcard and tag-space constants."""

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "COLL_TAG_BASE",
    "MAX_USER_TAG",
    "ERRORS_RAISE",
    "ERRORS_RETURN",
]

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1

#: Largest tag available to applications; larger tags are reserved for
#: the runtime's internal protocols (collectives, RMA software paths).
MAX_USER_TAG = 2**20 - 1

#: Base of the internal tag space used by collective algorithms.
COLL_TAG_BASE = 2**20

#: RMA error-handler policies (analogous to MPI_ERRORS_ARE_FATAL /
#: MPI_ERRORS_RETURN).  Under ``ERRORS_RAISE`` a failed operation raises
#: its :class:`~repro.rma.target_mem.RmaError` out of wait/complete;
#: under ``ERRORS_RETURN`` the error object is returned and the request
#: is left in the ``"failed"`` state for the application to inspect.
ERRORS_RAISE = "errors_raise"
ERRORS_RETURN = "errors_return"
