"""Requests and statuses for nonblocking operations.

A :class:`Request` wraps a kernel event.  The same class backs MPI-style
``isend``/``irecv`` and the strawman RMA operations' request argument —
matching the paper's design decision to reuse "requests for completion
of nonblocking operations" (§IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Iterable, List, Optional

from repro.sim.events import AllOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Request", "Status"]


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Handle for an in-flight nonblocking operation.

    ``wait``/``waitall`` are generators (``yield from``); ``test`` is an
    immediate poll.  The value carried by the request depends on the
    operation: received object for ``irecv``, ``None`` for ``isend``,
    fetched data for RMA gets, etc.
    """

    def __init__(self, sim: "Simulator", event: Optional[Event] = None,
                 kind: str = "generic") -> None:
        self.sim = sim
        self.event = event if event is not None else sim.event()
        self.kind = kind
        self.status: Optional[Status] = None

    @property
    def complete(self) -> bool:
        """True once the operation finished."""
        return self.event.triggered

    def test(self) -> bool:
        """Nonblocking completion poll (MPI_Test)."""
        return self.event.triggered

    def wait(self) -> Generator[Event, Any, Any]:
        """Suspend until complete; returns the operation's value."""
        if not self.event.triggered:
            yield self.event
        return self.event.value

    @staticmethod
    def waitall(requests: Iterable["Request"]) -> Generator[Event, Any, List[Any]]:
        """Wait for every request; returns their values in order."""
        reqs = list(requests)
        if not reqs:
            return []
        pending = [r.event for r in reqs if not r.event.triggered]
        if pending:
            sim = reqs[0].sim
            yield AllOf(sim, pending)
        return [r.event.value for r in reqs]

    @staticmethod
    def waitany(requests: Iterable["Request"]) -> Generator[Event, Any, int]:
        """Wait until at least one request completes; returns its index."""
        reqs = list(requests)
        if not reqs:
            raise ValueError("waitany on empty request list")
        for i, r in enumerate(reqs):
            if r.complete:
                return i
        from repro.sim.events import AnyOf

        sim = reqs[0].sim
        yield AnyOf(sim, [r.event for r in reqs])
        for i, r in enumerate(reqs):
            if r.complete:
                return i
        raise AssertionError("AnyOf fired but no request complete")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self.complete else "pending"
        return f"<Request {self.kind} {state}>"
