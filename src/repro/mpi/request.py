"""Requests and statuses for nonblocking operations.

A :class:`Request` wraps a kernel event.  The same class backs MPI-style
``isend``/``irecv`` and the strawman RMA operations' request argument —
matching the paper's design decision to reuse "requests for completion
of nonblocking operations" (§IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Iterable, List, Optional

from repro.sim.events import AllOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Request", "Status"]


def _rma_error_of(value: Any) -> Any:
    """Extract an :class:`~repro.rma.target_mem.RmaError` carried as an
    event *value* (failure-aware completion never uses ``Event.fail`` —
    a failed operation's event succeeds with the error object so AllOf
    aggregation keeps working)."""
    from repro.rma.target_mem import RmaError

    if isinstance(value, RmaError):
        return value
    if isinstance(value, list):
        for item in value:
            if isinstance(item, RmaError):
                return item
    return None


def _errhandler_of(sim: "Simulator") -> str:
    from repro.mpi.constants import ERRORS_RAISE

    world = sim.context.get("world")
    if world is None:
        return ERRORS_RAISE
    return getattr(world, "rma_errhandler", ERRORS_RAISE)


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Handle for an in-flight nonblocking operation.

    ``wait``/``waitall`` are generators (``yield from``); ``test`` is an
    immediate poll.  The value carried by the request depends on the
    operation: received object for ``irecv``, ``None`` for ``isend``,
    fetched data for RMA gets, etc.
    """

    def __init__(self, sim: "Simulator", event: Optional[Event] = None,
                 kind: str = "generic") -> None:
        self.sim = sim
        self.event = event if event is not None else sim.event()
        self.kind = kind
        self.status: Optional[Status] = None

    @property
    def error(self) -> Any:
        """The operation's :class:`~repro.rma.target_mem.RmaError`, or
        ``None`` while pending / after success."""
        if not self.event.triggered:
            return None
        return _rma_error_of(self.event.value)

    @property
    def state(self) -> str:
        """``"pending"``, ``"complete"``, or ``"failed"``."""
        if not self.event.triggered:
            return "pending"
        if not self.event.ok or self.error is not None:
            return "failed"
        return "complete"

    @property
    def complete(self) -> bool:
        """True once the operation finished (successfully or not)."""
        return self.event.triggered

    def test(self) -> bool:
        """Nonblocking completion poll (MPI_Test)."""
        return self.event.triggered

    def wait(self) -> Generator[Event, Any, Any]:
        """Suspend until complete; returns the operation's value.

        If the operation failed (failure-aware RMA completion), the
        world's error handler decides: ``ERRORS_RAISE`` (default) raises
        the :class:`~repro.rma.target_mem.RmaError`; ``ERRORS_RETURN``
        returns it as the value with the request left ``"failed"``.
        """
        if not self.event.triggered:
            yield self.event
        value = self.event.value
        err = _rma_error_of(value)
        if err is not None:
            from repro.mpi.constants import ERRORS_RAISE

            if _errhandler_of(self.sim) == ERRORS_RAISE:
                raise err
            return err
        return value

    @staticmethod
    def waitall(requests: Iterable["Request"]) -> Generator[Event, Any, List[Any]]:
        """Wait for every request; returns their values in order.

        Under ``ERRORS_RAISE`` the first failed request's error is
        raised once all events have triggered; under ``ERRORS_RETURN``
        error objects appear in the returned list at their request's
        position.
        """
        reqs = list(requests)
        if not reqs:
            return []
        pending = [r.event for r in reqs if not r.event.triggered]
        if pending:
            sim = reqs[0].sim
            yield AllOf(sim, pending)
        values = [r.event.value for r in reqs]
        errs = [e for e in (_rma_error_of(v) for v in values) if e is not None]
        if errs:
            from repro.mpi.constants import ERRORS_RAISE

            if _errhandler_of(reqs[0].sim) == ERRORS_RAISE:
                raise errs[0]
        return values

    @staticmethod
    def waitany(requests: Iterable["Request"]) -> Generator[Event, Any, int]:
        """Wait until at least one request completes; returns its index."""
        reqs = list(requests)
        if not reqs:
            raise ValueError("waitany on empty request list")
        for i, r in enumerate(reqs):
            if r.event.triggered:
                return i
        from repro.sim.events import AnyOf

        sim = reqs[0].sim
        yield AnyOf(sim, [r.event for r in reqs])
        for i, r in enumerate(reqs):
            if r.event.triggered:
                return i
        raise AssertionError("AnyOf fired but no request complete")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Request {self.kind} {self.state}>"
