"""Exporters: Chrome trace-event JSON (Perfetto-loadable).

:func:`chrome_trace` converts trace records + reconstructed spans into
the Chrome trace-event format (the JSON array flavour wrapped in a
``{"traceEvents": [...]}`` object), which https://ui.perfetto.dev and
``chrome://tracing`` both load directly.  Simulated time is already in
microseconds — the native unit of the format — so timestamps go through
unchanged.

Layout: one *process* per rank, one *thread* lane per operation (spans
of one op nest on its lane; phases are complete events).  Records that
belong to no span (faults, transport retransmissions, ...) become
instant events on the recording rank's lane 0.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.spans import OpSpan, build_spans

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Record kinds already represented by span phase slices; their raw
#: records would only duplicate the slices as instants.
_SPAN_KINDS = frozenset(
    {"inject", "deliver", "applied", "ack", "complete"}
)


def _span_events(spans: Iterable[OpSpan]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    lanes: Dict[int, List[int]] = {}
    for span in spans:
        pid = span.origin if span.origin is not None else -1
        tid = span.op[1]
        lanes.setdefault(pid, []).append(tid)
        common = {
            "pid": pid,
            "tid": tid,
            "cat": "rma",
        }
        events.append({
            "name": f"{span.kind} {span.nbytes}B -> {span.target}",
            "ph": "X",
            "ts": span.start,
            "dur": span.total,
            "args": {"op": list(span.op), "bytes": span.nbytes,
                     "target": span.target,
                     "phases": {k: v for k, v in span.phases.items()}},
            **common,
        })
        prev = span.start
        for time, label, kind in span.events:
            if label != "issue" and time > prev:
                events.append({
                    "name": label,
                    "ph": "X",
                    "ts": prev,
                    "dur": time - prev,
                    "args": {"milestone": kind},
                    **common,
                })
            prev = time
    for pid, tids in lanes.items():
        for tid in sorted(set(tids)):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": f"op {tid}"},
            })
    return events


def _instant_events(records: Iterable) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for rec in records:
        if rec.kind in _SPAN_KINDS and rec.detail.get("op") is not None:
            continue  # already a phase slice on the op's lane
        rank = rec.rank if rec.rank is not None else -1
        # packet_id comes from a process-global counter (unique but not
        # run-deterministic); dropping it keeps same-seed exports
        # byte-identical.
        args = {k: v for k, v in sorted(rec.detail.items())
                if k != "packet_id"
                and isinstance(v, (int, float, str, bool, type(None)))}
        events.append({
            "name": f"{rec.category}.{rec.kind}",
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": rec.time,
            "pid": rank,
            "tid": 0,
            "cat": rec.category,
            "args": args,
        })
    return events


def chrome_trace(
    records: Optional[Iterable] = None,
    spans: Optional[List[OpSpan]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event document.

    Pass a tracer (or any record iterable) and/or pre-built spans; with
    only ``records`` given, spans are reconstructed here.  The result is
    a plain dict ready for :func:`json.dump`.
    """
    record_list = list(records) if records is not None else []
    if spans is None:
        spans = build_spans(record_list)
    events: List[Dict[str, Any]] = []
    ranks = sorted(
        {s.origin for s in spans if s.origin is not None}
        | {r.rank for r in record_list if r.rank is not None}
    )
    for rank in ranks:
        events.append({
            "name": "process_name", "ph": "M", "pid": rank, "tid": 0,
            "args": {"name": f"rank {rank}"},
        })
    events.extend(_span_events(spans))
    events.extend(_instant_events(record_list))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_unit": "us"},
    }


def write_chrome_trace(
    path: str,
    records: Optional[Iterable] = None,
    spans: Optional[List[OpSpan]] = None,
) -> Dict[str, Any]:
    """Write :func:`chrome_trace` output to ``path``; returns the doc."""
    doc = chrome_trace(records=records, spans=spans)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc
