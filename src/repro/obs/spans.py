"""Protocol-phase spans reconstructed from trace records.

The RMA engine, NIC, fabric and transport record lifecycle milestones
for every operation (gated on ``tracer.enabled`` — the instrumentation
is free when observability is off).  Each milestone record carries the
operation's ``op`` key, so the full lifecycle

    issue -> inject -> (wire) -> deliver -> serialize/apply -> ack/complete

is reconstructable here into one :class:`OpSpan` per operation, split
into *phases*.

Phase attribution is interval-based: the span's milestone events are
sorted by simulated time, and the interval between consecutive events
is charged to the phase of the *later* event (time between ``inject``
and ``deliver`` is wire flight; time between ``deliver`` and
``applied`` is remote application; ...).  Milestones a protocol legally
skips (flush-mode operations have no per-op ack; single-fragment
transfers have one inject) simply contribute no interval, so the phase
sums of every span equal its end-to-end simulated latency *exactly* —
that identity is what lets the Figure-2 cost decomposition be derived
from traces instead of wall totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["PHASES", "OpSpan", "build_spans", "attribute_phases",
           "observe_spans"]

#: Phase names in lifecycle order.
PHASES = ("inject", "wire", "apply", "ack", "complete")

#: Milestone record kind -> phase charged for the interval *ending* at
#: that record.  ``*_issue`` kinds open the span and charge nothing.
_PHASE_OF_KIND = {
    "inject": "inject",      # origin NIC finished serializing a packet
    "deliver": "wire",       # fabric delivered a packet at the target
    "applied": "apply",      # target applied the operation to memory
    "ack": "ack",            # completion ack arrived back at the origin
    "complete": "complete",  # origin-side epilogue (get unpack, ...)
}


@dataclass(slots=True)
class OpSpan:
    """One operation's reconstructed lifecycle."""

    op: Tuple[int, int]
    kind: str
    origin: Optional[int]
    target: Optional[int]
    nbytes: int
    start: float
    end: float
    #: Simulated time charged to each phase; only phases that occurred
    #: appear.  ``sum(phases.values()) == end - start`` always holds.
    phases: Dict[str, float] = field(default_factory=dict)
    #: The raw milestone timeline: ``(time, phase_or_"issue", record_kind)``.
    events: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def total(self) -> float:
        """End-to-end simulated latency."""
        return self.end - self.start


def build_spans(records: Iterable) -> List[OpSpan]:
    """Group milestone records by operation and build one span each.

    ``records`` is any iterable of :class:`~repro.sim.trace.TraceRecord`
    (a :class:`~repro.sim.trace.Tracer` works directly).  Records
    without an ``op`` key in their detail (consistency litmus records,
    fault instants, ...) are ignored.  Spans are returned sorted by
    ``(start, op)``.
    """
    groups: Dict[Tuple[int, int], List[Tuple[float, int, str, Any]]] = {}
    meta: Dict[Tuple[int, int], Dict[str, Any]] = {}
    for rec in records:
        op = rec.detail.get("op")
        if op is None:
            continue
        if rec.kind.endswith("_issue"):
            meta[op] = {
                "kind": rec.kind[: -len("_issue")],
                "origin": rec.rank,
                "target": rec.detail.get("dst"),
                "nbytes": rec.detail.get("bytes", 0),
            }
            label = "issue"
        else:
            label = _PHASE_OF_KIND.get(rec.kind)
            if label is None:
                continue
        groups.setdefault(op, []).append((rec.time, rec.seq, label, rec.kind))

    spans: List[OpSpan] = []
    for op, events in groups.items():
        events.sort(key=lambda e: (e[0], e[1]))
        info = meta.get(op, {})
        start = events[0][0]
        span = OpSpan(
            op=op,
            kind=info.get("kind", "?"),
            origin=info.get("origin"),
            target=info.get("target"),
            nbytes=info.get("nbytes", 0),
            start=start,
            end=events[-1][0],
        )
        prev = start
        for time, _seq, label, kind in events:
            if label != "issue" and time > prev:
                span.phases[label] = span.phases.get(label, 0.0) + (time - prev)
            span.events.append((time, label, kind))
            prev = time
        spans.append(span)
    spans.sort(key=lambda s: (s.start, s.op))
    return spans


def attribute_phases(spans: Iterable[OpSpan]) -> Dict[str, Any]:
    """Aggregate spans into one attribution row.

    Returns ``{"ops": n, "end_to_end": total_us, "phases": {phase: us}}``
    with phases in lifecycle order.  By construction
    ``sum(phases.values()) == end_to_end`` (exact float identity: both
    sides sum the very same interval lengths).
    """
    n = 0
    end_to_end = 0.0
    totals: Dict[str, float] = {}
    for span in spans:
        n += 1
        for phase, dur in span.phases.items():
            totals[phase] = totals.get(phase, 0.0) + dur
            end_to_end += dur
    ordered = {p: totals[p] for p in PHASES if p in totals}
    ordered.update({p: d for p, d in sorted(totals.items())
                    if p not in ordered})
    return {"ops": n, "end_to_end": end_to_end, "phases": ordered}


def observe_spans(spans: Iterable[OpSpan], registry, **labels: Any) -> None:
    """Feed spans into ``registry`` histograms/counters.

    Fills ``rma.op.latency`` (end-to-end) and ``rma.phase.<phase>``
    histograms plus an ``rma.ops`` counter, all carrying ``labels``
    (e.g. ``mode="ordering"``) — the deterministic bridge from traces to
    the metrics report.
    """
    for span in spans:
        registry.counter("rma.ops", kind=span.kind, **labels).inc()
        registry.histogram("rma.op.latency", kind=span.kind,
                           **labels).observe(span.total)
        for phase, dur in span.phases.items():
            registry.histogram(f"rma.phase.{phase}", **labels).observe(dur)
