"""Deterministic observability: metrics, protocol-phase spans, exporters.

Layered on the existing :class:`~repro.sim.trace.Tracer` (which owns the
:class:`MetricsRegistry`): lifecycle records gated on ``tracer.enabled``
feed :mod:`repro.obs.spans`, which reconstructs per-operation
protocol-phase spans; :mod:`repro.obs.export` renders them as Chrome
trace-event JSON and ``python -m repro.obs.report`` prints the Figure-2
cost decomposition.  With observability off the simulation is
bit-identical to an uninstrumented build — see DESIGN §9.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    PHASES,
    OpSpan,
    attribute_phases,
    build_spans,
    observe_spans,
)
from repro.obs.export import chrome_trace, write_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "OpSpan",
    "attribute_phases",
    "build_spans",
    "observe_spans",
    "chrome_trace",
    "write_chrome_trace",
]
