"""Typed metrics: counters, gauges, and log2-bucket histograms.

The :class:`MetricsRegistry` replaces the untyped ``tracer.counters``
dict (kept as an aggregated compat view — see
:attr:`repro.sim.trace.Tracer.counters`).  Every metric has a name and
an optional frozen label set (``rank=3``, ``dst=0``, ``flow="0->3"``),
so the transport/fault bumps that used to collapse into one global
integer can be attributed per rank or per path while the old aggregate
keys keep working.

Everything here is deterministic: values are plain Python ints/floats
fed by the (deterministic) simulation, snapshots iterate in sorted
order, and histograms use *fixed* base-2 buckets — two runs with the
same seed produce byte-identical snapshots.

This module is deliberately dependency-free (it must be importable from
:mod:`repro.sim.trace` without creating an import cycle).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Label set as stored on a metric: sorted ``(key, value)`` pairs.
Labels = Tuple[Tuple[str, Any], ...]


def _freeze(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted(labels.items()))


def _label_str(labels: Labels) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}[{_label_str(self.labels)}]={self.value}>"


class Gauge:
    """A point-in-time value (queue depth, bytes outstanding, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value) -> None:
        # Normalize to float: callers pass ints (packet counts) and
        # floats (timestamps) interchangeably, and a snapshot that
        # renders `3` on one code path and `3.0` on another breaks
        # byte-identical snapshot comparison across runs.
        self.value = float(value)

    def add(self, delta) -> None:
        self.value = float(self.value + delta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}[{_label_str(self.labels)}]={self.value}>"


def bucket_index(value: float) -> int:
    """The fixed log2 bucket of ``value``: the smallest integer ``i``
    with ``value <= 2**i``.

    Only defined for positive values: ``math.frexp(0.0)`` is ``(0.0, 0)``,
    so without the guard a zero would silently land in bucket 0 (the
    ``(0.5, 1]`` bucket) instead of the dedicated zero bucket.  Callers
    must route non-positive observations themselves (as
    :meth:`Histogram.observe` does)."""
    if value <= 0.0:
        raise ValueError(
            f"bucket_index({value!r}): non-positive values have no log2 "
            "bucket; route them to the zero bucket (Histogram.observe "
            "does this automatically)"
        )
    m, e = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    return e - 1 if m == 0.5 else e


class Histogram:
    """Fixed-log2-bucket histogram of simulated durations.

    Bucket ``i`` counts observations in ``(2**(i-1), 2**i]``; a
    dedicated zero bucket counts non-positive observations (zero-length
    phases are common and must not distort the distribution).  Buckets
    are sparse — only non-empty ones are stored — and the boundaries are
    fixed, so merging or comparing histograms across runs is exact.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max",
                 "zero_count", "_buckets")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero_count: int = 0
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        # Float-normalize up front (int observations would otherwise make
        # min/max int on some code paths and float on others, breaking
        # byte-identical snapshots); non-positive observations go to the
        # dedicated zero bucket — zero-length durations are routine
        # (intra-node shared-window ops, analytic-train completions) and
        # must never reach bucket_index.
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        idx = bucket_index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact: the fixed bucket
        boundaries make cross-run merging lossless)."""
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        self.zero_count += other.zero_count
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n

    def quantile(self, q: float) -> float:
        """The q-quantile, resolved to its bucket's upper bound (clamped
        to the observed ``max``, so ``quantile(1.0) == max`` exactly).

        Within-bucket position is unknown, so the estimate errs high by
        at most one power of two — fine for the latency tails the
        reports quote."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for le, n in self.buckets():
            seen += n
            if seen >= target:
                return min(le, self.max)
        return self.max  # pragma: no cover - float-edge fallback

    def buckets(self) -> List[Tuple[float, int]]:
        """Non-empty buckets as ``(upper_bound, count)`` sorted by bound
        (the zero bucket, when occupied, leads with bound ``0.0``)."""
        out: List[Tuple[float, int]] = []
        if self.zero_count:
            out.append((0.0, self.zero_count))
        out.extend((2.0 ** i, n) for i, n in sorted(self._buckets.items()))
        return out

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": [[le, n] for le, n in self.buckets()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name}[{_label_str(self.labels)}] "
                f"n={self.count} sum={self.sum:.3f}>")


class MetricsRegistry:
    """Owns every metric of one simulation.

    Metrics are created on first use and memoized by ``(name, labels)``;
    repeated lookups return the same object, so hot call sites may cache
    the metric handle and skip the dict lookup entirely.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    # -- factories -------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _freeze(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _freeze(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _freeze(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, key[1])
        return metric

    # -- views -----------------------------------------------------------
    def counter_totals(self) -> Dict[str, int]:
        """Counters aggregated over labels, keyed by bare name — the
        compat shape of the old ``tracer.counters`` dict."""
        totals: Dict[str, int] = {}
        for (name, _labels), metric in sorted(self._counters.items()):
            if metric.value:
                totals[name] = totals.get(name, 0) + metric.value
        return totals

    def iter_counters(self) -> Iterator[Counter]:
        for key in sorted(self._counters):
            yield self._counters[key]

    def iter_gauges(self) -> Iterator[Gauge]:
        for key in sorted(self._gauges):
            yield self._gauges[key]

    def iter_histograms(self) -> Iterator[Histogram]:
        for key in sorted(self._histograms):
            yield self._histograms[key]

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as plain JSON-able data, deterministically
        ordered (list entries sorted by name then labels)."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.iter_counters() if c.value
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self.iter_gauges()
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), **h.snapshot()}
                for h in self.iter_histograms() if h.count
            ],
        }

    def reset(self) -> None:
        """Drop every metric (bench repetition / chaos-seed reuse)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")
