"""Observability report (``python -m repro.obs.report``).

Runs the paper's Figure-2 attribute sweep with tracing on, reconstructs
protocol-phase spans from the traces, and prints the per-attribute-set
cost decomposition the paper shows as Figure 2 — where the simulated
time of each configuration actually goes (injection, wire flight,
remote application, completion acks) rather than one opaque wall total.

For every point the phase sums equal the operations' end-to-end
simulated latencies exactly (interval attribution — see
:mod:`repro.obs.spans`); the report verifies that identity and fails
loudly if instrumentation ever breaks it.

Options write the same data as machine-readable artifacts:
``--json-out`` for the metrics/attribution document and ``--trace-out``
for a Chrome trace-event file of one point (``--trace-point``),
loadable in https://ui.perfetto.dev.

``--resil`` switches to the failure-recovery report: it runs the
``durable_kv`` failover scenario (one seeded rank kill per seed, the
survivors detect, agree, shrink and re-replicate — see
:mod:`repro.check.durability`) and prints a per-seed table of failure
detection latency, MTTR, re-replicated bytes and suspicion counts,
plus aggregate detect/MTTR distributions (p50/p99 from the exact
merged histograms).  Every run is re-checked by the durability oracle,
so the report doubles as a smoke check — a lost acknowledged write
makes it exit non-zero.

``--store`` switches to the serving report: it runs the open-loop
sharded-store scenario (Zipf keyspace, 60/30/10 get/put/add mix,
shared-memory windows for co-located shards — see
:mod:`repro.bench.store`) on each requested fabric and prints the
per-op-class latency percentile table plus the local/remote split.
Each run self-checks that every key-local request moved by load/store
(zero NIC packets for co-located pairs) and that every issued request
completed, so the report fails loudly if either identity breaks.

``--notify`` switches to the notified-RMA report: it runs the three
DESIGN §15 workloads (notified vs flush-synchronized halo exchange,
the NotifyQueue producer/consumer pipeline, and the MCS lock
contention sweep — see :mod:`repro.bench.notify_workloads`) on each
requested fabric and prints one aligned table of per-iteration times
with notify-latency and lock/queue wait percentiles, plus the
notified-vs-flush speedup per fabric.  The lock rows re-check mutual
exclusion and the pipeline rows re-check payload integrity, so the
report fails loudly if the synchronization objects ever misbehave.

``--topo {torus,fattree,crossbar}`` switches to the routed-fabric
report: it runs the hotspot-incast workload on that topology and prints
the per-link traffic table (packets, bytes, busy/queue time,
utilization) plus the tail-latency percentiles.  The table is verified
against the routing totals — the per-link packet counts must sum to
exactly the hops the runtime traversed — so the report fails loudly if
link accounting ever drifts from what was actually routed.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List, Optional

from repro.bench.store import format_store_table, run_store_report
from repro.obs.export import write_chrome_trace


def run_notify_report(*args, **kwargs):
    """Re-export of :func:`repro.bench.notify_workloads.run_notify_report`
    (imported lazily: the workloads pull in the full runtime)."""
    from repro.bench.notify_workloads import run_notify_report as impl

    return impl(*args, **kwargs)


def format_notify_table(doc):
    """Re-export of
    :func:`repro.bench.notify_workloads.format_notify_table`."""
    from repro.bench.notify_workloads import format_notify_table as impl

    return impl(doc)

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import PHASES, attribute_phases, build_spans, observe_spans

__all__ = ["format_rows", "run_sweep_report", "format_attribution_table",
           "run_topo_report", "format_link_table",
           "run_resil_report", "format_resil_table",
           "run_store_report", "format_store_table",
           "run_notify_report", "format_notify_table",
           "run_ir_report", "format_ir_table", "main"]


def format_rows(rows: List[List[str]], left_align=(0,)) -> str:
    """Align ``rows`` (header first) into the reports' table format.

    One shared implementation for every report table so alignment
    behaves identically across ``--topo``/``--store``/``--resil``/
    ``--notify``: column widths come from the *rendered cell strings
    only* — a label is one opaque cell no matter what characters it
    contains (``path=0:3``, ``link a:b``, ``atomicity+thread/65536``),
    so punctuation that doubles as a separator elsewhere can never
    skew a column.  ``left_align`` lists the column indices to
    left-justify (labels); everything else right-justifies (numbers).
    A dashed rule is inserted under the header row.
    """
    if not rows:
        return ""
    n_cols = len(rows[0])
    for row in rows:
        if len(row) != n_cols:
            raise ValueError(
                f"ragged table: header has {n_cols} columns, "
                f"row {row!r} has {len(row)}"
            )
    left = set(left_align)
    widths = [max(len(row[i]) for row in rows) for i in range(n_cols)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(widths[j]) if j in left else cell.rjust(widths[j])
            for j, cell in enumerate(row)
        ).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def run_sweep_report(
    sizes=(1024, 16384, 65536),
    modes=("none", "ordering", "remote_complete", "atomicity+thread"),
    puts_per_origin: int = 20,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Run the fig2 sweep traced; return the attribution document.

    The returned dict maps ``"<mode>/<size>"`` to a row with the
    workload's measured ``sim_us``, the span count, the per-phase
    decomposition, and the world's merged fault/metrics counters.  The
    traced worlds are kept under ``"_worlds"`` (not serialized) so the
    caller can export one as a Chrome trace.
    """
    from repro.bench.workloads import fig2_attribute_cost

    registry = registry if registry is not None else MetricsRegistry()
    points: Dict[str, Any] = {}
    worlds: Dict[str, Any] = {}
    for mode in modes:
        for size in sizes:
            key = f"{mode}/{size}"
            sink: List[Any] = []
            sim_us = fig2_attribute_cost(
                mode, size, puts_per_origin=puts_per_origin, seed=seed,
                trace=True, world_out=sink,
            )
            world = sink[0]
            spans = build_spans(world.tracer)
            for span in spans:
                if not math.isclose(sum(span.phases.values()), span.total,
                                    rel_tol=1e-9, abs_tol=1e-9):
                    raise AssertionError(
                        f"{key}: span {span.op} phase sum "
                        f"{sum(span.phases.values())!r} != end-to-end "
                        f"{span.total!r}"
                    )
            observe_spans(spans, registry, mode=mode, size=size)
            row = attribute_phases(spans)
            row["sim_us"] = sim_us
            row["counters"] = dict(world.tracer.counters)
            points[key] = row
            worlds[key] = world
    return {
        "schema": 1,
        "workload": "fig2_attribute_cost",
        "puts_per_origin": puts_per_origin,
        "seed": seed,
        "phases": list(PHASES),
        "points": points,
        "metrics": registry.snapshot(),
        "_worlds": worlds,
    }


def format_attribution_table(doc: Dict[str, Any]) -> str:
    """The per-attribute-set phase table as aligned text."""
    phases = [p for p in PHASES
              if any(p in row["phases"] for row in doc["points"].values())]
    header = (["point", "ops"] + phases
              + ["end-to-end", "sim_us"])
    rows = [header]
    for key, row in doc["points"].items():
        rows.append(
            [key, str(row["ops"])]
            + [f"{row['phases'].get(p, 0.0):.1f}" for p in phases]
            + [f"{row['end_to_end']:.1f}", f"{row['sim_us']:.1f}"]
        )
    return format_rows(rows)


def run_topo_report(
    topology: str = "torus",
    fanin: int = 7,
    put_bytes: int = 2048,
    puts_per_origin: int = 30,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run the hotspot incast on a routed topology; return the per-link
    traffic document.

    The per-link packet counts are checked against the topology
    runtime's hop total (every routed hop is exactly one link
    traversal); a mismatch raises — that identity is what makes the
    table trustworthy as an account of what was actually routed.
    """
    from repro.bench.workloads import hotspot_incast
    from repro.topo import (
        crossbar_network,
        fattree_network,
        link_label,
        torus_network,
    )

    # Slow links (0.002 µs/B ≈ 500 MB/s) so the default fan-in visibly
    # congests the hot ingress — this report exists to show contention.
    if topology == "torus":
        network = torus_network((4, 4, 4), link_byte_time=0.002)
    elif topology == "fattree":
        network = fattree_network(link_byte_time=0.002)
    elif topology == "crossbar":
        network = crossbar_network(n_hosts=fanin + 1, link_byte_time=0.002)
    else:
        raise ValueError(f"unknown topology {topology!r} "
                         "(expected torus, fattree or crossbar)")

    sink: List[Any] = []
    latency = hotspot_incast(
        fanin, put_bytes=put_bytes, puts_per_origin=puts_per_origin,
        network=network, seed=seed, world_out=sink,
    )
    world = sink[0]
    topo = world.topo
    now = world.sim.now
    world.collect_metrics()

    links = []
    packet_sum = 0
    for link in sorted(topo.link_stats):
        st = topo.link_stats[link]
        packet_sum += st.packets
        links.append({
            "link": link_label(link),
            "packets": st.packets,
            "bytes": st.bytes,
            "busy_us": st.busy_us,
            "queue_us": st.queue_us,
            "util": topo.utilization(link, now),
        })
    if packet_sum != topo.hops_traversed:
        raise AssertionError(
            f"link accounting broke: per-link packets sum to {packet_sum} "
            f"but the runtime traversed {topo.hops_traversed} hops"
        )
    return {
        "schema": 1,
        "workload": "hotspot_incast",
        "topology": network.name,
        "fanin": fanin,
        "put_bytes": put_bytes,
        "puts_per_origin": puts_per_origin,
        "seed": seed,
        "latency_us": latency,
        "totals": {
            "packets_routed": topo.packets_routed,
            "hops_traversed": topo.hops_traversed,
            "unroutable": topo.unroutable,
            "link_packet_sum": packet_sum,
            "sim_us": now,
        },
        "links": links,
        "metrics": world.metrics.snapshot(),
    }


def format_link_table(doc: Dict[str, Any], top: int = 20) -> str:
    """The busiest-links table as aligned text (sorted by busy time)."""
    ranked = sorted(doc["links"], key=lambda r: -r["busy_us"])[:top]
    header = ["link", "packets", "bytes", "busy_us", "queue_us", "util"]
    rows = [header]
    for r in ranked:
        rows.append([
            r["link"], str(r["packets"]), str(r["bytes"]),
            f"{r['busy_us']:.2f}", f"{r['queue_us']:.2f}", f"{r['util']:.3f}",
        ])
    return format_rows(rows)


def run_resil_report(
    seeds=(0, 7, 77),
    rf: int = 2,
    chaos: float = 0.0,
) -> Dict[str, Any]:
    """Run the failover scenario per seed; return the resilience document.

    Each seed runs one ``durable_kv`` case (kill + detect + recover,
    :func:`repro.check.durability.run_kv`) and contributes one table
    row read straight off the world's metrics registry; the per-run
    detect-latency and MTTR histograms are merged exactly (fixed log2
    buckets) into the aggregate distributions.  Every run is re-checked
    by the durability oracle and the row records the verdict.
    """
    from repro.check.durability import check_kv, generate_case, run_kv
    from repro.obs.metrics import Histogram

    detect_agg = Histogram("resil.detect_latency")
    mttr_agg = Histogram("resil.mttr")
    totals: Dict[str, int] = {
        "rereplicated_bytes": 0, "recoveries": 0, "rollbacks": 0,
        "suspects": 0, "false_suspects": 0, "heartbeats": 0,
    }
    rows: List[Dict[str, Any]] = []
    for seed in seeds:
        case, ops = generate_case(seed, rf=rf, chaos=chaos)
        sink: List[Any] = []
        result = run_kv(case, ops, world_out=sink)
        world = sink[0]
        violations = check_kv(result)
        metrics = world.metrics
        detect = metrics.histogram("resil.detect_latency")
        mttr = metrics.histogram("resil.mttr")
        detect_agg.merge(detect)
        mttr_agg.merge(mttr)
        counters = metrics.counter_totals()
        for key in ("rereplicated_bytes", "recoveries", "rollbacks",
                    "suspects", "false_suspects"):
            totals[key] += counters.get(f"resil.{key}", 0)
        totals["heartbeats"] += world.resil.stats["heartbeats"]
        rows.append({
            "seed": seed,
            "victim": case.victim,
            "kill_at": case.kill_at,
            "restart_at": case.restart_at,
            "detect_us": detect.max or 0.0,
            "mttr_us": mttr.max or 0.0,
            "rereplicated_bytes": counters.get("resil.rereplicated_bytes", 0),
            "suspects": counters.get("resil.suspects", 0),
            "false_suspects": counters.get("resil.false_suspects", 0),
            "heartbeats": world.resil.stats["heartbeats"],
            "writes": sum(len(v) for v in result.key_log.values()),
            "durable": not violations,
            "violations": violations,
        })

    def _dist(h) -> Dict[str, Any]:
        return {
            "count": h.count,
            "mean": h.mean,
            "p50": h.quantile(0.50),
            "p99": h.quantile(0.99),
            "max": h.max or 0.0,
        }

    return {
        "schema": 1,
        "workload": "durable_kv",
        "rf": rf,
        "chaos": chaos,
        "seeds": list(seeds),
        "rows": rows,
        "detect_latency_us": _dist(detect_agg),
        "mttr_us": _dist(mttr_agg),
        "totals": totals,
    }


def format_resil_table(doc: Dict[str, Any]) -> str:
    """The per-seed failover table as aligned text."""
    header = ["seed", "victim", "kill@", "restart@", "detect_us",
              "mttr_us", "rerepl_B", "suspects", "hb", "writes", "durable"]
    rows = [header]
    for r in doc["rows"]:
        restart = f"{r['restart_at']:.0f}" if r["restart_at"] else "-"
        rows.append([
            str(r["seed"]), str(r["victim"]), f"{r['kill_at']:.0f}", restart,
            f"{r['detect_us']:.1f}", f"{r['mttr_us']:.1f}",
            str(r["rereplicated_bytes"]), str(r["suspects"]),
            str(r["heartbeats"]), str(r["writes"]),
            "yes" if r["durable"] else "VIOLATION",
        ])
    return format_rows(rows, left_align=())


def run_ir_report(
    seeds=range(25),
    fabrics=("ordered", "unordered", "torus"),
) -> Dict[str, Any]:
    """Run the IR pass pipeline over generated programs, differentially
    verified per (seed, fabric); return the per-pass effect document.

    Every (program, fabric) pair goes through the three-arm harness
    (:func:`repro.ir.verify.verify_program`) — the table is only
    printed for runs the oracle accepted, so the report doubles as a
    smoke check and exits non-zero on any verification failure.  The
    pinned :func:`repro.bench.perf.bench_ir_opt` point is appended so
    the op-train absorption the pipeline buys is measured, not
    estimated.
    """
    from repro.bench.perf import bench_ir_opt
    from repro.check.generator import generate_program
    from repro.ir.passes import PIPELINE
    from repro.ir.verify import verify_program

    agg: Dict[str, Dict[str, int]] = {}
    failures: List[str] = []
    checked = programs_changed = 0
    sim_orig = sim_opt = 0.0
    for seed in seeds:
        program = generate_program(seed)
        changed = False
        for fabric in fabrics:
            rep = verify_program(program, fabric, seed)
            checked += 1
            if not rep.ok:
                failures.append(
                    f"seed {seed} [{fabric}]: "
                    f"{[str(v) for v in rep.violations()]}")
                continue
            changed = changed or rep.changed
            sim_orig += rep.sim_time_original
            sim_opt += rep.sim_time_optimized
            if fabric == fabrics[0]:
                for s in rep.pass_stats:
                    row = agg.setdefault(s.name, {
                        k: 0 for k in s.to_dict() if k != "name"})
                    for k, v in s.to_dict().items():
                        if k != "name":
                            row[k] += v
        if changed:
            programs_changed += 1
    return {
        "schema": 1,
        "workload": "ir_pass_pipeline",
        "seeds": list(seeds),
        "fabrics": list(fabrics),
        "passes": list(PIPELINE),
        "checked": checked,
        "failures": failures,
        "programs": len(list(seeds)),
        "programs_changed": programs_changed,
        "sim_us_original": sim_orig,
        "sim_us_optimized": sim_opt,
        "per_pass": agg,
        "bench": bench_ir_opt(),
    }


def format_ir_table(doc: Dict[str, Any]) -> str:
    """The per-pass effect table as aligned text."""
    header = ["pass", "ops_in", "ops_out", "eliminated", "flushes",
              "attrs", "stores", "merged", "batches", "bytes"]
    rows = [header]
    for name in doc["passes"]:
        r = doc["per_pass"].get(name)
        if r is None:
            continue
        rows.append([
            name, str(r["ops_in"]), str(r["ops_out"]),
            str(r["ops_eliminated"]), str(r["flushes_removed"]),
            str(r["attrs_dropped"]), str(r["stores_elided"]),
            str(r["puts_merged"]), str(r["batches"]),
            str(r["bytes_batched"] + r["bytes_elided"]),
        ])
    return format_rows(rows)


def _format_metrics(metrics: Dict[str, Any]) -> str:
    lines = []
    if metrics["counters"]:
        lines.append("counters:")
        for c in metrics["counters"]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(c["labels"].items()))
            lines.append(f"  {c['name']}{{{labels}}} = {c['value']}")
    if metrics["histograms"]:
        lines.append("histograms (simulated µs):")
        for h in metrics["histograms"]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(h["labels"].items()))
            lines.append(
                f"  {h['name']}{{{labels}}}: n={h['count']} "
                f"mean={h['sum'] / h['count']:.2f} "
                f"min={h['min']:.2f} max={h['max']:.2f}"
            )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Phase-attribution and metrics report for the fig2 sweep.",
    )
    parser.add_argument("--sizes", default="1024,16384,65536",
                        help="comma-separated message sizes (default: %(default)s)")
    parser.add_argument("--modes",
                        default="none,ordering,remote_complete,atomicity+thread",
                        help="comma-separated attribute modes (default: %(default)s)")
    parser.add_argument("--puts", type=int, default=20,
                        help="puts per origin (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sweep for CI smoke runs")
    parser.add_argument("--json-out", default=None,
                        help="write the report document as JSON to this path")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome trace-event JSON (Perfetto) here")
    parser.add_argument("--trace-point", default=None,
                        help="which <mode>/<size> point --trace-out exports "
                             "(default: the last point of the sweep)")
    parser.add_argument("--store", action="store_true",
                        help="report per-op-class latency percentiles of "
                             "the open-loop sharded-store serving scenario "
                             "instead of the fig2 sweep")
    parser.add_argument("--store-fabrics", default="flat,torus,fattree",
                        help="comma-separated fabrics for --store "
                             "(default: %(default)s)")
    parser.add_argument("--store-seeds", default="0,7",
                        help="comma-separated seeds for --store "
                             "(default: %(default)s)")
    parser.add_argument("--store-ops", type=int, default=150,
                        help="requests per rank for --store "
                             "(default: %(default)s)")
    parser.add_argument("--topo", default=None,
                        choices=("torus", "fattree", "crossbar"),
                        help="report per-link traffic of a hotspot incast "
                             "on this topology instead of the fig2 sweep")
    parser.add_argument("--fanin", type=int, default=7,
                        help="incast fan-in for --topo (default: %(default)s)")
    parser.add_argument("--notify", action="store_true",
                        help="report the notified-RMA workloads (halo A/B, "
                             "queue pipeline, MCS lock sweep) across fabrics "
                             "instead of the fig2 sweep")
    parser.add_argument("--notify-fabrics", default="flat,torus,fattree",
                        help="comma-separated fabrics for --notify "
                             "(default: %(default)s)")
    parser.add_argument("--notify-seeds", default="0",
                        help="comma-separated seeds for --notify "
                             "(default: %(default)s)")
    parser.add_argument("--resil", action="store_true",
                        help="report failure detection latency, MTTR and "
                             "re-replication traffic of the durable_kv "
                             "failover scenario instead of the fig2 sweep")
    parser.add_argument("--resil-seeds", default="0,7,77",
                        help="comma-separated seeds for --resil "
                             "(default: %(default)s)")
    parser.add_argument("--rf", type=int, default=2,
                        help="replication factor for --resil "
                             "(default: %(default)s)")
    parser.add_argument("--chaos", type=float, default=0.0,
                        help="per-packet drop/dup/delay probability for "
                             "--resil (default: off)")
    parser.add_argument("--ir", action="store_true",
                        help="report the IR optimizing-pass pipeline: "
                             "per-pass ops eliminated / bytes batched over "
                             "a differentially-verified seed sweep, plus "
                             "the pinned op-train absorption benchmark")
    parser.add_argument("--ir-seeds", default="0:25",
                        help="seed range A:B for --ir "
                             "(default: %(default)s)")
    parser.add_argument("--ir-fabrics", default="ordered,unordered,torus",
                        help="comma-separated fabrics for --ir "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    if args.ir:
        if args.quick:
            seeds, fabrics = range(5), ("ordered",)
        else:
            lo, hi = (int(s) for s in args.ir_seeds.split(":", 1))
            seeds = range(lo, hi)
            fabrics = tuple(f for f in args.ir_fabrics.split(",") if f)
        doc = run_ir_report(seeds=seeds, fabrics=fabrics)
        print("== IR optimizing passes (differentially verified per "
              "(seed, fabric)) ==")
        print(format_ir_table(doc))
        print()
        print(f"verified {doc['checked']} configuration(s) over "
              f"{doc['programs']} generated program(s) on "
              f"{','.join(doc['fabrics'])}; "
              f"{len(doc['failures'])} failure(s); "
              f"{doc['programs_changed']} program(s) changed by the "
              f"pipeline")
        bench = doc["bench"]
        orig, opt = bench["original"], bench["optimized"]
        print(f"pinned ir-opt-bench [{bench['fabric']}]: "
              f"{orig['ops']} -> {opt['ops']} engine ops, "
              f"{opt['train_ops']} op-train ops "
              f"({opt['train_bytes']} B batched), "
              f"sim {orig['sim_us']:.2f} -> {opt['sim_us']:.2f} us, "
              f"wall speedup {bench['wall_speedup']:.2f}x")
        for failure in doc["failures"]:
            print(f"FAILURE {failure}")
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[obs] wrote report {args.json_out}")
        return 1 if doc["failures"] else 0

    if args.notify:
        if args.quick:
            fabrics, seeds = ("flat",), (0,)
        else:
            fabrics = tuple(f for f in args.notify_fabrics.split(",") if f)
            seeds = tuple(int(s) for s in args.notify_seeds.split(","))
        doc = run_notify_report(fabrics=fabrics, seeds=seeds,
                                quick=args.quick)
        print("== notified RMA workloads (halo A/B, pipeline, lock sweep; "
              "simulated µs) ==")
        print(format_notify_table(doc))
        print()
        for fabric in doc["fabrics"]:
            halo = {r["mode"]: r for r in doc["rows"]
                    if r["workload"] == "halo" and r["fabric"] == fabric
                    and r["seed"] == doc["seeds"][0]}
            if {"notify", "flush"} <= set(halo):
                ratio = (halo["flush"]["us_per_iter"]
                         / halo["notify"]["us_per_iter"])
                print(f"{fabric}: notified halo {ratio:.2f}x vs "
                      f"flush+barrier "
                      f"({halo['notify']['us_per_iter']:.1f} vs "
                      f"{halo['flush']['us_per_iter']:.1f} us/iter)")
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[obs] wrote report {args.json_out}")
        return 0

    if args.resil:
        seeds = (0,) if args.quick else tuple(
            int(s) for s in args.resil_seeds.split(","))
        doc = run_resil_report(seeds=seeds, rf=args.rf, chaos=args.chaos)
        print(f"== rank-failure recovery (durable_kv, rf={doc['rf']}"
              + (f", chaos={doc['chaos']}" if doc["chaos"] else "")
              + ") ==")
        print(format_resil_table(doc))
        print()
        det, mttr = doc["detect_latency_us"], doc["mttr_us"]
        tot = doc["totals"]
        print(f"detect latency (simulated µs, {det['count']} observer "
              f"verdicts): mean={det['mean']:.1f} p50={det['p50']:.1f} "
              f"p99={det['p99']:.1f} max={det['max']:.1f}")
        print(f"mttr (kill -> recovered, {mttr['count']} recoveries): "
              f"mean={mttr['mean']:.1f} p50={mttr['p50']:.1f} "
              f"p99={mttr['p99']:.1f} max={mttr['max']:.1f}")
        print(f"re-replicated {tot['rereplicated_bytes']} bytes over "
              f"{tot['recoveries']} recoveries "
              f"({tot['rollbacks']} checkpoint rollbacks); "
              f"{tot['suspects']} suspicions "
              f"({tot['false_suspects']} false) from "
              f"{tot['heartbeats']} heartbeats")
        bad = [r for r in doc["rows"] if not r["durable"]]
        for r in bad:
            for v in r["violations"]:
                print(f"seed {r['seed']}: {v}")
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[obs] wrote report {args.json_out}")
        return 1 if bad else 0

    if args.store:
        if args.quick:
            fabrics, seeds, ops = ("flat",), (0,), 40
        else:
            fabrics = tuple(f for f in args.store_fabrics.split(",") if f)
            seeds = tuple(int(s) for s in args.store_seeds.split(","))
            ops = args.store_ops
        doc = run_store_report(fabrics=fabrics, seeds=seeds,
                               ops_per_rank=ops)
        first = doc["rows"][0]
        print(f"== sharded store, open-loop Zipf clients "
              f"({first['n_ranks']} ranks on {first['n_nodes']} nodes, "
              f"{first['n_keys']} keys, {doc['placement']} placement) ==")
        print(format_store_table(doc))
        print()
        for r in doc["rows"]:
            print(f"{r['fabric']}/seed {r['seed']}: {r['ops']} requests "
                  f"({r['local_ops']} key-local by load/store, "
                  f"{r['remote_ops']} cross-node), "
                  f"makespan {r['makespan_us']:.1f} us, "
                  f"{r['nic_packets']} NIC packets")
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[obs] wrote report {args.json_out}")
        return 0

    if args.topo:
        fanin = 3 if args.quick else args.fanin
        puts = 10 if args.quick else 30
        doc = run_topo_report(topology=args.topo, fanin=fanin,
                              puts_per_origin=puts, seed=args.seed)
        lat = doc["latency_us"]
        tot = doc["totals"]
        print(f"== hotspot incast on {doc['topology']} "
              f"(fan-in {doc['fanin']}, {doc['put_bytes']} B puts) ==")
        print(f"per-put latency (simulated µs): p50={lat['p50']:.2f} "
              f"p90={lat['p90']:.2f} p99={lat['p99']:.2f} max={lat['max']:.2f}")
        print(f"routed {tot['packets_routed']} packets over "
              f"{tot['hops_traversed']} hops "
              f"(link packet sum {tot['link_packet_sum']}, "
              f"{tot['unroutable']} unroutable)")
        print()
        print("== busiest links ==")
        print(format_link_table(doc))
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[obs] wrote report {args.json_out}")
        return 0

    if args.quick:
        sizes, modes, puts = (1024, 16384), ("none", "remote_complete"), 5
    else:
        sizes = tuple(int(s) for s in args.sizes.split(","))
        modes = tuple(m for m in args.modes.split(",") if m)
        puts = args.puts

    doc = run_sweep_report(sizes=sizes, modes=modes, puts_per_origin=puts,
                           seed=args.seed)
    worlds = doc.pop("_worlds")

    print("== protocol-phase attribution (simulated µs, summed over ops) ==")
    print(format_attribution_table(doc))
    print()
    print("== metrics ==")
    print(_format_metrics(doc["metrics"]))

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[obs] wrote report {args.json_out}")
    if args.trace_out:
        point = args.trace_point or next(reversed(worlds))
        if point not in worlds:
            parser.error(f"--trace-point {point!r} not in sweep "
                         f"({', '.join(worlds)})")
        write_chrome_trace(args.trace_out, records=worlds[point].tracer)
        print(f"[obs] wrote Chrome trace for {point} to {args.trace_out} "
              f"(open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
