"""Runtime interpretation of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` is consulted by the
:class:`~repro.network.fabric.Fabric` once per transmitted packet and
returns a :class:`PacketFate`.  All randomness comes from dedicated
named streams (``faults.path.{src}.{dst}``) of the world's
:class:`~repro.sim.rng.RngRegistry`, so

- two runs with the same seed and the same plan draw identical fates
  for every packet (bit-identical simulations), and
- arming the injector never perturbs the fabric's jitter streams — a
  faulty run and a fault-free run stay comparable.

Scheduled faults (NIC stalls, rank kills/restarts) are installed onto
the simulator by :meth:`FaultInjector.arm` before the workload starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.packet import Packet
    from repro.runtime import World
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import Tracer

__all__ = ["PacketFate", "FaultInjector"]

#: XOR mask applied to a packet's wire checksum to model payload
#: corruption.  The payload bytes themselves are never touched — a
#: retransmission resends the pristine data — but the receiver's
#: genuine checksum recomputation can no longer match.
CORRUPT_MASK = 0x5A5A5A5A

#: Fate shared by the (overwhelmingly common) unaffected packets.
_CLEAN: "PacketFate"


@dataclass(frozen=True, slots=True)
class PacketFate:
    """What the fabric should do with one transmitted packet."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    extra_delay: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.corrupt
                    or self.extra_delay > 0.0)


_CLEAN = PacketFate()
_DROP = PacketFate(drop=True)


class FaultInjector:
    """Draws per-packet fates and schedules stalls/kills.

    Parameters
    ----------
    plan:
        The fault schedule to interpret.
    rng:
        The world's :class:`~repro.sim.rng.RngRegistry`; the injector
        derives one substream per (src, dst) path from it.
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; fault counters are
        bumped unconditionally, trace records only when enabled.
    """

    def __init__(self, plan: FaultPlan, rng: "RngRegistry",
                 tracer: "Tracer | None" = None) -> None:
        self.plan = plan
        self.rng = rng
        self.tracer = tracer
        self._streams: Dict[Tuple[int, int], object] = {}
        self.stats: Dict[str, int] = {
            "examined": 0,
            "dropped": 0,
            "duplicated": 0,
            "corrupted": 0,
            "delayed": 0,
            "hw_acks_dropped": 0,
            "stalls": 0,
            "kills": 0,
            "restarts": 0,
            "link_downs": 0,
            "link_restores": 0,
        }

    def _stream(self, src: int, dst: int):
        key = (src, dst)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = self.rng.stream(
                f"faults.path.{src}.{dst}"
            )
        return stream

    # ------------------------------------------------------------------
    def fate(self, packet: "Packet", now: float) -> PacketFate:
        """Draw the fate of one packet put in flight at ``now``."""
        self.stats["examined"] += 1
        stream = self._stream(packet.src, packet.dst)
        duplicate = corrupt = False
        extra_delay = 0.0
        for spec in self.plan.losses:
            if not spec.matches(packet.src, packet.dst, packet.kind, now):
                continue
            if spec.drop_p and stream.random() < spec.drop_p:
                self.stats["dropped"] += 1
                self._trace(now, "drop", packet)
                return _DROP
            if spec.dup_p and stream.random() < spec.dup_p:
                duplicate = True
            if spec.corrupt_p and stream.random() < spec.corrupt_p:
                corrupt = True
            if spec.delay_p and stream.random() < spec.delay_p:
                extra_delay += float(stream.exponential(spec.delay_mean))
        if not (duplicate or corrupt or extra_delay):
            return _CLEAN
        if duplicate:
            self.stats["duplicated"] += 1
            self._trace(now, "duplicate", packet)
        if corrupt:
            self.stats["corrupted"] += 1
            self._trace(now, "corrupt", packet)
        if extra_delay:
            self.stats["delayed"] += 1
            self._trace(now, "delay", packet)
        return PacketFate(duplicate=duplicate, corrupt=corrupt,
                          extra_delay=extra_delay)

    def drop_hw_ack(self, src: int, dst: int, now: float) -> bool:
        """Whether to drop a hardware delivery ack flying ``src -> dst``.

        Hardware acks are NIC-generated and never retransmitted; losing
        one is recovered by the reliable transport's own ack (or by
        degradation to software acks).  Matched with the pseudo-kind
        ``"hw.ack"`` so plans can target acks specifically; specs with
        no kind filter apply too.
        """
        stream = self._stream(src, dst)
        for spec in self.plan.losses:
            if (spec.drop_p and spec.matches(src, dst, "hw.ack", now)
                    and stream.random() < spec.drop_p):
                self.stats["hw_acks_dropped"] += 1
                self._bump("fault.hw_ack_drop", src=src, dst=dst)
                return True
        return False

    # ------------------------------------------------------------------
    def arm(self, world: "World") -> None:
        """Schedule the plan's stalls, kills and restarts on the world's
        simulator (call once, before the workload runs)."""
        sim = world.sim
        for stall in self.plan.stalls:
            nic = world.nics.get(stall.rank)
            if nic is None:
                raise ValueError(f"stall names unknown rank {stall.rank}")
            self.stats["stalls"] += 1
            self._bump("fault.stall", rank=stall.rank)
            sim.schedule_call(max(0.0, stall.start - sim.now),
                              nic.stall_until, stall.start + stall.duration)
        for kill in self.plan.kills:
            if kill.rank not in world.nics:
                raise ValueError(f"kill names unknown rank {kill.rank}")
            self.stats["kills"] += 1
            self._bump("fault.kill", rank=kill.rank)
            sim.schedule_call(max(0.0, kill.at - sim.now),
                              world._kill_rank, kill.rank, kill.kill_program)
            if kill.restart_at is not None:
                self.stats["restarts"] += 1
                self._bump("fault.restart", rank=kill.rank)
                sim.schedule_call(max(0.0, kill.restart_at - sim.now),
                                  world._restart_rank, kill.rank)
        if self.plan.link_downs:
            topo = getattr(world, "topo", None)
            if topo is None:
                raise ValueError(
                    "the plan fails topology links but the world's fabric "
                    "is flat (no topology in the network config)"
                )
            for spec in self.plan.link_downs:
                if (spec.u, spec.v) not in topo.topology.graph.edges:
                    raise ValueError(
                        f"link-down names unknown link {spec.u!r} -> {spec.v!r}"
                    )
                self.stats["link_downs"] += 1
                self._bump("fault.link_down")
                sim.schedule_call(max(0.0, spec.at - sim.now),
                                  topo.fail_link, spec.u, spec.v, spec.both)
                if spec.restore_at is not None:
                    self.stats["link_restores"] += 1
                    self._bump("fault.link_restore")
                    sim.schedule_call(max(0.0, spec.restore_at - sim.now),
                                      topo.restore_link, spec.u, spec.v,
                                      spec.both)

    # ------------------------------------------------------------------
    def _bump(self, key: str, **labels) -> None:
        if self.tracer is not None:
            self.tracer.bump(key, **labels)

    def _trace(self, now: float, what: str, packet: "Packet") -> None:
        tracer = self.tracer
        if tracer is None:
            return
        tracer.bump(f"fault.{what}")
        if tracer.enabled:
            tracer.record(now, "fault", what, rank=packet.src,
                          dst=packet.dst, kind_=packet.kind,
                          packet_id=packet.packet_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultInjector {self.plan!r} stats={self.stats}>"
