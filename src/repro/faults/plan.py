"""Declarative fault schedules.

A :class:`FaultPlan` is plain data: what to inject, where, when, and
with what probability.  It is interpreted by
:class:`~repro.faults.injector.FaultInjector` at simulation time; the
plan itself never touches an RNG, so the same plan object can be reused
across worlds and seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["LossSpec", "StallSpec", "KillSpec", "LinkDownSpec",
           "TransportParams", "FaultPlan"]


@dataclass(frozen=True)
class LossSpec:
    """Probabilistic packet-level faults on matching deliveries.

    Attributes
    ----------
    drop_p / dup_p / corrupt_p / delay_p:
        Per-packet probabilities of dropping, duplicating, corrupting
        (checksum-detectable payload mangling) or delaying the packet.
        Independent draws; a drop short-circuits the rest.
    delay_mean:
        Mean of the exponential extra flight delay (µs) when a delay
        fault fires.
    src / dst:
        Restrict to packets from/to a specific rank (``None`` = any).
    kinds:
        Restrict to specific packet kinds (``None`` = any).
    start / stop:
        Simulated-time window in which the spec is live.
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    corrupt_p: float = 0.0
    delay_p: float = 0.0
    delay_mean: float = 10.0
    src: Optional[int] = None
    dst: Optional[int] = None
    kinds: Optional[Tuple[str, ...]] = None
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        for name in ("drop_p", "dup_p", "corrupt_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        if self.delay_mean < 0:
            raise ValueError("delay_mean must be >= 0")
        if self.stop < self.start:
            raise ValueError("stop must be >= start")

    def matches(self, src: int, dst: int, kind: str, now: float) -> bool:
        """Whether this spec applies to a packet at simulated ``now``."""
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        return self.start <= now < self.stop


@dataclass(frozen=True)
class StallSpec:
    """Freeze one rank's NIC injector for a window of simulated time."""

    rank: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration < 0:
            raise ValueError("stall start/duration must be >= 0")


@dataclass(frozen=True)
class KillSpec:
    """Kill a rank at ``at`` (and optionally restart it later).

    A killed rank's fabric port goes silent — every packet to or from
    it is dropped — and, when ``kill_program`` is set, its running rank
    program is terminated.  On restart the rank's memory is intact (a
    transient outage, not a reboot from scratch); transport flows and
    RMA sequence state touching the rank are re-synchronized.  The
    killed program is *not* resurrected.
    """

    rank: int
    at: float
    restart_at: Optional[float] = None
    kill_program: bool = True

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("kill time must be >= 0")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError("restart_at must be after the kill time")


@dataclass(frozen=True)
class LinkDownSpec:
    """Fail a topology cable at ``at`` (and optionally restore it).

    Only meaningful on a routed fabric (a world whose network config
    carries a topology); arming it on a flat fabric raises.  ``u`` and
    ``v`` name graph nodes of the topology; with ``both`` (default) the
    full-duplex cable fails in both directions.  Traffic re-routes
    around the dead cable; when none survives, packets between the
    partitioned hosts are dropped and the reliable transport's retry
    budget eventually surfaces the partition as a structured
    :class:`~repro.rma.target_mem.RmaError`.
    """

    u: Any
    v: Any
    at: float
    restore_at: Optional[float] = None
    both: bool = True

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("link-down time must be >= 0")
        if self.restore_at is not None and self.restore_at <= self.at:
            raise ValueError("restore_at must be after the link-down time")


@dataclass(frozen=True)
class TransportParams:
    """Tuning knobs of the reliable transport armed with a fault plan.

    Attributes
    ----------
    retry_budget:
        Retransmissions allowed per packet before the (src, dst) path
        is declared failed.
    rto_scale:
        Multiplier over the path's analytic round-trip estimate
        (:meth:`~repro.network.config.NetworkConfig.retransmit_timeout`)
        for the initial retransmission timeout.
    backoff:
        Exponential backoff factor applied to the RTO per retry.
    rto_max:
        Cap on the backed-off RTO (µs).
    degrade_threshold:
        Retransmissions to one destination after which the RMA engine
        stops trusting hardware delivery acks on that path and degrades
        to software (application-level) acks.
    """

    retry_budget: int = 6
    rto_scale: float = 1.5
    backoff: float = 2.0
    rto_max: float = 50_000.0
    degrade_threshold: int = 8

    def __post_init__(self) -> None:
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.rto_scale <= 0 or self.backoff < 1.0 or self.rto_max <= 0:
            raise ValueError("invalid RTO parameters")
        if self.degrade_threshold < 1:
            raise ValueError("degrade_threshold must be >= 1")


@dataclass
class FaultPlan:
    """A complete fault schedule (see the builder methods).

    >>> plan = (FaultPlan()
    ...         .drop(0.05)                    # 5% uniform loss
    ...         .corrupt(0.01, dst=3)          # mangle 1% of packets to 3
    ...         .stall(rank=1, start=100.0, duration=50.0)
    ...         .kill(rank=2, at=500.0))
    """

    losses: List[LossSpec] = field(default_factory=list)
    stalls: List[StallSpec] = field(default_factory=list)
    kills: List[KillSpec] = field(default_factory=list)
    link_downs: List[LinkDownSpec] = field(default_factory=list)
    transport: TransportParams = field(default_factory=TransportParams)

    # -- builders --------------------------------------------------------
    def add(self, spec: LossSpec) -> "FaultPlan":
        """Append a fully-specified :class:`LossSpec`."""
        self.losses.append(spec)
        return self

    def drop(self, p: float, **kw) -> "FaultPlan":
        """Drop matching packets with probability ``p``."""
        return self.add(LossSpec(drop_p=p, **kw))

    def duplicate(self, p: float, **kw) -> "FaultPlan":
        """Deliver matching packets twice with probability ``p``."""
        return self.add(LossSpec(dup_p=p, **kw))

    def corrupt(self, p: float, **kw) -> "FaultPlan":
        """Mangle matching payloads (checksum-detectable) with
        probability ``p``."""
        return self.add(LossSpec(corrupt_p=p, **kw))

    def delay(self, p: float, mean: float = 10.0, **kw) -> "FaultPlan":
        """Add exponential extra flight delay with probability ``p``."""
        return self.add(LossSpec(delay_p=p, delay_mean=mean, **kw))

    def stall(self, rank: int, start: float, duration: float) -> "FaultPlan":
        """Freeze ``rank``'s NIC injector for ``duration`` µs."""
        self.stalls.append(StallSpec(rank, start, duration))
        return self

    def kill(self, rank: int, at: float, restart_at: Optional[float] = None,
             kill_program: bool = True) -> "FaultPlan":
        """Kill ``rank`` at simulated time ``at``."""
        self.kills.append(KillSpec(rank, at, restart_at, kill_program))
        return self

    def link_down(self, u: Any, v: Any, at: float,
                  restore_at: Optional[float] = None,
                  both: bool = True) -> "FaultPlan":
        """Fail the topology cable ``u <-> v`` at simulated time ``at``
        (routed fabrics only; see :class:`LinkDownSpec`)."""
        self.link_downs.append(LinkDownSpec(u, v, at, restore_at, both))
        return self

    def with_transport(self, **kw) -> "FaultPlan":
        """Replace transport tuning parameters."""
        from dataclasses import replace

        self.transport = replace(self.transport, **kw)
        return self

    # -- queries ---------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all.

        An inactive plan arms neither the injector nor the reliable
        transport — the simulation stays on the fault-free fast path
        and is timestamp-identical to passing no plan.
        """
        return bool(self.losses or self.stalls or self.kills
                    or self.link_downs)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (fast path preserved)."""
        return cls()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultPlan losses={len(self.losses)} "
                f"stalls={len(self.stalls)} kills={len(self.kills)} "
                f"link_downs={len(self.link_downs)}>")
