"""Deterministic fault injection for the simulated machine.

The paper's completion attributes are only interesting because real
fabrics fail: packets are dropped, duplicated, delayed or corrupted,
NIC injectors stall, and whole nodes die.  This package provides a
seeded, fully reproducible fault model:

- :class:`FaultPlan` — a declarative schedule of packet-level faults
  (:class:`LossSpec`), NIC injector stalls (:class:`StallSpec`),
  rank kills/restarts (:class:`KillSpec`) and topology cable failures
  (:class:`LinkDownSpec`, routed fabrics only), plus the
  reliable-transport tuning knobs (:class:`TransportParams`);
- :class:`FaultInjector` — the runtime object the
  :class:`~repro.network.fabric.Fabric` consults per packet.  It draws
  from its own named RNG streams (one per (src, dst) path), so adding
  faults never perturbs the jitter streams and two runs with the same
  seed and plan are bit-identical.

Passing an *active* plan to :class:`~repro.runtime.World` also enables
the reliable transport in every :class:`~repro.network.nic.Nic`
(sequence numbers, ack-gated retransmission with exponential backoff,
duplicate suppression, checksum verification) and failure-aware RMA
completion.  With no plan (or an empty one) none of that machinery is
armed and the simulation is timestamp-identical to a fault-free run.
"""

from repro.faults.injector import FaultInjector, PacketFate
from repro.faults.plan import (
    FaultPlan,
    KillSpec,
    LinkDownSpec,
    LossSpec,
    StallSpec,
    TransportParams,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "KillSpec",
    "LinkDownSpec",
    "LossSpec",
    "PacketFate",
    "StallSpec",
    "TransportParams",
]
