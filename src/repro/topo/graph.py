"""Topology graphs: the interconnects the paper's machines actually have.

The paper's architectural taxonomy (§III) is anchored in concrete
networks — the Cray XT's 3D-torus SeaStar/Portals fabric, generic
RDMA clusters, and the NEC SX's IXS crossbar.  This module models them
as routed graphs:

- :class:`Torus3D` — a 3D torus where every node is both a router and a
  host (SeaStar personality).  Deterministic dimension-order routing
  with shortest-direction wraparound; the optional *adaptive* mode
  permutes the dimension traversal order per packet (minimal adaptive
  routing), which is exactly the behaviour §III-B1 warns breaks
  delivery ordering.
- :class:`FatTree` — a two-level folded-Clos (leaf/spine) fabric for
  generic RDMA clusters.  Deterministic up/down routing hashes the
  (src, dst) pair onto a spine; adaptive mode picks the spine per
  packet.
- :class:`Crossbar` — every host port connects to one central
  non-blocking switch (NEC SX IXS personality); contention exists only
  on the host ingress/egress links.

Graphs are built on :mod:`networkx`.  Routing for the healthy fabric is
computed by closed-form per-topology algorithms (cheap, deterministic);
when links are dead the topology falls back to a BFS shortest path on
the surviving graph (:meth:`Topology.route` with ``avoid``), raising
:class:`NoRoute` when the fabric is partitioned.

Every link is *directed* (a full-duplex cable is two directed links)
and carries its own latency and per-byte serialization time, defaulted
from the topology but overridable per link via :meth:`Topology.add_link`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

__all__ = ["NoRoute", "Topology", "Torus3D", "FatTree", "Crossbar",
           "link_label"]

#: A directed link: (tail node, head node).
Link = Tuple[Any, Any]


class NoRoute(RuntimeError):
    """No surviving path between two hosts (the fabric is partitioned)."""

    def __init__(self, src: Any, dst: Any) -> None:
        self.src = src
        self.dst = dst
        super().__init__(f"no surviving route {_node_str(src)} -> "
                         f"{_node_str(dst)}")


def _node_str(node: Any) -> str:
    """Compact display form of a graph node."""
    if isinstance(node, tuple):
        if len(node) == 2 and isinstance(node[0], str):
            return f"{node[0]}{node[1]}"  # ("leaf", 3) -> "leaf3"
        return "(" + ",".join(str(c) for c in node) + ")"
    return str(node)


def link_label(link: Link) -> str:
    """Stable human-readable label of a directed link (metrics key)."""
    return f"{_node_str(link[0])}->{_node_str(link[1])}"


class Topology:
    """A routed interconnect graph.

    Parameters
    ----------
    name:
        Display name (shows up in config/repr, not in routing).
    link_latency:
        Default per-hop wire latency (µs) of every link.
    link_byte_time:
        Default per-byte serialization time (µs/B) of every link —
        1/bandwidth.  Per-hop serialization is what makes shared links
        congest under incast/hotspot traffic.
    adaptive:
        Route packets adaptively (per-packet seeded choice among
        minimal routes).  Adaptive routing is the jitter source on
        topology paths — combined with an unordered
        :class:`~repro.network.config.NetworkConfig` it produces real
        overtaking, the case the paper's ordering attribute pays for.
    """

    def __init__(self, name: str, link_latency: float = 0.5,
                 link_byte_time: float = 0.0005,
                 adaptive: bool = False) -> None:
        if link_latency < 0 or link_byte_time < 0:
            raise ValueError("link latency/byte_time must be >= 0")
        self.name = name
        self.link_latency = float(link_latency)
        self.link_byte_time = float(link_byte_time)
        self.adaptive = bool(adaptive)
        self.graph = nx.DiGraph()
        self.hosts: List[Any] = []

    # -- construction ----------------------------------------------------
    def add_host(self, node: Any) -> None:
        """Register ``node`` as a host port (rank-attachable)."""
        self.graph.add_node(node)
        self.hosts.append(node)

    def add_link(self, u: Any, v: Any, latency: Optional[float] = None,
                 byte_time: Optional[float] = None) -> None:
        """Add the full-duplex cable ``u <-> v`` (two directed links)."""
        lat = self.link_latency if latency is None else float(latency)
        bt = self.link_byte_time if byte_time is None else float(byte_time)
        self.graph.add_edge(u, v, latency=lat, byte_time=bt)
        self.graph.add_edge(v, u, latency=lat, byte_time=bt)

    # -- queries ---------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        """Host ports available for rank placement."""
        return len(self.hosts)

    def links(self) -> List[Link]:
        """Every directed link, deterministically ordered."""
        return sorted(self.graph.edges)

    def link_params(self, u: Any, v: Any) -> Tuple[float, float]:
        """``(latency, byte_time)`` of the directed link ``u -> v``."""
        data = self.graph.edges[u, v]
        return data["latency"], data["byte_time"]

    def max_hops(self) -> int:
        """Upper bound on healthy-route length (RTO sizing)."""
        raise NotImplementedError

    # -- routing ---------------------------------------------------------
    def route(self, src: Any, dst: Any, rng=None,
              avoid: "frozenset[Link] | set[Link] | tuple" = ()) -> List[Link]:
        """The directed-link path ``src -> dst``.

        Deterministic unless the topology is adaptive *and* ``rng`` (a
        NumPy generator) is given.  ``avoid`` lists dead links: when the
        primary route crosses one, a BFS shortest path on the surviving
        graph is used instead; :class:`NoRoute` means partition.
        """
        if src == dst:
            return []
        path = self._route(src, dst, rng)
        if not avoid or all(link not in avoid for link in path):
            return path
        return self._detour(src, dst, avoid)

    def _route(self, src: Any, dst: Any, rng) -> List[Link]:
        raise NotImplementedError

    def _detour(self, src: Any, dst: Any, avoid) -> List[Link]:
        """Shortest path avoiding dead links (deterministic BFS order)."""
        view = nx.restricted_view(self.graph, [], list(avoid))
        try:
            nodes = nx.shortest_path(view, src, dst)
        except nx.NetworkXNoPath:
            raise NoRoute(src, dst) from None
        return list(zip(nodes, nodes[1:]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name} hosts={self.n_hosts} "
                f"links={self.graph.number_of_edges()}"
                f"{' adaptive' if self.adaptive else ''}>")


class Torus3D(Topology):
    """3D torus, Cray XT SeaStar personality.

    Every coordinate ``(x, y, z)`` is both a router and a host.
    ``hosts[i]`` enumerates coordinates in row-major order (z fastest),
    so block rank placement keeps consecutive ranks on adjacent torus
    nodes.  Dimension-order routing corrects x, then y, then z, taking
    the shorter wrap direction (ties go +1); adaptive mode permutes the
    dimension traversal order per packet — minimal, but different
    intermediate links, which is what makes concurrent flows jitter.
    """

    def __init__(self, dims: Tuple[int, int, int] = (4, 4, 4),
                 link_latency: float = 0.5, link_byte_time: float = 0.0005,
                 adaptive: bool = False) -> None:
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"dims must be three ints >= 1, got {dims!r}")
        super().__init__(
            name=f"torus3d-{dims[0]}x{dims[1]}x{dims[2]}"
                 + ("-adaptive" if adaptive else ""),
            link_latency=link_latency, link_byte_time=link_byte_time,
            adaptive=adaptive,
        )
        self.dims = dims
        for coord in itertools.product(*(range(d) for d in dims)):
            self.add_host(coord)
        for coord in self.hosts:
            for dim in range(3):
                if dims[dim] < 2:
                    continue
                nxt = list(coord)
                nxt[dim] = (coord[dim] + 1) % dims[dim]
                self.add_link(coord, tuple(nxt))

    def _route(self, src: Any, dst: Any, rng) -> List[Link]:
        order = (0, 1, 2)
        if self.adaptive and rng is not None:
            order = tuple(int(i) for i in rng.permutation(3))
        path: List[Link] = []
        cur = list(src)
        for dim in order:
            n = self.dims[dim]
            while cur[dim] != dst[dim]:
                fwd = (dst[dim] - cur[dim]) % n
                step = 1 if fwd <= n - fwd else -1
                nxt = list(cur)
                nxt[dim] = (cur[dim] + step) % n
                path.append((tuple(cur), tuple(nxt)))
                cur = nxt
        return path

    def max_hops(self) -> int:
        return max(1, sum(d // 2 for d in self.dims))


class FatTree(Topology):
    """Two-level folded Clos (leaf/spine), generic RDMA cluster.

    Hosts ``("h", i)`` hang off leaf switches ``("leaf", i // per_leaf)``;
    every leaf uplinks to every spine ``("spine", j)``.  Up/down routing:
    same-leaf pairs turn around at the leaf (2 hops), cross-leaf pairs
    climb to a spine (4 hops).  The spine is chosen deterministically
    from the (src, dst) host indices; adaptive mode draws it per packet.
    """

    def __init__(self, hosts_per_leaf: int = 4, n_leaf: int = 4,
                 n_spine: int = 2, link_latency: float = 0.5,
                 link_byte_time: float = 0.0005,
                 adaptive: bool = False) -> None:
        if hosts_per_leaf < 1 or n_leaf < 1 or n_spine < 1:
            raise ValueError("hosts_per_leaf, n_leaf, n_spine must be >= 1")
        super().__init__(
            name=f"fattree-{hosts_per_leaf}x{n_leaf}x{n_spine}"
                 + ("-adaptive" if adaptive else ""),
            link_latency=link_latency, link_byte_time=link_byte_time,
            adaptive=adaptive,
        )
        self.hosts_per_leaf = hosts_per_leaf
        self.n_leaf = n_leaf
        self.n_spine = n_spine
        self._host_index: Dict[Any, int] = {}
        for i in range(hosts_per_leaf * n_leaf):
            host = ("h", i)
            self.add_host(host)
            self._host_index[host] = i
            self.add_link(host, ("leaf", i // hosts_per_leaf))
        for leaf in range(n_leaf):
            for spine in range(n_spine):
                self.add_link(("leaf", leaf), ("spine", spine))

    def _leaf_of(self, host: Any) -> Any:
        return ("leaf", self._host_index[host] // self.hosts_per_leaf)

    def _route(self, src: Any, dst: Any, rng) -> List[Link]:
        leaf_s, leaf_d = self._leaf_of(src), self._leaf_of(dst)
        if leaf_s == leaf_d:
            return [(src, leaf_s), (leaf_s, dst)]
        if self.adaptive and rng is not None:
            spine_idx = int(rng.integers(self.n_spine))
        else:
            spine_idx = (self._host_index[src]
                         + self._host_index[dst]) % self.n_spine
        spine = ("spine", spine_idx)
        return [(src, leaf_s), (leaf_s, spine), (spine, leaf_d),
                (leaf_d, dst)]

    def max_hops(self) -> int:
        return 4


class Crossbar(Topology):
    """Central crossbar switch, NEC SX IXS personality.

    Every host ``("h", i)`` has one full-duplex port into the (modeled
    as non-blocking) crossbar ``("xbar", 0)``.  All contention lives on
    the per-host ingress and egress links — incast at a host serializes
    on its egress port exactly like the IXS.  Routing is trivially
    deterministic, so adaptive mode is meaningless here and rejected.
    """

    def __init__(self, n_hosts: int = 8, link_latency: float = 0.5,
                 link_byte_time: float = 0.0005) -> None:
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        super().__init__(name=f"crossbar-{n_hosts}",
                         link_latency=link_latency,
                         link_byte_time=link_byte_time, adaptive=False)
        self.switch = ("xbar", 0)
        self.graph.add_node(self.switch)
        for i in range(n_hosts):
            host = ("h", i)
            self.add_host(host)
            self.add_link(host, self.switch)

    def _route(self, src: Any, dst: Any, rng) -> List[Link]:
        return [(src, self.switch), (self.switch, dst)]

    def max_hops(self) -> int:
        return 2
