"""Live routing state: link contention, dead links, per-link metrics.

A :class:`TopoRuntime` binds a :class:`~repro.topo.graph.Topology` to a
running simulation.  The :class:`~repro.network.fabric.Fabric` consults
it once per inter-node packet to compute the arrival time over the
routed path; everything else (NIC injection, ordering clamps, acks,
fault fates) stays in the fabric.

**Contention model.**  Transfers are store-and-forward: at each hop the
packet serializes onto the directed link (``wire_bytes * byte_time``)
and then flies the hop latency.  Every link keeps a *busy-until* time;
a packet reaching a link before it is free queues (FIFO) and the wait
is charged as queueing delay.  Reservations are made analytically at
``Fabric.transmit`` time — the simulator processes events in
nondecreasing simulated-time order, so later transmissions always see
every earlier reservation and the model is causally consistent without
per-hop events.  This is what makes hotspot/incast traffic measurably
congest: N flows crossing one link serialize on it.

**Adaptive routing.**  When the topology is adaptive the runtime draws
the per-packet route from a dedicated RNG stream (``topo.route``) of
the world's registry, so two runs with the same seed route identically
and arming other stochastic consumers never perturbs routes.

**Dead links.**  :meth:`fail_link` removes a cable from service; routes
are recomputed around it (BFS on the surviving graph).  When no path
survives the packet is unroutable — the fabric drops it, and with the
reliable transport armed the retry budget eventually surfaces the
partition as a structured RMA error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.topo.graph import Link, NoRoute, Topology, link_label

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import Tracer

__all__ = ["LinkStats", "TopoRuntime"]

#: Cache sentinel for pairs with no surviving route.
_UNROUTABLE = object()


class LinkStats:
    """Traffic accounting of one directed link (plain attributes on the
    hot path; published as metrics by :meth:`TopoRuntime.publish_metrics`)."""

    __slots__ = ("packets", "bytes", "busy_us", "queue_us")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.busy_us = 0.0
        self.queue_us = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LinkStats packets={self.packets} bytes={self.bytes} "
                f"busy={self.busy_us:.1f}us queue={self.queue_us:.1f}us>")


class TopoRuntime:
    """One simulation's routed-fabric state.

    Parameters
    ----------
    topology:
        The interconnect graph.
    rank_to_host:
        Mapping from world rank to the topology host its node plugs
        into (built by the World from the machine's placement layer).
    rng:
        The world's :class:`~repro.sim.rng.RngRegistry`; only consulted
        when the topology routes adaptively.
    tracer:
        Optional tracer for fault/unroutable counters.
    """

    def __init__(self, topology: Topology,
                 rank_to_host: Mapping[int, Any],
                 rng: "RngRegistry | None" = None,
                 tracer: "Tracer | None" = None) -> None:
        self.topology = topology
        self._host_of: Dict[int, Any] = dict(rank_to_host)
        for rank, host in self._host_of.items():
            if host not in topology.graph:
                raise ValueError(
                    f"rank {rank} placed on unknown host {host!r}")
        self._params: Dict[Link, Tuple[float, float]] = {
            link: topology.link_params(*link) for link in topology.links()
        }
        self.tracer = tracer
        self._route_rng = (
            rng.stream("topo.route")
            if (rng is not None and topology.adaptive) else None
        )
        # Per-directed-link contention + accounting state.
        self._busy: Dict[Link, float] = {}
        self.link_stats: Dict[Link, LinkStats] = {}
        # Route memo, valid only while no link is dead and routing is
        # deterministic (adaptive routes are drawn per packet).
        self._routes: Dict[Tuple[Any, Any], Any] = {}
        self._dead: Set[Link] = set()
        # stats
        self.packets_routed = 0
        self.hops_traversed = 0
        self.unroutable = 0

    # -- placement -------------------------------------------------------
    def host_of(self, rank: int) -> Any:
        """The topology host ``rank``'s node plugs into."""
        return self._host_of[rank]

    # -- routing ---------------------------------------------------------
    def path_for(self, src_rank: int, dst_rank: int) -> Optional[List[Link]]:
        """The directed-link route for one packet, or ``None`` when the
        pair is partitioned by dead links."""
        src = self._host_of[src_rank]
        dst = self._host_of[dst_rank]
        if src == dst:
            return []
        if self._route_rng is not None:
            try:
                return self.topology.route(src, dst, rng=self._route_rng,
                                           avoid=self._dead)
            except NoRoute:
                return None
        key = (src, dst)
        path = self._routes.get(key)
        if path is None:
            try:
                path = tuple(self.topology.route(src, dst, avoid=self._dead))
            except NoRoute:
                path = _UNROUTABLE
            self._routes[key] = path
        return None if path is _UNROUTABLE else list(path)

    # -- flight-time model ----------------------------------------------
    def flight(self, src_rank: int, dst_rank: int, wire_bytes: int,
               now: float) -> Optional[float]:
        """Arrival time of a packet injected at ``now``, accruing
        per-hop serialization and queueing; ``None`` if unroutable."""
        path = self.path_for(src_rank, dst_rank)
        if path is None:
            self.unroutable += 1
            if self.tracer is not None:
                self.tracer.bump("topo.unroutable")
            return None
        if not path:
            # Loopback between ranks sharing a host port: one switch
            # traversal, no cable contention.
            return now + self.topology.link_latency
        t = now
        busy = self._busy
        stats = self.link_stats
        for link in path:
            latency, byte_time = self._params[link]
            start = busy.get(link, 0.0)
            if start < t:
                start = t
            ser = wire_bytes * byte_time
            busy[link] = start + ser
            st = stats.get(link)
            if st is None:
                st = stats[link] = LinkStats()
            st.packets += 1
            st.bytes += wire_bytes
            st.busy_us += ser
            st.queue_us += start - t
            t = start + ser + latency
        self.packets_routed += 1
        self.hops_traversed += len(path)
        return t

    # -- fault surface ---------------------------------------------------
    @property
    def dead_links(self) -> Set[Link]:
        """Currently-failed directed links (read-only view by courtesy)."""
        return self._dead

    def fail_link(self, u: Any, v: Any, both: bool = True) -> None:
        """Take the cable ``u -> v`` (and ``v -> u`` unless ``both`` is
        false) out of service; routes recompute around it."""
        if (u, v) not in self._params:
            raise ValueError(f"unknown link {link_label((u, v))}")
        self._dead.add((u, v))
        if both:
            self._dead.add((v, u))
        self._routes.clear()
        if self.tracer is not None:
            self.tracer.bump("topo.link_down")

    def restore_link(self, u: Any, v: Any, both: bool = True) -> None:
        """Return a failed cable to service."""
        self._dead.discard((u, v))
        if both:
            self._dead.discard((v, u))
        self._routes.clear()
        if self.tracer is not None:
            self.tracer.bump("topo.link_up")

    # -- observability ---------------------------------------------------
    def utilization(self, link: Link, now: float) -> float:
        """Fraction of simulated time the link spent serializing."""
        st = self.link_stats.get(link)
        if st is None or now <= 0.0:
            return 0.0
        return st.busy_us / now

    def publish_metrics(self, metrics: "MetricsRegistry",
                        now: float) -> None:
        """Publish per-link traffic/utilization gauges into ``metrics``
        (idempotent — gauges are set, not incremented)."""
        for link in sorted(self.link_stats):
            st = self.link_stats[link]
            label = link_label(link)
            metrics.gauge("topo.link.packets", link=label).set(st.packets)
            metrics.gauge("topo.link.bytes", link=label).set(st.bytes)
            metrics.gauge("topo.link.busy_us", link=label).set(st.busy_us)
            metrics.gauge("topo.link.queue_us", link=label).set(st.queue_us)
            metrics.gauge("topo.link.util", link=label).set(
                self.utilization(link, now))
        metrics.gauge("topo.packets_routed").set(self.packets_routed)
        metrics.gauge("topo.hops_traversed").set(self.hops_traversed)
        metrics.gauge("topo.unroutable").set(self.unroutable)
        metrics.gauge("topo.links_dead").set(len(self._dead))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TopoRuntime {self.topology.name} "
                f"ranks={len(self._host_of)} routed={self.packets_routed} "
                f"dead_links={len(self._dead)}>")
