"""Topology-aware interconnects: routed fabrics with link contention.

Turns the flat endpoint-to-endpoint LogGP pipe into a routed network —
the concrete interconnects the paper's §III taxonomy is anchored in:

- :class:`Torus3D` — Cray XT 3D torus (SeaStar/Portals), deterministic
  dimension-order routing or minimal adaptive routing;
- :class:`FatTree` — leaf/spine folded Clos for generic RDMA clusters,
  up/down routing;
- :class:`Crossbar` — NEC SX IXS central crossbar.

A topology rides on :class:`~repro.network.config.NetworkConfig` via
its ``topology`` field (the presets in :mod:`repro.topo.presets` build
the pairing); the :class:`~repro.runtime.World` binds it to the machine
placement and installs a :class:`TopoRuntime` on the fabric.  With
``topology=None`` nothing here is ever imported or consulted — the flat
fast path stays bit-identical.
"""

from repro.topo.graph import (
    Crossbar,
    FatTree,
    NoRoute,
    Topology,
    Torus3D,
    link_label,
)
from repro.topo.presets import crossbar_network, fattree_network, torus_network
from repro.topo.runtime import LinkStats, TopoRuntime

__all__ = [
    "Crossbar",
    "FatTree",
    "LinkStats",
    "NoRoute",
    "TopoRuntime",
    "Topology",
    "Torus3D",
    "crossbar_network",
    "fattree_network",
    "link_label",
    "torus_network",
]
