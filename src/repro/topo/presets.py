"""Named topology-network pairings matching the paper's machines.

Each preset returns a :class:`~repro.network.config.NetworkConfig`
whose ``topology`` field is populated — handing it to a
:class:`~repro.runtime.World` turns the flat LogGP pipe into the routed
fabric.  NIC-side LogGP parameters (overheads, gap, MTU, capability
flags) come from the base personality; wire flight is taken over by the
topology's per-hop link model.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.network.config import (
    NetworkConfig,
    generic_rdma,
    seastar_portals,
)
from repro.topo.graph import Crossbar, FatTree, Torus3D

__all__ = ["torus_network", "fattree_network", "crossbar_network"]


def torus_network(dims: Tuple[int, int, int] = (4, 4, 4),
                  adaptive: bool = False,
                  base: Optional[NetworkConfig] = None,
                  link_latency: float = 0.5,
                  link_byte_time: float = 0.0005) -> NetworkConfig:
    """Cray XT personality on a routed 3D torus.

    Deterministic dimension-order routing keeps the fabric ordered (the
    SeaStar guarantee); ``adaptive=True`` switches to minimal adaptive
    routing and *drops the ordering guarantee* — the §III-B1 trade the
    ordering attribute then has to pay for in software.
    """
    base = base if base is not None else seastar_portals()
    topo = Torus3D(dims, link_latency=link_latency,
                   link_byte_time=link_byte_time, adaptive=adaptive)
    return base.with_(
        name=f"{base.name}+{topo.name}",
        topology=topo,
        ordered=base.ordered and not adaptive,
        jitter=0.0,  # route variability is the jitter source on a torus
    )


def fattree_network(hosts_per_leaf: int = 4, n_leaf: int = 4,
                    n_spine: int = 2, adaptive: bool = False,
                    base: Optional[NetworkConfig] = None,
                    link_latency: float = 0.5,
                    link_byte_time: float = 0.0005) -> NetworkConfig:
    """Generic RDMA cluster on a leaf/spine fat-tree."""
    base = base if base is not None else generic_rdma()
    topo = FatTree(hosts_per_leaf, n_leaf, n_spine,
                   link_latency=link_latency, link_byte_time=link_byte_time,
                   adaptive=adaptive)
    return base.with_(
        name=f"{base.name}+{topo.name}",
        topology=topo,
        ordered=base.ordered and not adaptive,
        jitter=0.0,
    )


def crossbar_network(n_hosts: int = 8,
                     base: Optional[NetworkConfig] = None,
                     link_latency: float = 0.3,
                     link_byte_time: float = 0.0002) -> NetworkConfig:
    """NEC SX IXS personality: one central crossbar, fat host ports.

    Pairs naturally with a hierarchical machine
    (:func:`~repro.machine.config.nec_sx9`) whose intra-node traffic
    stays on the shared-memory path while node-to-node transfers cross
    the crossbar.
    """
    if base is None:
        base = generic_rdma().with_(name="ixs-like",
                                    latency=1.0, byte_time=0.0002)
    topo = Crossbar(n_hosts, link_latency=link_latency,
                    link_byte_time=link_byte_time)
    return base.with_(
        name=f"{base.name}+{topo.name}",
        topology=topo,
    )
