"""The strawman MPI-3 RMA interface (the paper's §IV–V contribution).

This package implements the proposed API with per-operation *attributes*
— the paper's central idea — and the machinery needed to honour each
attribute on fabrics/machines that do or do not support it natively:

========================  ===================================================
piece                     role
========================  ===================================================
:class:`RmaAttrs`         the attribute set (ordering, remote completion,
                          atomicity, blocking), settable per call or as a
                          per-communicator default (§IV req. 5)
:class:`TargetMem`        non-collectively created descriptor of remotely
                          accessible memory (§IV req. 1; §V)
:class:`RmaInterface`     the user-facing API: ``put``/``get``/
                          ``accumulate``/``xfer``; ``complete``/``order``
                          (per-target, ``ALL_RANKS``, collective);
                          conditional/unconditional RMW; RMI extension
:mod:`~repro.rma.engine`  the protocol engine: fragmentation, per-pair
                          sequencing, software/hardware completion
                          strategies, heterogeneity conversion
:mod:`~repro.rma.serializer`  the three atomicity serializers of §V-A:
                          communication thread, coarse-grain process-level
                          lock, bare MPI progress
========================  ===================================================
"""

from repro.rma.attributes import ALL_RANKS, RmaAttrs
from repro.rma.api import RmaInterface
from repro.rma.engine import RmaEngine, build_rma
from repro.rma.serializer import (
    CoarseLockSerializer,
    ProgressSerializer,
    Serializer,
    ThreadSerializer,
)
from repro.rma.target_mem import RmaError, TargetMem

__all__ = [
    "ALL_RANKS",
    "CoarseLockSerializer",
    "ProgressSerializer",
    "RmaAttrs",
    "RmaEngine",
    "RmaError",
    "RmaInterface",
    "Serializer",
    "TargetMem",
    "ThreadSerializer",
    "build_rma",
]
