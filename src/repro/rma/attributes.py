"""RMA attributes (paper §III-A, §IV).

The strawman API's key flexibility: every operation carries an
attribute set selecting which guarantees it needs.

- ``ordering`` — read/write consistency w.r.t. a single origin: two
  operations from the same origin to the same target apply in issue
  order (the paper's *ordering property*).
- ``remote_completion`` — the operation's completion (of its request,
  or of the call itself when blocking) means the data has reached
  target memory, not merely left the origin.
- ``atomicity`` — the whole operation applies exclusively with respect
  to other atomic operations on the same target (serializer-enforced;
  needed for sequential-consistency-style usage).
- ``blocking`` — single-call RMA (§IV req. 4): the call itself waits
  for completion (local, or remote if ``remote_completion`` is set).
- ``notify`` — not a boolean guarantee but an optional *match value*
  (a small non-negative integer): the operation carries a notification
  that becomes visible on the target's per-window notification board
  only after the payload has been applied there (UNR-style notified
  put/get — see DESIGN §15).  ``None`` (the default) means "no
  notification" and leaves every wire descriptor byte-identical to a
  build without the notify subsystem.

Attributes may be set per call or as a per-communicator default; the
paper suggests "permitting the use of the most stringent rules while
debugging", which :meth:`RmaAttrs.strict` provides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["RmaAttrs", "ALL_RANKS"]

#: Target-rank wildcard for ``complete``/``order`` (paper §IV:
#: ``MPI_ALL_RANKS``).
ALL_RANKS = -1


@dataclass(frozen=True)
class RmaAttrs:
    """An attribute set for one RMA operation (or a communicator default)."""

    ordering: bool = False
    remote_completion: bool = False
    atomicity: bool = False
    blocking: bool = False
    #: Optional notification match value (int >= 0); ``None`` = no
    #: notification.  Deliberately excluded from :meth:`strict` — the
    #: debugging mode tightens guarantees, it does not add side effects.
    notify: Optional[int] = None

    @classmethod
    def none(cls) -> "RmaAttrs":
        """No guarantees — the unrestricted high-performance mode."""
        return cls()

    @classmethod
    def strict(cls) -> "RmaAttrs":
        """Every guarantee on — the paper's debugging mode."""
        return cls(
            ordering=True, remote_completion=True, atomicity=True, blocking=True
        )

    def with_(self, **kwargs) -> "RmaAttrs":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    def merged(self, override: Optional["RmaAttrs"]) -> "RmaAttrs":
        """Per-call override wins when provided, else self (the default)."""
        return override if override is not None else self

    def __str__(self) -> str:
        on = [
            name
            for name in ("ordering", "remote_completion", "atomicity", "blocking")
            if getattr(self, name)
        ]
        if self.notify is not None:
            on.append(f"notify={self.notify}")
        return "+".join(on) if on else "none"
