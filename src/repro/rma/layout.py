"""Transfer layout helpers: fragmentation and typed application.

Large RMA transfers are split into MTU-sized *fragments*.  For puts and
accumulates, a fragment is a list of ``(target_disp, nbytes, elem_size)``
sub-segments plus the matching dense byte blob, split only at element
boundaries so the receiver can byte-swap per element when origin and
target endianness differ (heterogeneous systems, paper §III-B3).

Get replies are simpler: dense wire bytes with offsets; the origin
assembles the full dense buffer and unpacks it once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datatypes.base import Datatype, Segment
from repro.machine.node import RankMemory
from repro.machine.address_space import Allocation

__all__ = ["Fragment", "fragment_layout", "apply_put_fragment",
           "apply_accumulate", "read_layout"]


@dataclass(frozen=True, slots=True)
class Fragment:
    """One MTU-sized piece of a typed write transfer.

    ``subsegs`` are ``(target_disp, nbytes, elem_size)`` tuples relative
    to the transfer's base displacement; ``data`` is the dense
    concatenation of their bytes in order.
    """

    index: int
    total: int
    subsegs: Tuple[Tuple[int, int, int], ...]
    data: np.ndarray


def fragment_layout(
    dtype: Datatype, count: int, wire: np.ndarray, mtu: int
) -> List[Fragment]:
    """Split a packed transfer into element-aligned fragments.

    ``wire`` is the dense packed payload (``count * dtype.size`` bytes).
    Fragments carry at most ``mtu`` data bytes each; a sub-segment is
    split only at multiples of its element size, which is always
    possible because element sizes (<= 8) are far below any sane MTU.
    """
    frags: List[List[Tuple[int, int, int]]] = [[]]
    sizes = [0]
    for seg in dtype.segments_for(count):
        disp, remaining, elem = seg.disp, seg.nbytes, seg.elem_size
        while remaining > 0:
            room = mtu - sizes[-1]
            if room < elem:
                frags.append([])
                sizes.append(0)
                room = mtu
            take = min(remaining, room)
            take -= take % elem  # element-aligned split
            frags[-1].append((disp, take, elem))
            sizes[-1] += take
            disp += take
            remaining -= take
    if not frags[-1]:
        frags.pop()
        sizes.pop()
    out: List[Fragment] = []
    pos = 0
    total = len(frags)
    for i, (subsegs, size) in enumerate(zip(frags, sizes)):
        out.append(
            Fragment(
                index=i,
                total=total,
                subsegs=tuple(subsegs),
                data=wire[pos : pos + size],
            )
        )
        pos += size
    assert pos == wire.size, "fragmentation lost bytes"
    return out


def _swapped(data: np.ndarray, elem: int) -> np.ndarray:
    if elem <= 1:
        return data
    # ascontiguousarray: the reversed view cannot be retyped in place
    return np.ascontiguousarray(
        data.reshape(-1, elem)[:, ::-1]
    ).reshape(-1)


def apply_put_fragment(
    mem: RankMemory,
    alloc: Allocation,
    base_disp: int,
    frag: Fragment,
    swap: bool,
) -> None:
    """Deposit one put fragment into target memory via the NIC path."""
    pos = 0
    for disp, nbytes, elem in frag.subsegs:
        chunk = frag.data[pos : pos + nbytes]
        if swap:
            chunk = _swapped(chunk, elem)
        mem.nic_write(alloc, base_disp + disp, chunk)
        pos += nbytes


def apply_accumulate(
    mem: RankMemory,
    alloc: Allocation,
    base_disp: int,
    frag: Fragment,
    swap: bool,
    np_elem: str,
    op: str,
    scale: float,
    target_byteorder: str,
) -> None:
    """Apply one accumulate fragment element-wise at the target.

    ``op`` is one of ``sum``, ``prod``, ``min``, ``max``, ``replace``,
    ``daxpy`` (``target += scale * incoming``).
    """
    np_dt = np.dtype(np_elem).newbyteorder(target_byteorder)
    pos = 0
    for disp, nbytes, elem in frag.subsegs:
        incoming = frag.data[pos : pos + nbytes]
        if swap:
            incoming = _swapped(incoming, elem)
        incoming_vals = incoming.view(np_dt)
        if op == "replace":
            mem.nic_write(alloc, base_disp + disp, incoming)
            pos += nbytes
            continue
        current = mem.nic_read(alloc, base_disp + disp, nbytes).view(np_dt)
        if op == "sum":
            result = current + incoming_vals
        elif op == "prod":
            result = current * incoming_vals
        elif op == "min":
            result = np.minimum(current, incoming_vals)
        elif op == "max":
            result = np.maximum(current, incoming_vals)
        elif op == "daxpy":
            result = current + np.dtype(np_elem).type(scale) * incoming_vals
        else:
            raise ValueError(f"unknown accumulate op {op!r}")
        mem.nic_write(
            alloc, base_disp + disp, result.astype(np_dt).view(np.uint8)
        )
        pos += nbytes


def read_layout(
    mem: RankMemory,
    alloc: Allocation,
    base_disp: int,
    dtype: Datatype,
    count: int,
) -> np.ndarray:
    """NIC-side gather of a typed region into dense wire bytes."""
    total = count * dtype.size
    out = np.empty(total, dtype=np.uint8)
    pos = 0
    for seg in dtype.segments_for(count):
        out[pos : pos + seg.nbytes] = mem.nic_read(
            alloc, base_disp + seg.disp, seg.nbytes
        )
        pos += seg.nbytes
    return out
