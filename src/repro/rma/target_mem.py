"""Target memory descriptors (paper §IV–V).

A :class:`TargetMem` describes memory on some rank that other ranks may
access remotely.  Crucially — and unlike MPI-2's ``MPI_Win`` — it is
created **non-collectively**: the owner calls
:meth:`~repro.rma.api.RmaInterface.expose` locally and is "responsible
for passing the target_mem object to the MPI processes that need to
access memory remotely" (§V).  The descriptor is plain immutable data,
safe to ship in a message.

It also answers §III-B3/§IV's heterogeneity concern: the descriptor
carries the *target's* pointer width and endianness, so an origin in a
32-bit little-endian address space can address memory in a 64-bit
big-endian one, with the engine converting representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["TargetMem", "RmaError", "ERROR_KINDS"]

#: Structured failure taxonomy.  ``usage`` covers plain API misuse
#: (no transport involvement); the rest classify delivery failures:
#: ``retry_exhausted`` (the reliable transport gave up on a live path),
#: ``rank_failed`` (the target rank is dead), ``window_revoked`` (an
#: MPI-2 window was revoked after a failure — see
#: :class:`repro.resil.errors.WindowRevoked`) and ``link_partition``
#: (a routed fabric lost every route between the endpoints).
ERROR_KINDS = (
    "usage",
    "retry_exhausted",
    "rank_failed",
    "window_revoked",
    "link_partition",
)


class RmaError(RuntimeError):
    """Protocol/usage or delivery error in the RMA layer.

    Plain usage errors carry only a message (``kind="usage"``).
    Delivery failures raised by the failure-aware completion path
    (reliable transport gave up on a path, or the target rank died)
    additionally populate the structured fields so applications and
    tests can react programmatically, and classify themselves with
    ``kind`` (one of :data:`ERROR_KINDS`).

    Instances pickle faithfully (all structured fields survive a
    round trip) so ``repro.check`` reproducer artifacts can carry
    failures.

    Attributes
    ----------
    kind:
        Failure class from :data:`ERROR_KINDS`.
    op:
        Operation kind that failed (``"put"``, ``"get"``, ...), or
        ``None`` for usage errors.
    src:
        Origin rank of the failed operation, when known.
    target:
        Target rank of the failed operation.
    path:
        ``(src, dst)`` of the broken flow, when a transport failure is
        behind the error.
    attrs:
        The :class:`~repro.rma.attrs.RmaAttrs` the operation was issued
        with, when known.
    retries:
        Transmission attempts the reliable transport made before giving
        up.
    sim_time:
        Simulated time at which the failure was declared.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "usage",
        op: Optional[str] = None,
        src: Optional[int] = None,
        target: Optional[int] = None,
        path: Optional[Tuple[int, int]] = None,
        attrs: object = None,
        retries: Optional[int] = None,
        sim_time: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        if kind not in ERROR_KINDS:
            raise ValueError(f"unknown error kind {kind!r}; "
                             f"choose from {ERROR_KINDS}")
        self.kind = kind
        self.op = op
        self.src = src
        self.target = target
        self.path = path
        self.attrs = attrs
        self.retries = retries
        self.sim_time = sim_time

    def __str__(self) -> str:
        msg = super().__str__()
        if self.kind == "usage":
            return msg
        bits = [f"kind={self.kind}"]
        if self.op is not None:
            bits.append(f"op={self.op}")
        if self.path is not None:
            bits.append(f"path={self.path[0]}->{self.path[1]}")
        elif self.target is not None:
            bits.append(f"target={self.target}")
        if self.retries is not None:
            bits.append(f"retries={self.retries}")
        if self.sim_time is not None:
            bits.append(f"t={self.sim_time:.3f}")
        return f"{msg} [{' '.join(bits)}]"

    def __reduce__(self):
        # BaseException's default reduce calls ``cls(*args)`` which
        # works here (message is the only positional), but subclasses
        # with required keyword fields need the state dict applied too
        # — return it explicitly so every subclass round-trips.
        return (_rebuild_rma_error, (type(self), self.args, self.__dict__))


def _rebuild_rma_error(cls, args, state):
    """Unpickle an :class:`RmaError` (or subclass) without re-running
    ``__init__`` keyword validation against a bare message."""
    err = cls.__new__(cls)
    RuntimeError.__init__(err, *args)
    err.__dict__.update(state)
    return err


@dataclass(frozen=True)
class TargetMem:
    """A descriptor of remotely accessible memory.

    Attributes
    ----------
    rank:
        The owning (target) rank.
    mem_id:
        Opaque registration id within the owner's RMA engine.
    size:
        Bytes exposed.
    pointer_bits:
        Address width of the owner's address space (32 or 64).
    endianness:
        Byte order of the owner's node (``"little"``/``"big"``).
    coherent:
        Whether the owner's node keeps CPU caches coherent with NIC
        writes.  Origins use this to pick the completion protocol: a
        non-coherent target (NEC SX style) must be involved in making
        deposited data visible, so completion is application-time, not
        delivery-time (paper §III-B2).
    shared:
        The exposure was created as a *shared-memory window*
        (``MPI_Win_allocate_shared`` flavor): origins co-located on the
        owner's node may access it by direct load/store through the
        node's cache model instead of the NIC.  Only ever True on a
        coherent owner — a non-coherent node cannot offer load/store
        sharing, so the request degrades to a plain exposure at
        :meth:`~repro.rma.engine.RmaEngine.expose`.  Off-node origins
        ignore the flag entirely.
    """

    rank: int
    mem_id: int
    size: int
    pointer_bits: int
    endianness: str
    coherent: bool = True
    shared: bool = False

    def __getstate__(self):
        # Wire compatibility: descriptors travel in messages whose
        # simulated size is their pickle size, and the perf baselines
        # were recorded before the shared flavor existed.  A plain
        # (shared=False) descriptor must therefore pickle to the exact
        # same bytes as it always did — drop the field and let
        # __setstate__ default it.
        state = dict(self.__dict__)
        if not state.get("shared"):
            state.pop("shared", None)
        return state

    def __setstate__(self, state):
        state.setdefault("shared", False)
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def check_access(self, disp: int, nbytes_lo: int, nbytes_hi: int) -> None:
        """Validate a byte range ``[disp+lo, disp+hi)`` against the
        exposed region and the target's address width."""
        lo = disp + nbytes_lo
        hi = disp + nbytes_hi
        if lo < 0 or hi > self.size:
            raise RmaError(
                f"RMA access [{lo}, {hi}) outside target_mem of {self.size} "
                f"bytes on rank {self.rank}"
            )
        if hi >= 2 ** self.pointer_bits:
            raise RmaError(
                f"displacement {hi} not addressable in the target's "
                f"{self.pointer_bits}-bit address space"
            )
