"""Atomicity serializers (paper §V-A).

A *serializer* is "a mechanism to execute memory access operations on a
remote address space in sequence".  The prototype in the paper measures
two, and mentions a third fallback; all three are implemented here:

- :class:`ThreadSerializer` — a communication thread at the target
  drains a FIFO of atomic-operation jobs, one at a time.  This models
  both the implicit (active-message handler) and explicit (helper
  thread) variants; it requires an OS that allows extra threads
  (Compute Node Linux yes, Catamount no).
- :class:`CoarseLockSerializer` — a coarse-grain MPI-process-level
  lock: the origin acquires the target's lock over the network before
  issuing the operation and releases it after remote completion.
  Correct everywhere, but each atomic op pays lock round trips and all
  contenders serialize across the full transfer.
- :class:`ProgressSerializer` — no thread, no lock: queued jobs only
  run when the target's MPI library makes progress, modeled as a
  periodic poll ("one has to rely on MPI progress (with associated
  loss of efficiency)").

The engine calls :meth:`Serializer.origin_acquire` /
:meth:`Serializer.origin_release` around issuing an atomic op (only the
lock serializer does anything there) and routes the target-side
application through :meth:`Serializer.submit_job` (only the thread and
progress serializers queue there; the lock serializer runs the job
immediately because exclusivity is already guaranteed by the lock).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Generator

from repro.network.packet import Packet
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.rma.engine import RmaEngine

__all__ = [
    "Serializer",
    "ThreadSerializer",
    "CoarseLockSerializer",
    "ProgressSerializer",
    "make_serializer",
]

JobFn = Callable[[], Generator]


class Serializer:
    """Base class; subclasses pick where serialization happens."""

    kind = "abstract"

    def __init__(self, engine: "RmaEngine") -> None:
        self.engine = engine
        self.sim = engine.sim
        self.jobs_executed = 0

    # -- origin-side hooks (around issuing an atomic op) -----------------
    def origin_acquire(self, dst: int) -> Generator:
        """Runs at the origin before issuing an atomic op to ``dst``."""
        return
        yield  # pragma: no cover

    def origin_release(self, dst: int) -> Generator:
        """Runs at the origin after the atomic op remotely completed."""
        return
        yield  # pragma: no cover

    # -- target-side hook -------------------------------------------------
    def submit_job(self, job: JobFn) -> None:
        """Schedule a target-side application job for execution."""
        raise NotImplementedError


class ThreadSerializer(Serializer):
    """A communication thread at the target executes jobs FIFO."""

    kind = "thread"

    def __init__(self, engine: "RmaEngine") -> None:
        super().__init__(engine)
        self._queue: Store = Store(self.sim)
        self.sim.spawn(self._worker(), name=f"comm-thread-{engine.rank}")

    def _worker(self):
        while True:
            job: JobFn = yield from self._queue.get()
            # The handler activation cost of the communication thread.
            yield self.sim.timeout(self.engine.timings.am_handler)
            yield from job()
            self.jobs_executed += 1

    def submit_job(self, job: JobFn) -> None:
        self._queue.put(job)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)


class CoarseLockSerializer(Serializer):
    """MPI-process-level lock acquired over the network by origins.

    The target side of the lock (grant queue) lives here; the engine
    forwards ``rma.lock_req`` / ``rma.unlock`` packets.  Grants are FIFO
    so contention behaviour is deterministic and starvation-free.
    """

    kind = "lock"

    def __init__(self, engine: "RmaEngine") -> None:
        super().__init__(engine)
        # target side
        self._held_by: int = -1
        self._wait_queue: Deque[int] = deque()
        # origin side: grant events per target, plus a local gate so this
        # rank's own back-to-back atomic ops to one target queue up
        # instead of double-requesting the remote lock.
        self._grants: Dict[int, Any] = {}
        self._local_gate: Dict[int, Any] = {}
        self.lock_acquisitions = 0

    # -- origin side ------------------------------------------------------
    def _gate(self, dst: int):
        from repro.sim.resources import Resource

        gate = self._local_gate.get(dst)
        if gate is None:
            gate = self._local_gate[dst] = Resource(self.sim)
        return gate

    def origin_acquire(self, dst: int):
        """Request the target's process lock; wait for the grant."""
        yield from self._gate(dst).acquire()
        ev = self.sim.event()
        self._grants[dst] = ev
        yield self.sim.timeout(self.engine.timings.lock_op)
        self.engine.send_control(dst, "rma.lock_req", {})
        yield ev  # the grant packet triggers it
        self.lock_acquisitions += 1

    def origin_release(self, dst: int):
        yield self.sim.timeout(self.engine.timings.lock_op)
        self.engine.send_control(dst, "rma.unlock", {})
        del self._grants[dst]
        self._gate(dst).release()

    def on_grant(self, packet: Packet) -> None:
        """A grant arrived from ``packet.src`` for our pending request."""
        ev = self._grants.get(packet.src)
        if ev is None:
            raise RuntimeError(
                f"rank {self.engine.rank}: unexpected lock grant from "
                f"{packet.src}"
            )
        ev.succeed()

    # -- target side ------------------------------------------------------
    def on_lock_req(self, packet: Packet) -> None:
        if self._held_by < 0:
            self._held_by = packet.src
            self.engine.send_control(packet.src, "rma.lock_grant", {})
        else:
            self._wait_queue.append(packet.src)

    def on_unlock(self, packet: Packet) -> None:
        if packet.src != self._held_by:
            raise RuntimeError(
                f"rank {self.engine.rank}: unlock from {packet.src} but lock "
                f"held by {self._held_by}"
            )
        if self._wait_queue:
            self._held_by = self._wait_queue.popleft()
            self.engine.send_control(self._held_by, "rma.lock_grant", {})
        else:
            self._held_by = -1

    # -- target-side jobs run immediately (lock guarantees exclusivity) ---
    def submit_job(self, job: JobFn) -> None:
        self.jobs_executed += 1
        self.sim.spawn(job(), name=f"lockjob-{self.engine.rank}")


class ProgressSerializer(Serializer):
    """Jobs wait for the target's MPI progress engine to run."""

    kind = "progress"

    def __init__(self, engine: "RmaEngine", poll_interval: float = 25.0) -> None:
        super().__init__(engine)
        self.poll_interval = poll_interval
        self._pending: Deque[JobFn] = deque()
        self.sim.spawn(self._poller(), name=f"progress-{engine.rank}")

    def _poller(self):
        while True:
            yield self.sim.timeout(self.poll_interval)
            while self._pending:
                job = self._pending.popleft()
                yield self.sim.timeout(self.engine.timings.am_handler)
                yield from job()
                self.jobs_executed += 1

    def submit_job(self, job: JobFn) -> None:
        self._pending.append(job)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)


def make_serializer(kind: str, engine: "RmaEngine") -> Serializer:
    """Build the serializer named by ``kind`` (resolving ``"auto"``).

    ``auto`` follows the paper's §III-B1 logic: use a communication
    thread when the OS allows one (CNL), otherwise fall back to the
    coarse-grain process-level lock (Catamount).
    """
    if kind == "auto":
        kind = "thread" if engine.machine.threads_allowed else "lock"
    if kind == "thread":
        if not engine.machine.threads_allowed:
            raise ValueError(
                f"machine {engine.machine.name!r} does not allow "
                "communication threads; use the lock or progress serializer"
            )
        return ThreadSerializer(engine)
    if kind == "lock":
        return CoarseLockSerializer(engine)
    if kind == "progress":
        return ProgressSerializer(engine)
    raise ValueError(f"unknown serializer kind {kind!r}")
