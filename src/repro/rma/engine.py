"""The strawman RMA protocol engine.

One :class:`RmaEngine` per rank.  It owns every wire protocol behind the
strawman API and enforces each attribute with the cheapest mechanism the
fabric/machine combination offers (paper §III-B: "when they are offered
as features by the underlying network, [attributes] are trivial to
implement", otherwise software protocols add a penalty):

ordering
    Every operation between an (origin, target) pair carries a sequence
    number and a *barrier*: the highest sequence number that must be
    applied at the target before this operation may apply.  The
    ordering attribute sets ``barrier = seq - 1``; ``rma_order`` sets a
    standing barrier for subsequent operations.  On an ordered fabric
    the gate never actually delays anything (the attribute is free); on
    an unordered fabric late fragments are buffered at the target.

remote completion
    Three strategies, picked per operation:

    - ``hw``  — per-fragment hardware delivery acks (Portals event
      queue); valid only when delivery *is* application (non-atomic op,
      coherent target, no gating).
    - ``sw``  — the target engine acks when the operation has been
      *applied* (needed for atomic ops, non-coherent targets, and gated
      ops on unordered fabrics).
    - ``flush`` — nothing per-op; ``rma_complete`` sends a watermark
      flush and the target answers once everything up to the watermark
      has applied.  This is the default for attribute-free operations.

atomicity
    Routed through the machine's serializer (thread / coarse lock /
    progress — :mod:`repro.rma.serializer`).  With the coarse lock the
    origin acquires the target's process-level lock around the whole
    operation and application happens directly (exclusivity by lock);
    with the thread/progress serializers fragments are staged at the
    target and applied as one FIFO job.

Transfers fragment at the fabric MTU; fragments of concurrent
*non-atomic* operations to overlapping memory interleave — exactly the
"permitted but undefined" behaviour the paper asks for (§IV req. 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.datatypes.base import Datatype
from repro.machine.address_space import Allocation
from repro.machine.config import MachineConfig, MachineTimings
from repro.machine.node import RankMemory
from repro.mpi.request import Request
from repro.network.nic import Nic
from repro.network.packet import ACK_SIZE, HEADER_SIZE, Packet
from repro.rma.attributes import RmaAttrs
from repro.rma.layout import (
    Fragment,
    apply_accumulate,
    apply_put_fragment,
    fragment_layout,
    read_layout,
)
from repro.rma.serializer import Serializer, make_serializer
from repro.rma.target_mem import RmaError, TargetMem
from repro.rma.train import OpTrain, TrainElement
from repro.sim.events import AllOf, DeferredEvent, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime import World
    from repro.sim.core import Simulator

__all__ = ["RmaEngine", "OpRecord", "build_rma"]

#: Accumulate operations supported by the engine.
ACC_OPS = ("sum", "prod", "min", "max", "replace", "daxpy")
#: Read-modify-write operations (paper §V: conditional and unconditional).
RMW_OPS = ("cas", "fetch_add", "swap")

#: Conformance mutations under which the op-train path may stay active:
#: its own planted bug, plus ``shm_skip_fence`` — that one only alters
#: the shared-window path (and in fact *needs* live trains: the bug it
#: plants is skipping the train flush before a shared access); per-packet
#: and closed-form behaviour are untouched.  Any other mutation alters
#: per-packet behaviour the closed form does not model, so the path
#: stands down.
_TRAIN_MUTATIONS = frozenset({"train_mistime", "shm_skip_fence"})


@dataclass(slots=True)
class OpRecord:
    """Origin-side record of one outstanding write-style operation."""

    op_key: Tuple[int, int]
    dst: int
    seq: int
    kind: str
    remote_mode: str  # "hw" | "sw" | "flush"
    ev_local: Event
    ev_remote: Optional[Event]
    nbytes: int
    #: Attributes the op was issued with (carried into RmaError on a
    #: delivery failure); None for internal/zero-byte records.
    attrs: Optional[RmaAttrs] = None


def _collect_errors(events: List[Event]) -> List[RmaError]:
    """RmaError values carried by completion events (failure-aware
    completion succeeds events *with* the error object as value)."""
    errs: List[RmaError] = []
    for ev in events:
        value = ev.value
        if isinstance(value, RmaError):
            errs.append(value)
        elif isinstance(value, list):
            errs.extend(v for v in value if isinstance(v, RmaError))
    return errs


class _OriginPeer:
    """Origin-side per-target state."""

    __slots__ = ("last_seq", "order_barrier", "outstanding",
                 "last_atomic_seq", "last_deferred_seq", "broken",
                 "completing")

    def __init__(self) -> None:
        self.last_seq = 0
        self.order_barrier = 0
        self.outstanding: List[OpRecord] = []
        #: Sequence number of the most recent atomic op issued to this
        #: target (atomic application is deferred, which matters for
        #: deciding whether delivery == application downstream).
        self.last_atomic_seq = 0
        #: Most recent op whose *application* happens after delivery
        #: without being atomic (serializer-routed rmw, RMI handlers,
        #: atomic-queue gets).  The op-train fast path reasons
        #: "delivery order == application order" and must stand down
        #: while any such op is in the sequence window.
        self.last_deferred_seq = 0
        #: Set on a transport path failure; every later op to this
        #: target fails fast at issue.
        self.broken = False
        #: Records handed to an in-flight complete() (moved out of
        #: ``outstanding``); a path failure must fail these too or the
        #: waiting complete() would hang.
        self.completing: List[OpRecord] = []

    def alloc_seq(self) -> int:
        self.last_seq += 1
        return self.last_seq


class _InboundOp:
    """Target-side record of one in-flight inbound operation."""

    __slots__ = (
        "desc",
        "seq",
        "barrier",
        "src",
        "frags",
        "nfrags",
        "arrived",
        "applied_frags",
        "gate_open",
        "staged",
    )

    def __init__(self, desc: Dict[str, Any]) -> None:
        self.desc = desc
        self.seq: int = desc["seq"]
        self.barrier: int = desc["barrier"]
        self.src: int = desc["src"]
        self.nfrags: int = desc.get("nfrags", 1)
        self.frags: List[Fragment] = []
        self.arrived = 0
        self.applied_frags = 0
        self.gate_open = False
        self.staged = False  # atomic op already handed to the serializer


class _TargetPeer:
    """Target-side per-origin state."""

    __slots__ = ("applied_upto", "applied_extra", "inbound", "gated",
                 "flush_waiters", "draining")

    def __init__(self) -> None:
        self.applied_upto = 0
        self.applied_extra: set = set()
        self.inbound: Dict[int, _InboundOp] = {}
        self.gated: List[_InboundOp] = []
        #: (watermark, flush_id, origin_rank) triples awaiting the watermark.
        self.flush_waiters: List[Tuple[int, int, int]] = []
        #: Reentrancy guard for gate draining (applying a gated op can
        #: recursively mark further ops applied).
        self.draining = False

    def barrier_ok(self, barrier: int) -> bool:
        return self.applied_upto >= barrier


class _PendingGet:
    """Origin-side reassembly state for a get reply."""

    __slots__ = ("buffer", "received", "ev_done", "alloc", "offset", "dtype",
                 "count", "swap", "location")

    def __init__(self, total: int, alloc, offset, dtype, count, swap,
                 location=None) -> None:
        self.buffer = np.empty(total, dtype=np.uint8)
        self.received = 0
        self.ev_done: Optional[Event] = None
        self.alloc = alloc
        self.offset = offset
        self.dtype = dtype
        self.count = count
        self.swap = swap
        self.location = location


class _NotifyWaiter:
    """One blocked ``wait_notify`` call on the notification board."""

    __slots__ = ("key", "need", "ev", "watch")

    def __init__(self, key: Tuple[int, int], need: int, ev: Event,
                 watch: frozenset) -> None:
        self.key = key
        self.need = need
        self.ev = ev
        self.watch = watch


class RmaEngine:
    """Per-rank RMA protocol engine (see module docstring)."""

    #: Master switch for the vectorized op-train fast path (see
    #: :meth:`_try_issue_train` and :mod:`repro.rma.train`).  The
    #: determinism regression tests flip this off to prove the analytic
    #: and event-loop paths produce identical simulated timestamps.
    train_enabled: bool = True

    #: Master switch for the shared-memory window fast path (see
    #: :meth:`_shared_target`): co-located ranks access a shared window
    #: by direct load/store through the node's cache model — no NIC, no
    #: transport, no serializer.
    shared_enabled: bool = True

    #: Treat *every* exposure as a shared window (subject to the same
    #: eligibility rules).  The ``--shared-windows`` perf toggle and the
    #: conformance runner's shared mode set this; it must leave every
    #: off-node timestamp bit-identical, since eligibility requires
    #: co-location.
    shared_default: bool = False

    def __init__(
        self,
        sim: "Simulator",
        rank: int,
        nic: Nic,
        mem: RankMemory,
        machine: MachineConfig,
        serializer_kind: str = "auto",
        tracer=None,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.nic = nic
        self.mem = mem
        self.machine = machine
        self.timings: MachineTimings = machine.timings
        self.network = nic.config
        self.tracer = tracer

        self._exposures: Dict[int, Allocation] = {}
        self._next_mem_id = 1
        self._origin_peers: Dict[int, _OriginPeer] = {}
        self._target_peers: Dict[int, _TargetPeer] = {}
        # Waiter maps carry the destination rank so a path failure can
        # sweep exactly the waiters stranded on the broken path.
        self._sw_ack_waiters: Dict[Tuple[int, int], Tuple[int, Event]] = {}
        self._pending_gets: Dict[Tuple[int, int], _PendingGet] = {}
        self._pending_replies: Dict[Tuple[int, int], Tuple[int, str, Event]] = {}
        self._flush_waiters: Dict[int, Tuple[int, Event]] = {}
        self._next_flush_id = 1
        # Per-engine op-key counter: keys are (rank, n), so a per-engine
        # count keeps them unique within a world while staying identical
        # across same-seed runs (a process-global counter would leak
        # between worlds and break trace bit-identity).
        self._op_counter = itertools.count(1)
        #: Test-only semantic mutations for the conformance fuzzer
        #: (``repro.check``): an empty set (the default, always, outside
        #: fuzzer self-tests) keeps behaviour — and traces — untouched.
        #: ``"drop_order_barrier"`` makes every put/get ignore its
        #: ordering sequence barrier, the planted bug the oracle and
        #: shrinker must catch.  ``"train_mistime"`` shifts every
        #: timestamp of the first op-train per target by +1e-3 µs — the
        #: planted batch-path bug proving the train-on/off differential
        #: oracle detects closed-form timing errors.
        self.conformance_mutations: frozenset = frozenset()
        # Op-train fast path state: the open train per destination (a
        # train closes once materialized) and the set of destinations
        # already mis-timed by the "train_mistime" mutation.
        self._active_trains: Dict[int, OpTrain] = {}
        self._train_mistimed: set = set()
        # Op-train memos: fig2/halo issue thousands of identically-shaped
        # ops, so both the fragment-size split (keyed by (dtype, count))
        # and the per-fragment serialization charges (keyed by the sizes
        # tuple) are computed once.
        self._train_sizes_cache: Dict[tuple, tuple] = {}
        self._train_ser_cache: Dict[tuple, Any] = {}
        # Notification board (DESIGN §15): per-(mem_id, match) delivered
        # and consumed counters, FIFO waiters, and the delivered-op-key
        # set that makes delivery idempotent — the reliable transport's
        # receiver-side dedup already guarantees the engine never sees a
        # retransmitted op twice, so this set is defense in depth (and
        # what keeps the planted ``notify_before_apply`` mutation from
        # double-delivering at apply time).
        self._notify_counts: Dict[Tuple[int, int], int] = {}
        self._notify_consumed: Dict[Tuple[int, int], int] = {}
        self._notify_seen: set = set()
        self._notify_waiters: List[_NotifyWaiter] = []
        #: Simulated notify latencies (target-side apply/delivery time
        #: minus origin issue time), harvested by workloads into obs
        #: histograms.  Only ever appended for notify-carrying ops, so
        #: notify-free runs pay nothing.
        self.notify_latencies: List[float] = []
        # Failure-aware completion state.
        self._path_failures: Dict[int, Any] = {}
        self.failures: List[Any] = []
        self._failed_ops: set = set()
        self._rmi_handlers: Dict[str, Callable[..., Any]] = {}
        # Reusable staging buffer for *transient* byte work (e.g. the
        # swap pass of a heterogeneous get completion).  Never handed to
        # anything that outlives the call that borrowed it — in-flight
        # fragment data must not alias it.
        self._pack_scratch = np.empty(0, dtype=np.uint8)

        nic.register_handler("rma.frag", self._on_frag)
        nic.register_handler("rma.get_req", self._on_get_req)
        nic.register_handler("rma.get_reply", self._on_get_reply)
        nic.register_handler("rma.ack", self._on_ack)
        nic.register_handler("rma.flush_req", self._on_flush_req)
        nic.register_handler("rma.flush_ack", self._on_flush_ack)
        nic.register_handler("rma.rmw_req", self._on_rmw_req)
        nic.register_handler("rma.reply", self._on_reply)
        nic.register_handler("rma.rmi_req", self._on_rmi_req)
        nic.register_handler("rma.lock_req", self._on_lock_req)
        nic.register_handler("rma.lock_grant", self._on_lock_grant)
        nic.register_handler("rma.unlock", self._on_unlock)

        self.serializer: Serializer = make_serializer(serializer_kind, self)

        transport = nic.transport
        if transport is not None:
            transport.add_path_failure_callback(self._on_path_failure)

        # statistics
        self.stats: Dict[str, int] = {
            "puts": 0,
            "gets": 0,
            "accumulates": 0,
            "rmws": 0,
            "rmis": 0,
            "completes": 0,
            "orders": 0,
            "bytes_put": 0,
            "bytes_got": 0,
            "gated_frags": 0,
            "train_ops": 0,
            "train_bytes": 0,
            "shm_ops": 0,
            "shm_bytes": 0,
            "notifies": 0,
            "notify_waits": 0,
        }

    # ------------------------------------------------------------------
    # Memory exposure
    # ------------------------------------------------------------------
    def expose(self, alloc: Allocation, shared: bool = False) -> TargetMem:
        """Register local memory for remote access (non-collective).

        ``shared=True`` requests the shared-memory window flavor:
        co-located origins then bypass the NIC (:meth:`_shared_target`).
        A non-coherent owner cannot offer load/store sharing — peers'
        stores would sit invisible behind stale cache lines without the
        owner's involvement — so the request degrades to a plain
        exposure there.
        """
        if alloc.rank != self.rank:
            raise RmaError(
                f"rank {self.rank} cannot expose memory owned by rank "
                f"{alloc.rank}"
            )
        self.mem.space.buffer(alloc)  # validates liveness
        mem_id = self._next_mem_id
        self._next_mem_id += 1
        self._exposures[mem_id] = alloc
        return TargetMem(
            rank=self.rank,
            mem_id=mem_id,
            size=alloc.size,
            pointer_bits=self.mem.space.pointer_bits,
            endianness=self.mem.space.endianness,
            coherent=self.mem.coherent,
            shared=bool(shared) and self.mem.coherent,
        )

    def registration_cost(self, nbytes: int) -> float:
        """NIC registration cost for exposing ``nbytes`` (charged by the
        generator-based exposure paths; plain :meth:`expose` is the
        zero-time registration-cache hit)."""
        pages = -(-max(nbytes, 1) // 4096)
        return (self.timings.mem_register_base
                + pages * self.timings.mem_register_per_page)

    def withdraw(self, tmem: TargetMem) -> None:
        """Deregister; later remote access through it is an error."""
        if tmem.rank != self.rank or tmem.mem_id not in self._exposures:
            raise RmaError(f"cannot withdraw unknown target_mem {tmem}")
        del self._exposures[tmem.mem_id]

    def _scratch(self, nbytes: int) -> np.ndarray:
        """The per-engine transient staging buffer, grown to ``nbytes``."""
        if self._pack_scratch.size < nbytes:
            self._pack_scratch = np.empty(nbytes, dtype=np.uint8)
        return self._pack_scratch

    def _resolve(self, mem_id: int) -> Allocation:
        alloc = self._exposures.get(mem_id)
        if alloc is None:
            raise RmaError(
                f"rank {self.rank}: RMA access to unknown/withdrawn "
                f"target_mem id {mem_id}"
            )
        return alloc

    def register_rmi(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a remote-method-invocation handler (§IV extension)."""
        if name in self._rmi_handlers:
            raise RmaError(f"RMI handler {name!r} already registered")
        self._rmi_handlers[name] = fn

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def _origin_peer(self, dst: int) -> _OriginPeer:
        peer = self._origin_peers.get(dst)
        if peer is None:
            peer = self._origin_peers[dst] = _OriginPeer()
        return peer

    def _target_peer(self, src: int) -> _TargetPeer:
        peer = self._target_peers.get(src)
        if peer is None:
            peer = self._target_peers[src] = _TargetPeer()
        return peer

    # ------------------------------------------------------------------
    # Failure-aware completion (reliable-transport path failures)
    # ------------------------------------------------------------------
    def _path_broken(self, dst: int) -> bool:
        """Whether ops to ``dst`` are doomed (fail fast at issue)."""
        peer = self._origin_peers.get(dst)
        if peer is not None and peer.broken:
            return True
        transport = self.nic.transport
        if transport is not None and transport.is_broken(dst):
            return True
        return self.nic.fabric.is_dead(dst)

    def _failure_kind(self, dst: int, failure) -> str:
        """Structured taxonomy kind for a delivery failure to ``dst``."""
        if failure is not None:
            kind = getattr(failure, "kind", None)
            if kind is not None:
                return kind
        return ("rank_failed" if self.nic.fabric.is_dead(dst)
                else "retry_exhausted")

    def _op_error(self, rec: OpRecord, failure=None) -> RmaError:
        failure = failure if failure is not None \
            else self._path_failures.get(rec.dst)
        if failure is not None:
            return RmaError(
                f"rma {rec.kind} to rank {rec.dst} failed: {failure}",
                kind=self._failure_kind(rec.dst, failure),
                op=rec.kind, src=self.rank, target=rec.dst,
                path=(self.rank, rec.dst), attrs=rec.attrs,
                retries=failure.attempts, sim_time=failure.sim_time,
            )
        return RmaError(
            f"rma {rec.kind} to rank {rec.dst} failed: path broken",
            kind=self._failure_kind(rec.dst, None),
            op=rec.kind, src=self.rank, target=rec.dst,
            path=(self.rank, rec.dst), attrs=rec.attrs,
            sim_time=self.sim.now,
        )

    def _path_error(self, dst: int, op: str,
                    attrs: Optional[RmaAttrs] = None,
                    failure=None) -> RmaError:
        failure = failure if failure is not None \
            else self._path_failures.get(dst)
        if failure is not None:
            return RmaError(
                f"rma {op} to rank {dst} failed: {failure}",
                kind=self._failure_kind(dst, failure),
                op=op, src=self.rank, target=dst, path=(self.rank, dst),
                attrs=attrs,
                retries=failure.attempts, sim_time=failure.sim_time,
            )
        return RmaError(
            f"rma {op} to rank {dst} failed: path broken or target dead",
            kind=self._failure_kind(dst, None),
            op=op, src=self.rank, target=dst, path=(self.rank, dst),
            attrs=attrs, sim_time=self.sim.now,
        )

    def _on_path_failure(self, dst: int, failure) -> None:
        """Reliable transport gave up on the path to ``dst``: convert
        every stranded waiter into a structured RmaError *value* (events
        succeed with the error object so AllOf aggregation in pending
        complete()/waitall() calls keeps working — no bare event-loop
        exceptions, no hangs)."""
        self._path_failures[dst] = failure
        self.failures.append(failure)
        peer = self._origin_peers.get(dst)
        if peer is not None:
            peer.broken = True
            for rec in peer.outstanding + peer.completing:
                ev = rec.ev_remote
                if ev is not None and not ev.triggered:
                    ev.succeed(self._op_error(rec, failure))
        for op_key in [k for k, (d, _ev) in self._sw_ack_waiters.items()
                       if d == dst]:
            _d, ev = self._sw_ack_waiters.pop(op_key)
            if not ev.triggered:
                ev.succeed(self._path_error(dst, "ack", failure=failure))
        for op_key in [k for k, (d, _kind, _ev) in self._pending_replies.items()
                       if d == dst]:
            _d, kind, ev = self._pending_replies.pop(op_key)
            if not ev.triggered:
                ev.succeed(self._path_error(dst, kind, failure=failure))
        for flush_id in [k for k, (d, _ev) in self._flush_waiters.items()
                         if d == dst]:
            _d, ev = self._flush_waiters.pop(flush_id)
            if not ev.triggered:
                ev.succeed(self._path_error(dst, "complete", failure=failure))
        for op_key in [k for k, p in self._pending_gets.items()
                       if p.location is not None and p.location[0] == dst]:
            pend = self._pending_gets.pop(op_key)
            self._failed_ops.add(op_key)
            ev = pend.ev_done
            if ev is not None and not ev.triggered:
                ev.succeed(self._path_error(dst, "get", failure=failure))
        self.fail_notify_waiters(dst, failure=failure)
        if self.tracer is not None:
            self.tracer.bump("rma.path_failure")
            if self.tracer.enabled:
                self.tracer.record(self.sim.now, "rma", "path_failure",
                                   rank=self.rank, dst=dst,
                                   reason=failure.reason)

    def reset_path(self, other: int) -> None:
        """Forget all per-path state shared with ``other`` (restart)."""
        self._origin_peers.pop(other, None)
        self._target_peers.pop(other, None)
        self._path_failures.pop(other, None)

    def reset_all_paths(self) -> None:
        """Forget every per-path state (this rank restarted)."""
        self._origin_peers.clear()
        self._target_peers.clear()
        self._path_failures.clear()
        # The restarted rank's notification board starts empty; any
        # waiter still parked belongs to the killed program.
        self._notify_counts.clear()
        self._notify_consumed.clear()
        self._notify_seen.clear()
        self._notify_waiters.clear()

    def acknowledge_path_failure(self, dst: int) -> None:
        """Consume a broken path's errored records (ULFM acknowledgment).

        A failed blocking op surfaces its error twice by design: once
        out of its own wait, and again at the next completion call —
        the MPI-style "sync reports everything since the last sync"
        contract.  A recovery layer that has already handled the
        failure calls this to drop the errored records so the *next*
        completion describes only post-recovery traffic.  The path
        itself stays broken: new ops to ``dst`` keep failing fast.
        """
        peer = self._origin_peers.get(dst)
        if peer is not None and peer.broken:
            peer.outstanding = []
            peer.completing = []

    # ------------------------------------------------------------------
    # Issue path helpers
    # ------------------------------------------------------------------
    def send_control(self, dst: int, kind: str, payload: Dict[str, Any],
                     data_bytes: int = 0, want_ack: bool = False,
                     inject_from: float = None) -> Packet:
        """Inject a small protocol packet."""
        pkt = Packet(src=self.rank, dst=dst, kind=kind, payload=payload,
                     data_bytes=data_bytes, want_ack=want_ack)
        self.nic.send(pkt, inject_from=inject_from)
        return pkt

    def _pick_remote_mode(self, attrs: RmaAttrs, tmem: TargetMem,
                          barrier: int, atomic_via_serializer: bool,
                          lock_serialized: bool,
                          peer: "_OriginPeer") -> str:
        if lock_serialized or atomic_via_serializer:
            # Atomic semantics are only established at application time,
            # so atomic ops always track an application ack: the lock
            # serializer needs it to release the lock, and a blocking
            # atomic call returns only once the exclusive update is in.
            return "sw"
        if attrs.remote_completion:
            # A hardware delivery ack (Portals EQ) equals remote
            # completion only when delivery == application: coherent
            # target, and either no gating barrier, or an ordered fabric
            # where every op covered by the barrier applies at its own
            # (earlier) delivery — i.e. none of them was atomic.  Both
            # capabilities are properties of the (src, dst) *path*: on
            # hierarchical machines the intra-node personality may differ
            # from the interconnect's.
            path = self.nic.fabric.config_for(self.rank, tmem.rank)
            barrier_instant = barrier == 0 or (
                path.ordered
                and not (0 < peer.last_atomic_seq <= barrier)
            )
            hw_ok = (
                tmem.coherent
                and barrier_instant
                and path.remote_completion_events
                # Persistent loss toward the target: hardware delivery
                # acks keep getting dropped, so degrade to software
                # acks (which the reliable transport retransmits).
                and not self.nic.path_degraded(tmem.rank)
            )
            return "hw" if hw_ok else "sw"
        return "flush"

    def _atomic_routing(self, attrs: RmaAttrs) -> Tuple[bool, bool]:
        """(via_serializer_queue, via_origin_lock) for this op."""
        if not attrs.atomicity:
            return False, False
        if self.serializer.kind == "lock":
            return False, True
        return True, False

    def issue_put(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_dtype: Datatype,
        tmem: TargetMem,
        target_disp: int,
        target_count: int,
        target_dtype: Datatype,
        attrs: RmaAttrs,
    ):
        """Issue a put; returns an :class:`OpRecord` (``yield from``)."""
        rec = yield from self._issue_write(
            "put", origin_alloc, origin_offset, origin_count, origin_dtype,
            tmem, target_disp, target_count, target_dtype, attrs, {},
        )
        self.stats["puts"] += 1
        self.stats["bytes_put"] += rec.nbytes
        return rec

    def issue_accumulate(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_dtype: Datatype,
        tmem: TargetMem,
        target_disp: int,
        target_count: int,
        target_dtype: Datatype,
        attrs: RmaAttrs,
        op: str = "sum",
        scale: float = 1.0,
    ):
        """Issue an accumulate (remote update); returns an OpRecord."""
        if op not in ACC_OPS:
            raise RmaError(f"unknown accumulate op {op!r}; choose from {ACC_OPS}")
        if target_dtype.elem_np is None:
            raise RmaError(
                "accumulate requires a datatype with a uniform element type"
            )
        extra = {"acc_op": op, "acc_scale": scale,
                 "np_elem": target_dtype.elem_np}
        rec = yield from self._issue_write(
            "acc", origin_alloc, origin_offset, origin_count, origin_dtype,
            tmem, target_disp, target_count, target_dtype, attrs, extra,
        )
        self.stats["accumulates"] += 1
        return rec

    def _validate_pair(
        self,
        origin_count: int,
        origin_dtype: Datatype,
        tmem: TargetMem,
        target_disp: int,
        target_count: int,
        target_dtype: Datatype,
    ) -> int:
        o_bytes = origin_count * origin_dtype.size
        t_bytes = target_count * target_dtype.size
        if o_bytes != t_bytes:
            raise RmaError(
                f"origin layout ({o_bytes} B) does not match target layout "
                f"({t_bytes} B)"
            )
        lo, hi = target_dtype.byte_range(target_count)
        tmem.check_access(target_disp, lo, hi)
        return o_bytes

    def _try_issue_train(self, kind, dst, tmem, target_disp, target_dtype,
                         target_count, wire, nbytes, attrs, extra):
        """Closed-form issue of one non-atomic write riding an op-train.

        When every condition below holds, the op's entire lifetime —
        injection, serialization, arrival, application, hardware ack —
        is a pure function of current NIC/fabric state, so it is
        computed here as (vectorized) float arithmetic identical to
        what the event-loop path would perform, recorded on the
        destination's :class:`~repro.rma.train.OpTrain`, and costs zero
        kernel events until observed.  Returns the :class:`OpRecord`,
        or ``None`` to fall back to the packet path.

        Eligibility (each is load-bearing; see DESIGN §12):
        flat ordered fault-free path, idle untraced NIC, no reliable
        transport, coherent target, no atomic or deferred-application
        op in the peer's sequence window, and a remote-completion mode
        that is closed-form ("hw" delivery acks or "flush").
        """
        nic = self.nic
        fabric = nic.fabric
        if (
            not self.train_enabled
            or not nic.burst_enabled
            or nic.transport is not None
            or nic._pending
            or fabric.topology is not None
            or fabric._faulty
            or fabric.tracer.enabled
            or not tmem.coherent
            or not self.conformance_mutations <= _TRAIN_MUTATIONS
            # A notified op needs the target engine to run per-op (the
            # notification is delivered at apply time); the closed form
            # never runs target-side code, so the train stands down.
            or attrs.notify is not None
        ):
            return None
        sim = self.sim
        if sim.context.get("world") is None:
            # Lazy materialization needs the world's engine directory.
            return None
        path = fabric.config_for(self.rank, dst)
        if not path.ordered:
            return None
        peer = self._origin_peer(dst)
        if peer.broken or peer.last_atomic_seq or peer.last_deferred_seq:
            return None
        if attrs.remote_completion:
            # With a clean window (no atomic seq) on an ordered path to
            # a coherent target, _pick_remote_mode would choose exactly
            # this; "sw" acks need the target engine to run per-op.
            if not path.remote_completion_events:
                return None
            mode = "hw"
        else:
            mode = "flush"

        cfg = self.network
        mtu = cfg.mtu
        if nbytes > mtu:
            # Rendezvous transfers ride as zero-copy views pinned until
            # delivery; the train applies them after the caller may have
            # reused the buffer, so snapshot the payload at issue.
            wire = wire.copy()
        seq = peer.alloc_seq()
        op_key = (self.rank, next(self._op_counter))
        swap = self.mem.space.endianness != tmem.endianness
        if kind == "put" and not swap and target_dtype.is_contiguous:
            # Lazy element: one dense run — fragment sizes are pure
            # arithmetic and application is a single NIC deposit of the
            # whole wire, so no Fragment objects are ever built.
            frags = None
            skey = (target_dtype, target_count)
            sizes = self._train_sizes_cache.get(skey)
            if sizes is None:
                elem = target_dtype.segments[0].elem_size
                full = mtu - (mtu % elem) if elem > 1 else mtu
                nfull, rem = divmod(nbytes, full)
                sizes = (full,) * nfull + ((rem,) if rem else ())
                self._train_sizes_cache[skey] = sizes
            acc_args = None
            sig = ("contig", tmem.mem_id, target_disp, nbytes)
        else:
            frags = fragment_layout(target_dtype, target_count, wire, mtu)
            sizes = tuple(len(f.data) for f in frags)
            if kind == "put":
                acc_args = None
                sig = ("frags", tmem.mem_id, target_disp,
                       tuple(f.subsegs for f in frags))
            else:
                acc_args = (extra["np_elem"], extra["acc_op"],
                            extra["acc_scale"])
                sig = None
        nfrags = len(sizes)
        ser = self._train_ser_cache.get(sizes)
        if ser is None:
            gap, bt = cfg.gap, cfg.byte_time
            ser = self._train_ser_cache[sizes] = [
                max(gap, (HEADER_SIZE + s) * bt) for s in sizes
            ]
        if fabric._nexus_active:
            # A parked peer's virtual flush request may already cover this
            # NIC; the nexus then rescues synchronously (delivering the
            # flush and reserving the serializer for its ack) before the
            # reservation is read below.
            fabric._nexus.note_reserve(self.rank)
        now = sim.now
        start = now if now > nic._reserved_until else nic._reserved_until
        key = (self.rank, dst)
        prev = fabric._last_delivery.get(key, -1.0)
        latency = path.latency
        inject_value = None
        arrivals = None
        if nfrags == 1:
            # Scalar algebra: exactly Nic.send's idle path + transmit.
            inject_end = start + ser[0]
            arrival = inject_end + latency
            if arrival <= prev:
                arrival = prev + 1e-9
        elif nfrags <= 32:
            # Short trains: a plain running-sum loop beats numpy's fixed
            # per-call overhead, and is trivially bit-exact (it IS the
            # send_burst / transmit_burst float sequence).
            t = start
            a = prev
            inject_value = []
            arrivals = []
            for s in ser:
                t += s
                inject_value.append(t)
                r = t + latency
                if r <= a:
                    r = a + 1e-9
                a = r
                arrivals.append(r)
            inject_end = t
            arrival = a
        else:
            # Long ops: vectorized algebra.  Bit-exactness: the burst
            # path computes a running sum ``t = start; t += ser_i`` —
            # seeding the cumsum with start makes every partial sum
            # round in the same order.
            arr = np.empty(nfrags + 1, dtype=np.float64)
            arr[0] = start
            arr[1:] = ser
            injects = np.cumsum(arr)[1:]
            inject_end = float(injects[-1])
            raw = injects + latency
            if cfg.gap > 0.0 and raw[0] > prev:
                # gap > 0 makes injections (hence raw arrivals) strictly
                # increasing, and the first clears the FIFO clamp — so
                # no element needs the +1e-9 nudge.
                arrivals = raw.tolist()
            else:
                arrivals = raw.tolist()
                p = prev
                for i, r in enumerate(arrivals):
                    if r <= p:
                        r = p + 1e-9
                        arrivals[i] = r
                    p = r
            arrival = arrivals[-1]
            inject_value = injects.tolist()
        if self.conformance_mutations \
                and "train_mistime" in self.conformance_mutations \
                and dst not in self._train_mistimed:
            # Planted batch-path bug: shift every timestamp of the first
            # train op per destination.  Reservation and FIFO bookkeeping
            # shift too, so nothing hangs — the run simply diverges.
            self._train_mistimed.add(dst)
            shift = 1e-3
            inject_end += shift
            arrival += shift
            if arrivals is not None:
                arrivals = [a + shift for a in arrivals]
            if inject_value is not None:
                inject_value = [v + shift for v in inject_value]
        apply_time = arrival
        nic._reserved_until = inject_end
        fabric._last_delivery[key] = arrival
        nic.packets_sent += nfrags
        nic.bytes_sent += nbytes + HEADER_SIZE * nfrags
        ev_local = DeferredEvent(
            sim, inject_end,
            inject_end if inject_value is None else inject_value,
        )
        if mode == "hw":
            rev = fabric.config_for(dst, self.rank)
            ack_flight = rev.latency + ACK_SIZE * rev.byte_time
            if nfrags == 1:
                ack_due = ack_value = arrival + ack_flight
            else:
                ack_value = [a + ack_flight for a in arrivals]
                ack_due = ack_value[-1]
            fabric.acks_generated += nfrags
            ev_remote: Optional[Event] = DeferredEvent(sim, ack_due, ack_value)
        else:
            ev_remote = None

        train = self._active_trains.get(dst)
        if train is None or train.done:
            train = OpTrain(sim, self.rank, dst)
            self._active_trains[dst] = train
            fabric.register_train(dst, train)
        train.append(TrainElement(
            seq, op_key, kind, tmem.mem_id, target_disp, swap, frags, wire,
            nfrags, apply_time, acc_args, sig, nbytes + HEADER_SIZE * nfrags,
        ))
        rec = OpRecord(op_key, dst, seq, kind, mode, ev_local, ev_remote,
                       nbytes, attrs)
        peer.outstanding.append(rec)
        self.stats["train_ops"] += 1
        self.stats["train_bytes"] += nbytes
        return rec

    # ------------------------------------------------------------------
    # Shared-memory windows (intra-node load/store fast path)
    # ------------------------------------------------------------------
    def _shared_target(self, tmem: TargetMem, dst: int,
                       attrs: Optional[RmaAttrs]) -> Optional["RmaEngine"]:
        """The co-located target engine when this op may bypass the NIC,
        or ``None`` to take the normal remote path.

        Ranks on one node of a cache-coherent machine access a shared
        window by direct load/store: the op applies through the target's
        cache model with no packets, no transport and no serializer.
        Each condition is load-bearing:

        - the window was exposed shared (or :attr:`shared_default`
          force-enables the flavor for every exposure);
        - both nodes keep CPU caches coherent with remote writes — a
          non-coherent personality (NEC SX style) cannot observe a
          peer core's stores without the fence protocol the remote
          path already models, so the flavor self-disables;
        - the ranks are co-located per the machine's placement;
        - the op does not demand ordering behind previously *sequenced*
          remote traffic: a shared op applies instantly and owns no
          sequence number, so when the ordering attribute (or a
          standing ``rma_order`` barrier) covers earlier remote ops,
          fall back to the remote path whose barrier machinery provides
          the guarantee.
        """
        if not self.shared_enabled:
            return None
        if not (tmem.shared or self.shared_default):
            return None
        if not (tmem.coherent and self.mem.coherent):
            return None
        world = self.sim.context.get("world")
        if world is None:
            return None
        machine = self.machine
        if machine.node_of_rank(self.rank) != machine.node_of_rank(dst):
            return None
        if "shm_skip_fence" not in self.conformance_mutations:
            peer = self._origin_peers.get(dst)
            if peer is not None and peer.last_seq > 0:
                ordered = attrs.ordering if attrs is not None else False
                if ordered or peer.order_barrier:
                    return None
        return world.contexts[dst].rma.engine

    def _shared_fence(self, tgt: "RmaEngine") -> None:
        """Apply analytically-arrived op-train traffic at the co-located
        target before touching its memory directly.  A train element
        whose closed-form arrival has passed *is* already in the
        target's memory on the per-packet timeline; loading/storing
        around it would read the past.  The ``shm_skip_fence``
        conformance mutation plants exactly that bug."""
        if "shm_skip_fence" not in self.conformance_mutations:
            tgt.materialize_inbound()

    def _shared_write(self, kind, origin_alloc, origin_offset, origin_count,
                      origin_dtype, tmem, target_disp, target_count,
                      target_dtype, attrs, extra, nbytes, tgt):
        """Apply a put/accumulate to a co-located shared window.

        Pure CPU work: one packing/copy charge (plus the accumulate
        ALU charge), then the bytes land through the target's cache
        model via the same fragment-application helpers the remote
        path uses.  Returns an already-completed :class:`OpRecord`
        that is *not* appended to ``peer.outstanding`` — the op never
        owns a sequence number, so completion calls have nothing to
        wait for and flush watermarks are untouched.
        """
        from repro.datatypes.pack import pack

        issued = self.sim.now
        cost = (self.timings.call_overhead
                + nbytes * self.timings.mem_copy_per_byte)
        if not origin_dtype.is_contiguous:
            cost += nbytes * self.timings.mem_copy_per_byte
        if kind == "acc":
            cost += nbytes * self.timings.accumulate_per_byte
        yield self.sim.timeout(cost)
        ev = Event(self.sim).succeed()
        rec = OpRecord((self.rank, 0), tmem.rank, 0, kind, "hw", ev, ev,
                       nbytes, attrs)
        if nbytes == 0:
            return rec
        wire = pack(
            self.mem.space.buffer(origin_alloc), origin_offset, origin_dtype,
            origin_count, copy=False,
        )
        self._shared_fence(tgt)
        alloc = tgt._resolve(tmem.mem_id)
        swap = self.mem.space.endianness != tmem.endianness
        if kind == "put" and not swap and target_dtype.is_contiguous:
            tgt.mem.nic_write(alloc, target_disp, wire)
        else:
            for frag in fragment_layout(target_dtype, target_count, wire,
                                        nbytes):
                if kind == "put":
                    apply_put_fragment(tgt.mem, alloc, target_disp, frag,
                                       swap)
                else:
                    apply_accumulate(
                        tgt.mem, alloc, target_disp, frag, swap,
                        extra["np_elem"], extra["acc_op"],
                        extra["acc_scale"], tgt.mem.space.np_byteorder,
                    )
        self.stats["shm_ops"] += 1
        self.stats["shm_bytes"] += nbytes
        if attrs is not None and attrs.notify is not None:
            # Direct store: application just happened, so delivering the
            # notification now is trivially "after apply".  Shared ops
            # own no op_key (they cannot be retransmitted), so no dedup
            # entry is needed.
            tgt._deliver_notify(self.rank, tmem.mem_id, attrs.notify,
                                issued=issued)
        if self.tracer is not None and self.tracer.enabled:
            if nbytes <= 16:
                self.tracer.record(
                    self.sim.now, "consistency", "write", rank=self.rank,
                    location=(tmem.rank, tmem.mem_id, target_disp),
                    value=tuple(wire.tolist()),
                )
            self.tracer.record(self.sim.now, "rma", f"{kind}_shm",
                               rank=self.rank, dst=tmem.rank, bytes=nbytes)
        return rec

    def _shared_get(self, origin_alloc, origin_offset, origin_count,
                    origin_dtype, tmem, target_disp, target_count,
                    target_dtype, nbytes, tgt):
        """Read a co-located shared window by direct load."""
        from repro.datatypes.pack import unpack, unpack_swapped

        yield self.sim.timeout(
            self.timings.call_overhead
            + nbytes * self.timings.mem_copy_per_byte
        )
        ev = Event(self.sim).succeed()
        if nbytes == 0:
            return ev
        self._shared_fence(tgt)
        alloc = tgt._resolve(tmem.mem_id)
        data = read_layout(tgt.mem, alloc, target_disp, target_dtype,
                           target_count)
        buf = self.mem.space.buffer(origin_alloc)
        if self.mem.space.endianness != tmem.endianness:
            unpack_swapped(data, buf, origin_offset, origin_dtype,
                           origin_count, scratch=self._scratch(data.size))
        else:
            unpack(data, buf, origin_offset, origin_dtype, origin_count)
        self.stats["shm_ops"] += 1
        self.stats["shm_bytes"] += nbytes
        if self.tracer is not None and self.tracer.enabled:
            if nbytes <= 16:
                self.tracer.record(
                    self.sim.now, "consistency", "read", rank=self.rank,
                    location=(tmem.rank, tmem.mem_id, target_disp),
                    value=tuple(data.tolist()),
                )
            self.tracer.record(self.sim.now, "rma", "get_shm",
                               rank=self.rank, dst=tmem.rank, bytes=nbytes)
        return ev

    def _shared_getacc(self, origin_alloc, origin_offset, origin_count,
                       origin_dtype, tmem, target_disp, target_count,
                       target_dtype, op, scale, nbytes, tgt):
        """Fetch-and-op on a co-located shared window.  Application at
        a single simulated instant is trivially atomic — no serializer
        round trip, exactly the shared-memory-window win the MPI-3
        discussions promised for on-node neighbors."""
        from repro.datatypes.pack import pack, unpack, unpack_swapped

        yield self.sim.timeout(
            self.timings.call_overhead
            + nbytes * (self.timings.mem_copy_per_byte
                        + self.timings.accumulate_per_byte)
        )
        ev = Event(self.sim).succeed()
        if nbytes == 0:
            return ev
        wire = pack(
            self.mem.space.buffer(origin_alloc), origin_offset, origin_dtype,
            origin_count, copy=False,
        )
        self._shared_fence(tgt)
        alloc = tgt._resolve(tmem.mem_id)
        old = read_layout(tgt.mem, alloc, target_disp, target_dtype,
                          target_count)
        swap = self.mem.space.endianness != tmem.endianness
        for frag in fragment_layout(target_dtype, target_count, wire, nbytes):
            apply_accumulate(tgt.mem, alloc, target_disp, frag, swap,
                             target_dtype.elem_np, op, scale,
                             tgt.mem.space.np_byteorder)
        buf = self.mem.space.buffer(origin_alloc)
        if swap:
            unpack_swapped(old, buf, origin_offset, origin_dtype,
                           origin_count, scratch=self._scratch(old.size))
        else:
            unpack(old, buf, origin_offset, origin_dtype, origin_count)
        self.stats["shm_ops"] += 1
        self.stats["shm_bytes"] += nbytes
        if self.tracer is not None and self.tracer.enabled:
            if nbytes <= 16:
                self.tracer.record(
                    self.sim.now, "consistency", "read", rank=self.rank,
                    location=(tmem.rank, tmem.mem_id, target_disp),
                    value=tuple(old.tolist()),
                )
            self.tracer.record(self.sim.now, "rma", "getacc_shm",
                               rank=self.rank, dst=tmem.rank, bytes=nbytes)
        return ev

    def _shared_rmw(self, tmem, target_disp, np_elem, op, operand, compare,
                    tgt):
        """CAS / fetch-add / swap on a co-located shared window: a CPU
        atomic instruction on shared memory, one lock-op charge."""
        yield self.sim.timeout(
            self.timings.call_overhead + self.timings.lock_op
        )
        self._shared_fence(tgt)
        alloc = tgt._resolve(tmem.mem_id)
        np_dt = np.dtype(np_elem).newbyteorder(tgt.mem.space.np_byteorder)
        disp = target_disp
        raw = tgt.mem.nic_read(alloc, disp, np_dt.itemsize)
        old = raw.view(np_dt)[0]
        if op == "fetch_add":
            new = old + np_dt.type(operand)
        elif op == "swap":
            new = np_dt.type(operand)
        else:  # cas — op validated at issue
            new = (np_dt.type(operand)
                   if old == np_dt.type(compare) else old)
        tgt.mem.nic_write(alloc, disp,
                          np.array([new], dtype=np_dt).view(np.uint8))
        self.stats["shm_ops"] += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "rmw_shm",
                               rank=self.rank, dst=tmem.rank,
                               bytes=np_dt.itemsize)
        return Event(self.sim).succeed(old.item())

    def _issue_write(
        self, kind, origin_alloc, origin_offset, origin_count, origin_dtype,
        tmem, target_disp, target_count, target_dtype, attrs, extra,
    ):
        from repro.datatypes.pack import pack

        dst = tmem.rank
        nbytes = self._validate_pair(
            origin_count, origin_dtype, tmem, target_disp, target_count,
            target_dtype,
        )
        if attrs.notify is not None:
            self._check_notify_attr(attrs, kind, nbytes)
        if self._path_broken(dst):
            # Fail fast — before any lock acquisition (a dead target
            # would never grant it) and before burning wire time.  The
            # errored record is still retained on the peer: a put may be
            # fire-and-forget, and the sync-reports-everything contract
            # means the next completion call must surface this failure
            # (otherwise survivors would enter a doomed closing barrier
            # believing the epoch was clean).
            ev = Event(self.sim).succeed(self._path_error(dst, kind, attrs))
            rec = OpRecord((self.rank, 0), dst, 0, kind, "hw", ev, ev, 0,
                           attrs)
            peer = self._origin_peer(dst)
            peer.broken = True
            peer.outstanding.append(rec)
            return rec
        tgt = self._shared_target(tmem, dst, attrs)
        if tgt is not None:
            return (yield from self._shared_write(
                kind, origin_alloc, origin_offset, origin_count,
                origin_dtype, tmem, target_disp, target_count, target_dtype,
                attrs, extra, nbytes, tgt,
            ))
        pack_cost = (
            0.0
            if origin_dtype.is_contiguous
            else nbytes * self.timings.mem_copy_per_byte
        )
        yield self.sim.timeout(
            self.timings.call_overhead + self.network.overhead_send + pack_cost
        )
        # Eager/rendezvous split: single-fragment transfers are copied at
        # issue (buffer free at local completion); larger contiguous ones
        # ride as a zero-copy view, pinned until remote delivery — the
        # same contract real RDMA rendezvous protocols impose.
        wire = pack(
            self.mem.space.buffer(origin_alloc), origin_offset, origin_dtype,
            origin_count, copy=nbytes <= self.network.mtu,
        )
        if nbytes == 0:
            ev = Event(self.sim).succeed()
            return OpRecord((self.rank, 0), dst, 0, kind, "hw", ev, ev, 0)

        via_queue, via_lock = self._atomic_routing(attrs)
        if not via_queue and not via_lock:
            train_rec = self._try_issue_train(
                kind, dst, tmem, target_disp, target_dtype, target_count,
                wire, nbytes, attrs, extra,
            )
            if train_rec is not None:
                return train_rec
        if via_lock:
            yield from self.serializer.origin_acquire(dst)

        peer = self._origin_peer(dst)
        seq = peer.alloc_seq()
        barrier = seq - 1 if attrs.ordering else peer.order_barrier
        if self.conformance_mutations and \
                "drop_order_barrier" in self.conformance_mutations:
            barrier = 0
        mode = self._pick_remote_mode(attrs, tmem, barrier, via_queue,
                                      via_lock, peer)
        if via_queue or via_lock:
            peer.last_atomic_seq = seq
        op_key = (self.rank, next(self._op_counter))

        frags = fragment_layout(target_dtype, target_count, wire, self.network.mtu)
        desc = {
            "op_key": op_key,
            "src": self.rank,
            "seq": seq,
            "barrier": barrier,
            "kind": kind,
            "mem_id": tmem.mem_id,
            "base_disp": target_disp,
            "nfrags": len(frags),
            "atomic_queue": via_queue,
            "ack": mode,
            "swap": self.mem.space.endianness != tmem.endianness,
            "coherent": tmem.coherent,
            "total_bytes": nbytes,
        }
        desc.update(extra)
        if attrs.notify is not None:
            # Only notify-carrying ops grow these keys: notify-free
            # descriptors (and thus traces) stay byte-identical to a
            # build without the subsystem.
            desc["notify"] = attrs.notify
            desc["notify_ts"] = self.sim.now

        want_ack = mode == "hw"
        packets = [
            Packet(
                src=self.rank, dst=dst, kind="rma.frag",
                payload={"desc": desc, "frag": frag},
                data_bytes=len(frag.data),
                want_ack=want_ack,
            )
            for frag in frags
        ]
        self.nic.send_burst(packets)
        inject_evs = [pkt.ev_injected for pkt in packets]
        hw_evs = [pkt.ev_remote_complete for pkt in packets] if want_ack else []

        ev_local = inject_evs[0] if len(inject_evs) == 1 else AllOf(self.sim, inject_evs)
        if mode == "hw":
            ev_remote: Optional[Event] = (
                hw_evs[0] if len(hw_evs) == 1 else AllOf(self.sim, hw_evs)
            )
        elif mode == "sw":
            ev_remote = self.sim.event()
            self._sw_ack_waiters[op_key] = (dst, ev_remote)
        else:
            ev_remote = None

        rec = OpRecord(op_key, dst, seq, kind, mode, ev_local, ev_remote,
                       nbytes, attrs)
        peer.outstanding.append(rec)

        if self.tracer is not None and self.tracer.enabled and nbytes <= 16:
            # consistency-litmus support: small writes are recorded with
            # their value so checkers can rebuild reads-from relations
            self.tracer.record(
                self.sim.now, "consistency", "write", rank=self.rank,
                location=(dst, tmem.mem_id, target_disp),
                value=tuple(wire.tolist()),
            )
        if via_lock:
            self.sim.spawn(self._release_lock_after(dst, rec),
                           name=f"lockrel-{self.rank}")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", f"{kind}_issue",
                               rank=self.rank, dst=dst, seq=seq,
                               bytes=nbytes, attrs=str(attrs), op=op_key)
        return rec

    def _release_lock_after(self, dst: int, rec: OpRecord):
        assert rec.ev_remote is not None
        if not rec.ev_remote.triggered:
            yield rec.ev_remote
        yield from self.serializer.origin_release(dst)

    # ------------------------------------------------------------------
    # Get
    # ------------------------------------------------------------------
    def issue_get(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_dtype: Datatype,
        tmem: TargetMem,
        target_disp: int,
        target_count: int,
        target_dtype: Datatype,
        attrs: RmaAttrs,
    ):
        """Issue a get; returns the completion :class:`Event` whose value
        is ``None`` once data sits in the origin buffer."""
        dst = tmem.rank
        nbytes = self._validate_pair(
            origin_count, origin_dtype, tmem, target_disp, target_count,
            target_dtype,
        )
        # validate origin range before any waiting
        from repro.datatypes.pack import check_bounds

        check_bounds(
            self.mem.space.buffer(origin_alloc), origin_offset, origin_dtype,
            origin_count,
        )
        if attrs.notify is not None:
            self._check_notify_attr(attrs, "get", nbytes)
        if self._path_broken(dst):
            return Event(self.sim).succeed(
                self._path_error(dst, "get", attrs)
            )
        tgt = self._shared_target(tmem, dst, attrs)
        if tgt is not None:
            issued = self.sim.now
            ev_done = yield from self._shared_get(
                origin_alloc, origin_offset, origin_count, origin_dtype,
                tmem, target_disp, target_count, target_dtype, nbytes, tgt,
            )
            if attrs.notify is not None:
                # For a get the "payload" is the read itself: it was
                # just served from the target's memory, so the target's
                # board learns of it now.
                tgt._deliver_notify(self.rank, tmem.mem_id, attrs.notify,
                                    issued=issued)
            self.stats["gets"] += 1
            self.stats["bytes_got"] += nbytes
            return ev_done
        yield self.sim.timeout(
            self.timings.call_overhead + self.network.overhead_send
        )
        ev_done = self.sim.event()
        if nbytes == 0:
            ev_done.succeed()
            return ev_done

        via_queue, via_lock = self._atomic_routing(attrs)
        if via_lock:
            yield from self.serializer.origin_acquire(dst)
        peer = self._origin_peer(dst)
        seq = peer.alloc_seq()
        barrier = seq - 1 if attrs.ordering else peer.order_barrier
        if self.conformance_mutations and \
                "drop_order_barrier" in self.conformance_mutations:
            barrier = 0
        if via_queue:
            # Atomic-queue gets are served by a serializer job after
            # delivery: application is deferred, the train must wait.
            peer.last_deferred_seq = seq
        op_key = (self.rank, next(self._op_counter))
        pend = _PendingGet(
            nbytes, origin_alloc, origin_offset, origin_dtype, origin_count,
            swap=self.mem.space.endianness != tmem.endianness,
            location=(dst, tmem.mem_id, target_disp),
        )
        pend.ev_done = ev_done
        self._pending_gets[op_key] = pend
        get_desc = {
            "op_key": op_key, "src": self.rank, "seq": seq,
            "barrier": barrier, "kind": "get", "mem_id": tmem.mem_id,
            "base_disp": target_disp, "count": target_count,
            "dtype": target_dtype, "atomic_queue": via_queue,
            "total_bytes": nbytes,
        }
        if attrs.notify is not None:
            get_desc["notify"] = attrs.notify
            get_desc["notify_ts"] = self.sim.now
        self.send_control(dst, "rma.get_req", get_desc)
        if via_lock:
            self.sim.spawn(self._release_lock_after_event(dst, ev_done),
                           name=f"lockrel-{self.rank}")
        self.stats["gets"] += 1
        self.stats["bytes_got"] += nbytes
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "get_issue",
                               rank=self.rank, dst=dst, seq=seq, bytes=nbytes,
                               op=op_key)
        return ev_done

    def _release_lock_after_event(self, dst: int, ev: Event):
        if not ev.triggered:
            yield ev
        yield from self.serializer.origin_release(dst)

    # ------------------------------------------------------------------
    # Get-accumulate: atomic fetch-and-op on a whole section — the
    # natural generalization of §V's RMW discussion (and what MPI-3
    # eventually standardized as MPI_Get_accumulate).
    # ------------------------------------------------------------------
    def issue_get_accumulate(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_dtype: Datatype,
        tmem: TargetMem,
        target_disp: int,
        target_count: int,
        target_dtype: Datatype,
        op: str = "sum",
        scale: float = 1.0,
    ):
        """Atomically fetch the target section and apply ``op`` to it;
        the *old* contents land in the origin buffer.  Returns the
        completion event (``yield from``).

        Always atomic: routed through the serializer (or the process
        lock).  ``op="replace"`` gives a section-sized swap;
        ``origin_count == 0`` with ``op="sum"``/scale 0 degenerates to
        an atomic get.
        """
        from repro.datatypes.pack import check_bounds, pack

        if op not in ACC_OPS:
            raise RmaError(f"unknown accumulate op {op!r}; choose from {ACC_OPS}")
        if target_dtype.elem_np is None:
            raise RmaError(
                "get_accumulate requires a datatype with a uniform element type"
            )
        nbytes = self._validate_pair(
            origin_count, origin_dtype, tmem, target_disp, target_count,
            target_dtype,
        )
        check_bounds(
            self.mem.space.buffer(origin_alloc), origin_offset, origin_dtype,
            origin_count,
        )
        dst = tmem.rank
        if self._path_broken(dst):
            return Event(self.sim).succeed(
                self._path_error(dst, "getacc")
            )
        tgt = self._shared_target(tmem, dst, None)
        if tgt is not None:
            ev_done = yield from self._shared_getacc(
                origin_alloc, origin_offset, origin_count, origin_dtype,
                tmem, target_disp, target_count, target_dtype, op, scale,
                nbytes, tgt,
            )
            self.stats["accumulates"] += 1
            self.stats["gets"] += 1
            return ev_done
        yield self.sim.timeout(
            self.timings.call_overhead + self.network.overhead_send
        )
        ev_done = self.sim.event()
        if nbytes == 0:
            ev_done.succeed()
            return ev_done
        wire = pack(
            self.mem.space.buffer(origin_alloc), origin_offset, origin_dtype,
            origin_count, copy=nbytes <= self.network.mtu,
        )
        via_lock = self.serializer.kind == "lock"
        if via_lock:
            yield from self.serializer.origin_acquire(dst)
        peer = self._origin_peer(dst)
        seq = peer.alloc_seq()
        peer.last_atomic_seq = seq
        op_key = (self.rank, next(self._op_counter))
        pend = _PendingGet(
            nbytes, origin_alloc, origin_offset, origin_dtype, origin_count,
            swap=self.mem.space.endianness != tmem.endianness,
            location=(dst, tmem.mem_id, target_disp),
        )
        pend.ev_done = ev_done
        self._pending_gets[op_key] = pend
        frags = fragment_layout(target_dtype, target_count, wire,
                                self.network.mtu)
        desc = {
            "op_key": op_key, "src": self.rank, "seq": seq,
            "barrier": peer.order_barrier, "kind": "getacc",
            "mem_id": tmem.mem_id, "base_disp": target_disp,
            "nfrags": len(frags), "atomic_queue": not via_lock,
            "ack": "none", "swap": pend.swap, "coherent": tmem.coherent,
            "total_bytes": nbytes, "acc_op": op, "acc_scale": scale,
            "np_elem": target_dtype.elem_np,
            "reply_dtype": target_dtype, "reply_count": target_count,
        }
        self.nic.send_burst([
            Packet(
                src=self.rank, dst=dst, kind="rma.frag",
                payload={"desc": desc, "frag": frag},
                data_bytes=len(frag.data),
            )
            for frag in frags
        ])
        if via_lock:
            self.sim.spawn(self._release_lock_after_event(dst, ev_done),
                           name=f"lockrel-{self.rank}")
        self.stats["accumulates"] += 1
        self.stats["gets"] += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "getacc_issue",
                               rank=self.rank, dst=dst, seq=seq, bytes=nbytes,
                               op=op_key)
        return ev_done

    def _serve_getacc(self, peer: _TargetPeer, op: _InboundOp) -> None:
        """Read the old section, apply the update, reply with the old."""
        self.materialize_inbound()
        desc = op.desc
        alloc = self._resolve(desc["mem_id"])
        old = read_layout(self.mem, alloc, desc["base_disp"],
                          desc["reply_dtype"], desc["reply_count"])
        for frag in op.frags:
            apply_accumulate(
                self.mem, alloc, desc["base_disp"], frag, desc["swap"],
                desc["np_elem"], desc["acc_op"], desc["acc_scale"],
                self.mem.space.np_byteorder,
            )
        if not self.mem.coherent:
            self.mem.cache.invalidate_range(
                alloc, desc["base_disp"], desc["total_bytes"]
            )
        self._op_applied(peer, op)
        self._send_get_reply(desc["src"], desc["op_key"], old)

    # ------------------------------------------------------------------
    # RMW (paper §V: conditional and unconditional read-modify-write)
    # ------------------------------------------------------------------
    def issue_rmw(
        self,
        tmem: TargetMem,
        target_disp: int,
        np_elem: str,
        op: str,
        operand,
        compare=None,
        attrs: Optional[RmaAttrs] = None,
    ):
        """Issue a CAS / fetch-and-add / swap; returns the completion
        event whose value is the *old* target value."""
        if op not in RMW_OPS:
            raise RmaError(f"unknown RMW op {op!r}; choose from {RMW_OPS}")
        if op == "cas" and compare is None:
            raise RmaError("cas requires a compare value")
        if attrs is not None and attrs.notify is not None:
            raise RmaError(
                "rmw cannot carry a notification (DESIGN §15: notify is "
                "defined for put/get/accumulate; an RMW already returns "
                "its old value to the origin)",
                op="rmw", src=self.rank, target=tmem.rank, attrs=attrs,
            )
        elem_size = np.dtype(np_elem).itemsize
        tmem.check_access(target_disp, 0, elem_size)
        dst = tmem.rank
        if self._path_broken(dst):
            return Event(self.sim).succeed(
                self._path_error(dst, "rmw", attrs)
            )
        tgt = self._shared_target(tmem, dst, attrs)
        if tgt is not None:
            ev = yield from self._shared_rmw(
                tmem, target_disp, np_elem, op, operand, compare, tgt,
            )
            self.stats["rmws"] += 1
            return ev
        yield self.sim.timeout(
            self.timings.call_overhead + self.network.overhead_send
        )
        # RMWs are atomic by definition.  Hardware atomics serve when the
        # fabric has them; otherwise the op routes through the serializer.
        use_hw = self.network.small_atomics and elem_size <= 8
        via_lock = (not use_hw) and self.serializer.kind == "lock"
        if via_lock:
            yield from self.serializer.origin_acquire(dst)
        peer = self._origin_peer(dst)
        seq = peer.alloc_seq()
        if not use_hw and not via_lock:
            # Serializer-routed RMW: applied by a queued job after
            # delivery, so later train ops cannot assume delivery order
            # equals application order.
            peer.last_deferred_seq = seq
        barrier = peer.order_barrier
        op_key = (self.rank, next(self._op_counter))
        ev = self.sim.event()
        self._pending_replies[op_key] = (dst, "rmw", ev)
        self.send_control(
            dst, "rma.rmw_req",
            {
                "op_key": op_key, "src": self.rank, "seq": seq,
                "barrier": barrier, "kind": "rmw", "mem_id": tmem.mem_id,
                "base_disp": target_disp, "np_elem": np_elem, "op": op,
                "operand": operand, "compare": compare,
                "atomic_queue": not use_hw and not via_lock,
                "endianness": tmem.endianness,
            },
            data_bytes=elem_size,
        )
        if via_lock:
            self.sim.spawn(self._release_lock_after_event(dst, ev),
                           name=f"lockrel-{self.rank}")
        self.stats["rmws"] += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "rmw_issue",
                               rank=self.rank, dst=dst, seq=seq,
                               bytes=elem_size, op=op_key)
        return ev

    # ------------------------------------------------------------------
    # RMI (the xfer optype expansion discussed in §IV)
    # ------------------------------------------------------------------
    def issue_rmi(self, dst: int, name: str, args: tuple, attrs: RmaAttrs):
        """Invoke a registered remote method; completion value is the
        handler's return value."""
        if not (self.network.active_messages or self.machine.threads_allowed):
            raise RmaError(
                "RMI requires active messages or a communication thread "
                "(paper §V: not trivial on all architectures)"
            )
        if attrs.notify is not None:
            raise RmaError(
                "rmi cannot carry a notification (DESIGN §15: notify is "
                "defined for put/get/accumulate; a handler signals its "
                "own completion through its reply)",
                op="rmi", src=self.rank, target=dst, attrs=attrs,
            )
        if self._path_broken(dst):
            return Event(self.sim).succeed(
                self._path_error(dst, "rmi", attrs)
            )
        yield self.sim.timeout(
            self.timings.call_overhead + self.network.overhead_send
        )
        peer = self._origin_peer(dst)
        seq = peer.alloc_seq()
        # RMI handlers run from a spawned process (or serializer job)
        # after delivery — always deferred application.
        peer.last_deferred_seq = seq
        barrier = seq - 1 if attrs.ordering else peer.order_barrier
        op_key = (self.rank, next(self._op_counter))
        ev = self.sim.event()
        self._pending_replies[op_key] = (dst, "rmi", ev)
        from repro.mpi.endpoint import payload_nbytes

        self.send_control(
            dst, "rma.rmi_req",
            {
                "op_key": op_key, "src": self.rank, "seq": seq,
                "barrier": barrier, "kind": "rmi", "name": name,
                "args": args,
            },
            data_bytes=payload_nbytes(args),
        )
        self.stats["rmis"] += 1
        return ev

    # ------------------------------------------------------------------
    # Completion and ordering (MPI_RMA_complete / MPI_RMA_order)
    # ------------------------------------------------------------------
    def complete_one(self, dst: int):
        """Wait for remote completion of all prior ops to ``dst``.
        Returns the list of :class:`RmaError` failures (empty normally)."""
        yield self.sim.timeout(self.timings.call_overhead)
        errs = yield from self._complete_peer(dst)
        self.stats["completes"] += 1
        return errs

    def complete_all(self, resume_at: float = None):
        """Remote-complete every target with outstanding traffic
        (``MPI_ALL_RANKS``).  Returns the list of failures.

        ``resume_at`` replays the call-overhead charge at its exact
        absolute end (nexus-rescue fallback); an end already in the
        simulated past is skipped, with the flush sends backdated to it —
        everything downstream runs at absolute times, so the timeline is
        reproduced exactly."""
        inject_from = None
        if resume_at is None:
            yield self.sim.timeout(self.timings.call_overhead)
        elif resume_at >= self.sim.now:
            yield self.sim.wake_at(resume_at)
        else:
            inject_from = resume_at
        events = []
        for dst in sorted(self._origin_peers):
            events.extend(self._completion_events(dst,
                                                  inject_from=inject_from))
        if events:
            yield AllOf(self.sim, events)
        # Completion is an observation point for this rank's own memory
        # (the caller will read local buffers next): apply any arrived
        # inbound train elements — notably self-directed puts, which on
        # an all-analytic run have no packet delivery to trigger them.
        self.materialize_inbound()
        self.stats["completes"] += 1
        return _collect_errors(events)

    def _complete_peer(self, dst: int):
        events = self._completion_events(dst)
        if len(events) == 1:
            yield events[0]
        elif events:
            yield AllOf(self.sim, events)
        self.materialize_inbound()
        return _collect_errors(events)

    def _completion_events(self, dst: int,
                           inject_from: float = None) -> List[Event]:
        peer = self._origin_peers.get(dst)
        if peer is None or not peer.outstanding:
            return []
        events: List[Event] = []
        if peer.broken:
            # No flush round trip on a broken path: every record resolves
            # to an error immediately (ops with per-op events were already
            # failed by _on_path_failure; flush-mode ones get one here).
            for rec in peer.outstanding:
                ev = rec.ev_remote
                if ev is None:
                    ev = Event(self.sim).succeed(self._op_error(rec))
                events.append(ev)
            peer.completing, peer.outstanding = peer.outstanding, []
            return events
        flush_watermark = 0
        deferred: List[DeferredEvent] = []
        for rec in peer.outstanding:
            ev = rec.ev_remote
            if ev is not None:
                events.append(ev)
                if (type(ev) is DeferredEvent and not ev._armed
                        and not ev.triggered):
                    deferred.append(ev)
            else:
                flush_watermark = max(flush_watermark, rec.seq)
        if deferred:
            # Retire the whole group of analytic hw-ack events with one
            # heap entry at the latest due time.  Each event still
            # auto-fires at its own due when polled (DeferredEvent), so
            # no observable timestamp moves — only the timer count does.
            due = max(ev.due for ev in deferred)
            for ev in deferred:
                ev.mark_armed()
            self.sim.schedule_bulk_succeed_at(
                due, deferred,
                [ev._deferred_value for ev in deferred],
            )
        if flush_watermark:
            flush_id = self._next_flush_id
            self._next_flush_id += 1
            ev = self.sim.event()
            self._flush_waiters[flush_id] = (dst, ev)
            self.send_control(
                dst, "rma.flush_req",
                {"watermark": flush_watermark, "flush_id": flush_id,
                 "src": self.rank},
                inject_from=inject_from,
            )
            events.append(ev)
        peer.completing, peer.outstanding = peer.outstanding, []
        return events

    def order_one(self, dst: int) -> None:
        """Order subsequent ops to ``dst`` after all prior ones — a pure
        origin-side barrier annotation, no network traffic (the paper's
        "weaker form of synchronization")."""
        peer = self._origin_peer(dst)
        peer.order_barrier = peer.last_seq
        self.stats["orders"] += 1

    def order_all(self) -> None:
        for peer in self._origin_peers.values():
            peer.order_barrier = peer.last_seq
        self.stats["orders"] += 1

    # ------------------------------------------------------------------
    # Notification board (DESIGN §15): notified put/get/accumulate
    # ------------------------------------------------------------------
    def _check_notify_attr(self, attrs: RmaAttrs, kind: str,
                           nbytes: int) -> None:
        """Eligibility rules for a notify-carrying op (DESIGN §15).

        A notification only means something once a payload has been
        applied, so a zero-byte op cannot carry one; rmw/rmi decline at
        their own issue paths.  The match value must be a non-negative
        integer (it keys the target's board alongside the window id).
        """
        m = attrs.notify
        if not isinstance(m, int) or isinstance(m, bool) or m < 0:
            raise RmaError(
                f"notify match value must be an int >= 0, got {m!r}",
                op=kind, src=self.rank, attrs=attrs,
            )
        if nbytes == 0:
            raise RmaError(
                f"a zero-byte {kind} cannot carry a notification "
                "(nothing is ever applied at the target; use a 1-byte "
                "payload for a pure signal)",
                op=kind, src=self.rank, attrs=attrs,
            )

    def _notify_slot_key(self, tmem: TargetMem, match: int) -> Tuple[int, int]:
        """Validate a local wait/test/notify_all call and return the
        board key.  Notifications are *target-side* state: only the
        window owner may wait on its own board."""
        if tmem.rank != self.rank:
            raise RmaError(
                f"rank {self.rank} cannot wait on rank {tmem.rank}'s "
                "notification board (notifications surface at the target)"
            )
        if tmem.mem_id not in self._exposures:
            raise RmaError(
                f"rank {self.rank}: notification wait on unknown/"
                f"withdrawn target_mem id {tmem.mem_id}"
            )
        if not isinstance(match, int) or isinstance(match, bool) or match < 0:
            raise RmaError(
                f"notify match value must be an int >= 0, got {match!r}"
            )
        return (tmem.mem_id, match)

    def _notify_available(self, key: Tuple[int, int]) -> int:
        return (self._notify_counts.get(key, 0)
                - self._notify_consumed.get(key, 0))

    def _deliver_notify(self, src: int, mem_id: int, match: int,
                        op_key=None, issued=None) -> None:
        """Count one notification on the board and wake FIFO waiters.

        ``op_key`` (when the op has one) makes delivery idempotent: a
        second delivery attempt for the same op is a no-op.  ``issued``
        is the origin-side issue timestamp carried in the descriptor;
        the difference to now is the end-to-end notify latency.
        """
        if op_key is not None:
            if op_key in self._notify_seen:
                return
            self._notify_seen.add(op_key)
        key = (mem_id, match)
        self._notify_counts[key] = self._notify_counts.get(key, 0) + 1
        self.stats["notifies"] += 1
        if issued is not None:
            self.notify_latencies.append(self.sim.now - issued)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "notify",
                               rank=self.rank, src=src, match=match,
                               op=op_key)
        self._wake_notify_waiters(key)

    def _wake_notify_waiters(self, key: Tuple[int, int]) -> None:
        """Satisfy waiters on ``key`` strictly in arrival (FIFO) order;
        a waiter needing more notifications than are available blocks
        later waiters on the same slot (no overtaking — that is what
        makes wakeup order deterministic and fair)."""
        waiters = self._notify_waiters
        i = 0
        while i < len(waiters):
            w = waiters[i]
            if w.key != key:
                i += 1
                continue
            if self._notify_available(key) < w.need:
                break
            self._notify_consumed[key] = \
                self._notify_consumed.get(key, 0) + w.need
            waiters.pop(i)
            if not w.ev.triggered:
                w.ev.succeed(None)

    def notify_count(self, tmem: TargetMem, match: int) -> int:
        """Unconsumed notifications currently on the board slot."""
        return self._notify_available(self._notify_slot_key(tmem, match))

    def test_notify(self, tmem: TargetMem, match: int,
                    count: int = 1) -> bool:
        """Consume ``count`` notifications if available *and* no earlier
        waiter is parked on the slot (FIFO, same as delivery); returns
        whether it consumed."""
        key = self._notify_slot_key(tmem, match)
        if any(w.key == key for w in self._notify_waiters):
            return False
        if self._notify_available(key) < count:
            return False
        self._notify_consumed[key] = \
            self._notify_consumed.get(key, 0) + count
        return True

    def wait_notify(self, tmem: TargetMem, match: int, count: int = 1,
                    watch=()):
        """Generator: block until ``count`` notifications on
        ``(tmem, match)`` can be consumed.  Returns ``None`` on success
        or the :class:`RmaError` describing why the wait can never be
        satisfied (a watched producer rank died or its path broke) —
        failure surfaces as a structured value, never a hang.
        """
        yield self.sim.timeout(self.timings.call_overhead)
        key = self._notify_slot_key(tmem, match)
        self.stats["notify_waits"] += 1
        watch = frozenset(watch)
        if (self._notify_available(key) >= count
                and not any(w.key == key for w in self._notify_waiters)):
            self._notify_consumed[key] = \
                self._notify_consumed.get(key, 0) + count
            return None
        for r in watch:
            if self.nic.fabric.is_dead(r) or r in self._path_failures:
                return self._path_error(r, "wait_notify")
        ev = self.sim.event()
        self._notify_waiters.append(_NotifyWaiter(key, count, ev, watch))
        value = yield ev
        return value

    def notify_all(self, tmem: TargetMem, match: int) -> int:
        """Release every waiter currently parked on ``(tmem, match)``
        without consuming board counts — a local broadcast wakeup (used
        e.g. to shut down consumers).  Returns how many were released."""
        key = self._notify_slot_key(tmem, match)
        released = 0
        for w in [w for w in self._notify_waiters if w.key == key]:
            self._notify_waiters.remove(w)
            if not w.ev.triggered:
                w.ev.succeed(None)
            released += 1
        return released

    def fail_notify_waiters(self, rank: int, failure=None) -> None:
        """Sweep waiters watching ``rank`` into structured errors.

        Called when ``rank`` dies (:meth:`World._kill_rank`) or when the
        reliable transport declares the path to it broken: any
        ``wait_notify`` whose watch set names the lost producer succeeds
        with an :class:`RmaError` value instead of hanging forever.
        """
        stranded = [w for w in self._notify_waiters if rank in w.watch]
        for w in stranded:
            self._notify_waiters.remove(w)
            if not w.ev.triggered:
                w.ev.succeed(self._path_error(rank, "wait_notify",
                                              failure=failure))

    def notify_delivered(self) -> Dict[Tuple[int, int], int]:
        """Total notifications delivered per (mem_id, match) — the
        conformance runner's exactly-once observable."""
        return dict(self._notify_counts)

    # ------------------------------------------------------------------
    # Target side: fragments
    # ------------------------------------------------------------------
    def _on_frag(self, packet: Packet) -> None:
        desc = packet.payload["desc"]
        frag: Fragment = packet.payload["frag"]
        peer = self._target_peer(desc["src"])
        op = peer.inbound.get(desc["seq"])
        if op is None:
            op = _InboundOp(desc)
            peer.inbound[desc["seq"]] = op
            if not peer.barrier_ok(op.barrier):
                self.stats["gated_frags"] += 1
                peer.gated.append(op)
            else:
                op.gate_open = not desc["atomic_queue"]
            self._mutate_notify_early(desc)
        op.arrived += 1
        if desc["atomic_queue"] or desc["kind"] == "getacc":
            # getacc buffers even on the lock-serializer path: the old
            # contents must be read before any fragment applies
            op.frags.append(frag)
            if op.arrived == op.nfrags and peer.barrier_ok(op.barrier):
                self._stage_atomic(peer, op)
        elif op.gate_open:
            self._apply_write_frag(peer, op, frag)
        else:
            op.frags.append(frag)

    def _apply_write_frag(self, peer: _TargetPeer, op: _InboundOp,
                          frag: Fragment) -> None:
        desc = op.desc
        alloc = self._resolve(desc["mem_id"])
        if desc["kind"] == "put":
            apply_put_fragment(self.mem, alloc, desc["base_disp"], frag,
                               desc["swap"])
        else:
            apply_accumulate(
                self.mem, alloc, desc["base_disp"], frag, desc["swap"],
                desc["np_elem"], desc["acc_op"], desc["acc_scale"],
                self.mem.space.np_byteorder,
            )
        op.applied_frags += 1
        if op.applied_frags == op.nfrags:
            self._finish_write_op(peer, op)

    def _finish_write_op(self, peer: _TargetPeer, op: _InboundOp) -> None:
        if self.mem.coherent:
            self._op_applied(peer, op)
        else:
            # Non-coherent target: the target must be involved to make
            # the deposit visible (invalidate stale scalar-cache lines)
            # before the op may count as applied (paper §III-B2).
            self.sim.spawn(self._invalidate_then_apply(peer, op),
                           name=f"inval-{self.rank}")

    def _invalidate_then_apply(self, peer: _TargetPeer, op: _InboundOp):
        desc = op.desc
        yield self.sim.timeout(
            self.timings.am_handler + self.timings.cache_fence
        )
        alloc = self._resolve(desc["mem_id"])
        self.mem.cache.invalidate_range(
            alloc, desc["base_disp"], desc["total_bytes"]
        )
        self._op_applied(peer, op)

    def _stage_atomic(self, peer: _TargetPeer, op: _InboundOp) -> None:
        if op.staged:
            return
        op.staged = True
        desc = op.desc

        def job():
            nbytes = desc["total_bytes"]
            cost = nbytes * self.timings.mem_copy_per_byte
            if desc["kind"] in ("acc", "getacc"):
                cost += nbytes * self.timings.accumulate_per_byte
            yield self.sim.timeout(cost)
            if desc["kind"] == "getacc":
                self._serve_getacc(peer, op)
                return
            self.materialize_inbound()
            alloc = self._resolve(desc["mem_id"])
            for frag in op.frags:
                if desc["kind"] == "put":
                    apply_put_fragment(self.mem, alloc, desc["base_disp"],
                                       frag, desc["swap"])
                else:
                    apply_accumulate(
                        self.mem, alloc, desc["base_disp"], frag,
                        desc["swap"], desc["np_elem"], desc["acc_op"],
                        desc["acc_scale"], self.mem.space.np_byteorder,
                    )
            if not self.mem.coherent:
                yield self.sim.timeout(self.timings.cache_fence)
                self.mem.cache.invalidate_range(
                    alloc, desc["base_disp"], desc["total_bytes"]
                )
            self._op_applied(peer, op)

        self.serializer.submit_job(job)

    # ------------------------------------------------------------------
    # Target side: gets / rmw / rmi
    # ------------------------------------------------------------------
    def materialize_inbound(self) -> None:
        """Apply analytically-arrived train elements destined to this
        rank.  Packet deliveries materialize automatically, but target
        memory is also read/written from serializer-deferred jobs
        (atomic gets, getacc, locked rmw) and from local CPU loads —
        any such access must first apply whatever the per-op path would
        already have delivered by now."""
        fabric = self.nic.fabric
        if fabric is not None and fabric._pending_trains:
            fabric.materialize_trains(self.rank)

    def _mutate_notify_early(self, desc: Dict[str, Any]) -> None:
        """Planted conformance bug ``notify_before_apply``: deliver the
        notification at first-fragment *arrival* instead of at apply.
        Observable whenever arrival != application — ordering-gated ops
        on unordered fabrics, serializer-staged atomics — because a
        waiter woken early reads memory the payload has not reached yet.
        The op_key dedup entry then silences the correct delivery in
        :meth:`_op_applied`, so counts stay exactly-once (the bug is a
        pure reordering, which is what the oracle's visibility edge
        catches)."""
        if ("notify_before_apply" in self.conformance_mutations
                and desc.get("notify") is not None):
            self._deliver_notify(desc["src"], desc["mem_id"],
                                 desc["notify"], desc.get("op_key"),
                                 desc.get("notify_ts"))

    def _on_get_req(self, packet: Packet) -> None:
        desc = packet.payload
        peer = self._target_peer(desc["src"])
        op = _InboundOp(desc)
        op.nfrags = 1
        peer.inbound[op.seq] = op
        self._mutate_notify_early(desc)
        if not peer.barrier_ok(op.barrier):
            peer.gated.append(op)
            return
        self._serve(peer, op)

    def _on_rmw_req(self, packet: Packet) -> None:
        desc = packet.payload
        peer = self._target_peer(desc["src"])
        op = _InboundOp(desc)
        op.nfrags = 1
        peer.inbound[op.seq] = op
        if not peer.barrier_ok(op.barrier):
            peer.gated.append(op)
            return
        self._serve(peer, op)

    def _on_rmi_req(self, packet: Packet) -> None:
        desc = packet.payload
        peer = self._target_peer(desc["src"])
        op = _InboundOp(desc)
        op.nfrags = 1
        peer.inbound[op.seq] = op
        if not peer.barrier_ok(op.barrier):
            peer.gated.append(op)
            return
        self._serve(peer, op)

    def _serve(self, peer: _TargetPeer, op: _InboundOp) -> None:
        """Execute a control-style inbound op (get / rmw / rmi)."""
        desc = op.desc
        kind = desc["kind"]
        if kind == "get":
            if desc["atomic_queue"]:
                self._stage_get(peer, op)
            else:
                self._serve_get(peer, op)
        elif kind == "rmw":
            if desc["atomic_queue"]:
                def job(op=op, peer=peer):
                    yield self.sim.timeout(self.timings.lock_op)
                    self._execute_rmw(peer, op)
                self.serializer.submit_job(job)
            else:
                self._execute_rmw(peer, op)
        elif kind == "rmi":
            def job(op=op, peer=peer):
                yield self.sim.timeout(self.timings.am_handler)
                self._execute_rmi(peer, op)
            if self.machine.threads_allowed and self.serializer.kind == "thread":
                self.serializer.submit_job(job)
            else:
                self.sim.spawn(job(), name=f"rmi-{self.rank}")
        else:  # pragma: no cover - defensive
            raise RmaError(f"unknown inbound op kind {kind!r}")

    def _serve_get(self, peer: _TargetPeer, op: _InboundOp) -> None:
        self.materialize_inbound()
        desc = op.desc
        alloc = self._resolve(desc["mem_id"])
        data = read_layout(self.mem, alloc, desc["base_disp"], desc["dtype"],
                           desc["count"])
        self._op_applied(peer, op)
        self._send_get_reply(desc["src"], desc["op_key"], data)

    def _send_get_reply(self, src: int, op_key, data: np.ndarray) -> None:
        """Fragment a get reply to MTU and inject it (as a burst when
        the reverse path allows)."""
        mtu = self.network.mtu
        total = data.size
        nfrags = max(1, -(-total // mtu))
        self.nic.send_burst([
            Packet(
                src=self.rank, dst=src, kind="rma.get_reply",
                payload={"op_key": op_key, "wire_off": i * mtu,
                         "data": data[i * mtu : (i + 1) * mtu],
                         "total": total},
                data_bytes=len(data[i * mtu : (i + 1) * mtu]),
            )
            for i in range(nfrags)
        ])

    def _stage_get(self, peer: _TargetPeer, op: _InboundOp) -> None:
        def job():
            yield self.sim.timeout(
                op.desc["total_bytes"] * self.timings.mem_copy_per_byte
            )
            self._serve_get(peer, op)

        self.serializer.submit_job(job)

    def _execute_rmw(self, peer: _TargetPeer, op: _InboundOp) -> None:
        self.materialize_inbound()
        desc = op.desc
        alloc = self._resolve(desc["mem_id"])
        np_dt = np.dtype(desc["np_elem"]).newbyteorder(
            self.mem.space.np_byteorder
        )
        disp = desc["base_disp"]
        raw = self.mem.nic_read(alloc, disp, np_dt.itemsize)
        old = raw.view(np_dt)[0]
        rmw_op = desc["op"]
        if rmw_op == "fetch_add":
            new = old + np_dt.type(desc["operand"])
        elif rmw_op == "swap":
            new = np_dt.type(desc["operand"])
        elif rmw_op == "cas":
            new = (
                np_dt.type(desc["operand"])
                if old == np_dt.type(desc["compare"])
                else old
            )
        else:  # pragma: no cover - validated at issue
            raise RmaError(f"unknown RMW op {rmw_op!r}")
        out = np.array([new], dtype=np_dt).view(np.uint8)
        self.mem.nic_write(alloc, disp, out)
        self._op_applied(peer, op)
        self.send_control(
            desc["src"], "rma.reply",
            {"op_key": desc["op_key"], "value": old.item()},
            data_bytes=np_dt.itemsize,
        )

    def _execute_rmi(self, peer: _TargetPeer, op: _InboundOp) -> None:
        self.materialize_inbound()
        desc = op.desc
        fn = self._rmi_handlers.get(desc["name"])
        if fn is None:
            raise RmaError(
                f"rank {self.rank}: no RMI handler named {desc['name']!r}"
            )
        result = fn(*desc["args"])
        self._op_applied(peer, op)
        from repro.mpi.endpoint import payload_nbytes

        self.send_control(
            desc["src"], "rma.reply",
            {"op_key": desc["op_key"], "value": result},
            data_bytes=payload_nbytes(result),
        )

    # ------------------------------------------------------------------
    # Applied-watermark bookkeeping
    # ------------------------------------------------------------------
    def _op_applied(self, peer: _TargetPeer, op: _InboundOp) -> None:
        desc = op.desc
        peer.inbound.pop(op.seq, None)
        if op.seq == peer.applied_upto + 1:
            peer.applied_upto = op.seq
            while peer.applied_upto + 1 in peer.applied_extra:
                peer.applied_extra.discard(peer.applied_upto + 1)
                peer.applied_upto += 1
        else:
            peer.applied_extra.add(op.seq)
        if desc.get("ack") == "sw":
            self.send_control(desc["src"], "rma.ack", {"op_key": desc["op_key"]})
        m = desc.get("notify")
        if m is not None:
            # THE delivery point: the payload is applied (watermark just
            # advanced), so the notification may now surface.  Idempotent
            # via the op_key — if the planted ``notify_before_apply``
            # mutation already delivered at arrival, this is a no-op.
            self._deliver_notify(desc["src"], desc["mem_id"], m,
                                 desc.get("op_key"), desc.get("notify_ts"))
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "applied",
                               rank=self.rank, src=desc["src"], seq=op.seq,
                               kind_=desc["kind"], op=desc.get("op_key"))
        self._drain_gated(peer)
        self._answer_flushes(peer)

    def _drain_gated(self, peer: _TargetPeer) -> None:
        if peer.draining:
            return  # the outer drain loop will re-scan after each release
        peer.draining = True
        try:
            progress = True
            while progress:
                progress = False
                peer.gated.sort(key=lambda o: o.seq)
                for i, op in enumerate(peer.gated):
                    if peer.barrier_ok(op.barrier):
                        peer.gated.pop(i)
                        self._release_gated_op(peer, op)
                        progress = True
                        break
        finally:
            peer.draining = False

    def _release_gated_op(self, peer: _TargetPeer, op: _InboundOp) -> None:
        kind = op.desc["kind"]
        if kind in ("get", "rmw", "rmi"):
            self._serve(peer, op)
        elif op.desc["atomic_queue"] or kind == "getacc":
            if op.arrived == op.nfrags:
                self._stage_atomic(peer, op)
            # else: staged when the last fragment arrives (_on_frag
            # re-checks the barrier, which is now satisfied)
        else:
            op.gate_open = True
            buffered, op.frags = op.frags, []
            for frag in buffered:
                self._apply_write_frag(peer, op, frag)

    def _answer_flushes(self, peer: _TargetPeer) -> None:
        ready = [w for w in peer.flush_waiters if w[0] <= peer.applied_upto]
        if not ready:
            return
        peer.flush_waiters = [
            w for w in peer.flush_waiters if w[0] > peer.applied_upto
        ]
        for _watermark, flush_id, src in ready:
            self.send_control(src, "rma.flush_ack", {"flush_id": flush_id})

    # ------------------------------------------------------------------
    # Origin-side protocol packet handlers
    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        op_key = packet.payload["op_key"]
        if self.tracer is not None and self.tracer.enabled:
            # Span milestone: software application ack back at the origin.
            self.tracer.record(self.sim.now, "rma", "ack",
                               rank=self.rank, src=packet.src, op=op_key)
        pair = self._sw_ack_waiters.pop(op_key, None)
        if pair is not None and not pair[1].triggered:
            pair[1].succeed(self.sim.now)

    def _on_flush_req(self, packet: Packet) -> None:
        p = packet.payload
        peer = self._target_peer(p["src"])
        if peer.applied_upto >= p["watermark"]:
            self.send_control(p["src"], "rma.flush_ack",
                              {"flush_id": p["flush_id"]})
        else:
            peer.flush_waiters.append((p["watermark"], p["flush_id"], p["src"]))

    def _on_flush_ack(self, packet: Packet) -> None:
        if self.tracer is not None and self.tracer.enabled:
            # Timeline marker only: a flush covers many ops, so it is
            # not attributed to any single span.
            self.tracer.record(self.sim.now, "rma", "flush_ack",
                               rank=self.rank, src=packet.src,
                               flush_id=packet.payload["flush_id"])
        pair = self._flush_waiters.pop(packet.payload["flush_id"], None)
        if pair is not None and not pair[1].triggered:
            pair[1].succeed(self.sim.now)

    def _on_get_reply(self, packet: Packet) -> None:
        p = packet.payload
        pend = self._pending_gets.get(p["op_key"])
        if pend is None:
            if p["op_key"] in self._failed_ops:
                # The op was failed by a path failure; a straggler reply
                # (e.g. delivered after a rank restart) is not an error.
                return
            raise RmaError(f"rank {self.rank}: stray get reply {p['op_key']}")
        chunk = p["data"]
        pend.buffer[p["wire_off"] : p["wire_off"] + len(chunk)] = chunk
        pend.received += len(chunk)
        if pend.received >= p["total"]:
            del self._pending_gets[p["op_key"]]
            self.sim.spawn(self._finish_get(pend, p["op_key"]),
                           name=f"getfin-{self.rank}")

    def _finish_get(self, pend: _PendingGet, op_key=None):
        from repro.datatypes.pack import unpack, unpack_swapped

        yield self.sim.timeout(
            self.network.overhead_recv
            + pend.buffer.size * self.timings.mem_copy_per_byte
        )
        buf = self.mem.space.buffer(pend.alloc)
        if pend.swap:
            unpack_swapped(pend.buffer, buf, pend.offset, pend.dtype,
                           pend.count, scratch=self._scratch(pend.buffer.size))
        else:
            unpack(pend.buffer, buf, pend.offset, pend.dtype, pend.count)
        if (self.tracer is not None and self.tracer.enabled
                and pend.buffer.size <= 16):
            self.tracer.record(
                self.sim.now, "consistency", "read", rank=self.rank,
                location=pend.location, value=tuple(pend.buffer.tolist()),
            )
        if self.tracer is not None and self.tracer.enabled:
            # Span milestone: reply unpacked into the origin buffer.
            self.tracer.record(self.sim.now, "rma", "complete",
                               rank=self.rank, op=op_key)
        assert pend.ev_done is not None
        pend.ev_done.succeed()

    def _on_reply(self, packet: Packet) -> None:
        op_key = packet.payload["op_key"]
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(self.sim.now, "rma", "complete",
                               rank=self.rank, src=packet.src, op=op_key)
        entry = self._pending_replies.pop(op_key, None)
        if entry is not None and not entry[2].triggered:
            entry[2].succeed(packet.payload["value"])

    # -- lock-serializer packets (delegated) -----------------------------
    def _lock_serializer(self):
        from repro.rma.serializer import CoarseLockSerializer

        if not isinstance(self.serializer, CoarseLockSerializer):
            raise RmaError(
                f"rank {self.rank}: received a process-lock packet but the "
                f"serializer is {self.serializer.kind!r}"
            )
        return self.serializer

    def _on_lock_req(self, packet: Packet) -> None:
        self._lock_serializer().on_lock_req(packet)

    def _on_lock_grant(self, packet: Packet) -> None:
        self._lock_serializer().on_grant(packet)

    def _on_unlock(self, packet: Packet) -> None:
        self._lock_serializer().on_unlock(packet)


def build_rma(world: "World") -> None:
    """Construct one engine + frontend per rank and attach to contexts."""
    from repro.rma.api import RmaInterface

    for rank, ctx in world.contexts.items():
        engine = RmaEngine(
            world.sim,
            rank,
            world.nics[rank],
            world.memories[rank],
            world.machine,
            serializer_kind=world.serializer_kind,
            tracer=world.tracer,
        )
        ctx.rma = RmaInterface(engine, ctx.comm)
