"""The strawman MPI-3 RMA user API (paper §IV).

:class:`RmaInterface` exposes the operations of the proposal with the
argument shapes the paper gives::

    MPI_RMA_put(origin_addr, origin_count, origin_datatype,
                target_mem, target_disp, target_count, target_datatype,
                target_rank, comm, RMA_Attributes, request)

mapped to Python as::

    req = yield from ctx.rma.put(
        origin_alloc, origin_offset, origin_count, origin_datatype,
        target_mem, target_disp, target_count, target_datatype,
        attrs=RmaAttrs(ordering=True), comm=ctx.comm)

plus ``get``, ``accumulate``, the unified ``xfer``, the completion and
ordering calls with per-rank / ``ALL_RANKS`` / collective variants, the
RMW operations under discussion in §V, and the RMI expansion.

Attributes resolve per call → per communicator default → ``none()``;
``set_default_attrs(RmaAttrs.strict())`` gives the paper's
"most stringent rules while debugging" mode.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.datatypes.base import Datatype
from repro.machine.address_space import Allocation
from repro.mpi.comm import Comm
from repro.mpi.request import Request
from repro.rma.attributes import ALL_RANKS, RmaAttrs
from repro.rma.engine import RmaEngine
from repro.rma.target_mem import RmaError, TargetMem

__all__ = ["RmaInterface"]

_XFER_OPTYPES = ("put", "get", "accumulate", "get_accumulate", "rmi")


class RmaInterface:
    """Per-rank frontend over :class:`~repro.rma.engine.RmaEngine`."""

    def __init__(self, engine: RmaEngine, comm_world: Comm) -> None:
        self.engine = engine
        self.comm_world = comm_world
        self._defaults: Dict[Tuple, RmaAttrs] = {}

    # ------------------------------------------------------------------
    # Attribute management (§IV req. 5)
    # ------------------------------------------------------------------
    def set_default_attrs(
        self, attrs: RmaAttrs, comm: Optional[Comm] = None
    ) -> None:
        """Set the attribute default for ``comm`` (world if omitted)."""
        comm = comm if comm is not None else self.comm_world
        self._defaults[comm.context] = attrs

    def default_attrs(self, comm: Optional[Comm] = None) -> RmaAttrs:
        """The attribute default in effect for ``comm``."""
        comm = comm if comm is not None else self.comm_world
        return self._defaults.get(comm.context, RmaAttrs.none())

    def _resolve_attrs(
        self,
        comm: Optional[Comm],
        attrs: Optional[RmaAttrs],
        kwargs: Dict[str, Any],
    ) -> RmaAttrs:
        if attrs is not None and kwargs:
            raise RmaError("pass either attrs= or attribute keywords, not both")
        if attrs is not None:
            return attrs
        if kwargs:
            bad = set(kwargs) - {
                "ordering", "remote_completion", "atomicity", "blocking",
                "notify",
            }
            if bad:
                raise RmaError(f"unknown RMA attributes: {sorted(bad)}")
            return self.default_attrs(comm).with_(**kwargs)
        return self.default_attrs(comm)

    def _check_target_rank(
        self, tmem: TargetMem, target_rank: Optional[int], comm: Optional[Comm]
    ) -> None:
        if target_rank is None:
            return
        comm = comm if comm is not None else self.comm_world
        world = comm.group.world_rank(target_rank)
        if world != tmem.rank:
            raise RmaError(
                f"target_rank {target_rank} (world {world}) does not own "
                f"target_mem (owned by world rank {tmem.rank})"
            )

    # ------------------------------------------------------------------
    # Memory exposure
    # ------------------------------------------------------------------
    def expose(self, alloc: Allocation, shared: bool = False) -> TargetMem:
        """Non-collectively register local memory for remote access.
        ``shared=True`` requests the shared-memory window flavor:
        co-located origins bypass the NIC with direct load/store (the
        request degrades to a plain exposure on non-coherent nodes)."""
        return self.engine.expose(alloc, shared=shared)

    def withdraw(self, tmem: TargetMem) -> None:
        """Deregister previously exposed memory."""
        self.engine.withdraw(tmem)

    def expose_collective(self, nbytes: int, comm: Optional[Comm] = None,
                          shared: bool = False):
        """Allocate + expose ``nbytes`` on every rank and allgather the
        descriptors (the collective-allocation convenience §V says is
        "currently being discussed").  Returns ``(alloc, [TargetMem])``
        indexed by communicator rank (``yield from``).  ``shared=True``
        makes every exposure a shared-memory window."""
        comm = comm if comm is not None else self.comm_world
        alloc = self.engine.mem.space.alloc(nbytes)
        yield self.engine.sim.timeout(self.engine.registration_cost(nbytes))
        tmem = self.expose(alloc, shared=shared)
        tmems = yield from comm.allgather(tmem)
        return alloc, tmems

    def register_rmi(self, name: str, fn) -> None:
        """Register a remote-method-invocation handler on this rank."""
        self.engine.register_rmi(name, fn)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def put(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_datatype: Datatype,
        target_mem: TargetMem,
        target_disp: int,
        target_count: int,
        target_datatype: Datatype,
        target_rank: Optional[int] = None,
        comm: Optional[Comm] = None,
        attrs: Optional[RmaAttrs] = None,
        **attr_kwargs: bool,
    ):
        """``MPI_RMA_put`` (``yield from``; returns a :class:`Request`).

        Completion semantics follow the attributes: the request is the
        *local* completion unless ``remote_completion`` is set; with
        ``blocking`` the call itself waits and returns a completed
        request (§IV req. 4).
        """
        a = self._resolve_attrs(comm, attrs, attr_kwargs)
        self._check_target_rank(target_mem, target_rank, comm)
        rec = yield from self.engine.issue_put(
            origin_alloc, origin_offset, origin_count, origin_datatype,
            target_mem, target_disp, target_count, target_datatype, a,
        )
        return (yield from self._write_request(rec, a))

    def accumulate(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_datatype: Datatype,
        target_mem: TargetMem,
        target_disp: int,
        target_count: int,
        target_datatype: Datatype,
        op: str = "sum",
        scale: float = 1.0,
        target_rank: Optional[int] = None,
        comm: Optional[Comm] = None,
        attrs: Optional[RmaAttrs] = None,
        **attr_kwargs: bool,
    ):
        """``MPI_RMA_accumulate``: remote update with ``op`` (``sum``,
        ``prod``, ``min``, ``max``, ``replace`` or ARMCI-style
        ``daxpy`` with ``scale``)."""
        a = self._resolve_attrs(comm, attrs, attr_kwargs)
        self._check_target_rank(target_mem, target_rank, comm)
        rec = yield from self.engine.issue_accumulate(
            origin_alloc, origin_offset, origin_count, origin_datatype,
            target_mem, target_disp, target_count, target_datatype, a,
            op=op, scale=scale,
        )
        return (yield from self._write_request(rec, a))

    def _write_request(self, rec, a: RmaAttrs):
        # Remote completion: per paper, the request completes remotely
        # iff the attribute is set — and atomic ops complete at their
        # (serialized) application, which is inherently remote.
        want_remote = a.remote_completion or a.atomicity
        event = rec.ev_remote if (want_remote and rec.ev_remote
                                  is not None) else rec.ev_local
        req = Request(self.engine.sim, event=event, kind=rec.kind)
        if a.blocking:
            yield from req.wait()
        return req

    def get(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_datatype: Datatype,
        target_mem: TargetMem,
        target_disp: int,
        target_count: int,
        target_datatype: Datatype,
        target_rank: Optional[int] = None,
        comm: Optional[Comm] = None,
        attrs: Optional[RmaAttrs] = None,
        **attr_kwargs: bool,
    ):
        """``MPI_RMA_get``: the request completes once the data sits in
        the origin buffer (gets are inherently remotely complete)."""
        a = self._resolve_attrs(comm, attrs, attr_kwargs)
        self._check_target_rank(target_mem, target_rank, comm)
        ev = yield from self.engine.issue_get(
            origin_alloc, origin_offset, origin_count, origin_datatype,
            target_mem, target_disp, target_count, target_datatype, a,
        )
        req = Request(self.engine.sim, event=ev, kind="get")
        if a.blocking:
            yield from req.wait()
        return req

    def xfer(
        self,
        rma_optype: str,
        origin_alloc: Optional[Allocation] = None,
        origin_offset: int = 0,
        origin_count: int = 0,
        origin_datatype: Optional[Datatype] = None,
        target_mem: Optional[TargetMem] = None,
        target_disp: int = 0,
        target_count: int = 0,
        target_datatype: Optional[Datatype] = None,
        target_rank: Optional[int] = None,
        comm: Optional[Comm] = None,
        attrs: Optional[RmaAttrs] = None,
        accumulate_optype: str = "sum",
        scale: float = 1.0,
        rmi_name: Optional[str] = None,
        rmi_args: tuple = (),
        **attr_kwargs: bool,
    ):
        """``MPI_RMA_xfer`` — the unified single entry point whose
        ``rma_optype`` selects put/get/accumulate, with room for future
        expansion (``"rmi"`` demonstrates the remote-method-invocation
        extension the paper sketches)."""
        if rma_optype not in _XFER_OPTYPES:
            raise RmaError(
                f"unknown rma_optype {rma_optype!r}; choose from {_XFER_OPTYPES}"
            )
        if rma_optype == "rmi":
            if rmi_name is None or target_rank is None:
                raise RmaError("xfer(rmi) requires rmi_name and target_rank")
            return (yield from self.invoke(
                target_rank, rmi_name, *rmi_args, comm=comm, attrs=attrs,
                **attr_kwargs,
            ))
        common = (
            origin_alloc, origin_offset, origin_count, origin_datatype,
            target_mem, target_disp, target_count, target_datatype,
        )
        if rma_optype == "put":
            return (yield from self.put(
                *common, target_rank=target_rank, comm=comm, attrs=attrs,
                **attr_kwargs,
            ))
        if rma_optype == "get":
            return (yield from self.get(
                *common, target_rank=target_rank, comm=comm, attrs=attrs,
                **attr_kwargs,
            ))
        if rma_optype == "get_accumulate":
            return (yield from self.get_accumulate(
                *common, op=accumulate_optype, scale=scale,
                target_rank=target_rank, comm=comm,
            ))
        return (yield from self.accumulate(
            *common, op=accumulate_optype, scale=scale,
            target_rank=target_rank, comm=comm, attrs=attrs, **attr_kwargs,
        ))

    def get_accumulate(
        self,
        origin_alloc: Allocation,
        origin_offset: int,
        origin_count: int,
        origin_datatype: Datatype,
        target_mem: TargetMem,
        target_disp: int,
        target_count: int,
        target_datatype: Datatype,
        op: str = "sum",
        scale: float = 1.0,
        target_rank: Optional[int] = None,
        comm: Optional[Comm] = None,
        blocking: bool = True,
    ):
        """Atomic fetch-and-op on a whole section: the target region is
        updated with ``op`` and its *previous* contents land in the
        origin buffer — the sectioned generalization of §V's RMW
        discussion (standardized later as ``MPI_Get_accumulate``).
        ``op="replace"`` is a section swap."""
        self._check_target_rank(target_mem, target_rank, comm)
        ev = yield from self.engine.issue_get_accumulate(
            origin_alloc, origin_offset, origin_count, origin_datatype,
            target_mem, target_disp, target_count, target_datatype,
            op=op, scale=scale,
        )
        req = Request(self.engine.sim, event=ev, kind="get_accumulate")
        if blocking:
            yield from req.wait()
        return req

    # ------------------------------------------------------------------
    # RMW (§V)
    # ------------------------------------------------------------------
    def compare_and_swap(
        self,
        target_mem: TargetMem,
        target_disp: int,
        np_elem: str,
        compare,
        value,
        blocking: bool = True,
    ):
        """Conditional RMW: write ``value`` iff the target word equals
        ``compare``; returns the old value (blocking) or a Request."""
        ev = yield from self.engine.issue_rmw(
            target_mem, target_disp, np_elem, "cas", value, compare=compare,
        )
        req = Request(self.engine.sim, event=ev, kind="cas")
        if blocking:
            return (yield from req.wait())
        return req

    def fetch_and_add(
        self,
        target_mem: TargetMem,
        target_disp: int,
        np_elem: str,
        operand,
        blocking: bool = True,
    ):
        """Unconditional RMW: atomically add; returns the old value."""
        ev = yield from self.engine.issue_rmw(
            target_mem, target_disp, np_elem, "fetch_add", operand,
        )
        req = Request(self.engine.sim, event=ev, kind="fetch_add")
        if blocking:
            return (yield from req.wait())
        return req

    def swap(
        self,
        target_mem: TargetMem,
        target_disp: int,
        np_elem: str,
        value,
        blocking: bool = True,
    ):
        """Unconditional RMW: atomically exchange; returns the old value."""
        ev = yield from self.engine.issue_rmw(
            target_mem, target_disp, np_elem, "swap", value,
        )
        req = Request(self.engine.sim, event=ev, kind="swap")
        if blocking:
            return (yield from req.wait())
        return req

    # ------------------------------------------------------------------
    # RMI extension
    # ------------------------------------------------------------------
    def invoke(
        self,
        target_rank: int,
        name: str,
        *args: Any,
        comm: Optional[Comm] = None,
        attrs: Optional[RmaAttrs] = None,
        **attr_kwargs: bool,
    ):
        """Invoke a registered remote method; returns its result."""
        a = self._resolve_attrs(comm, attrs, attr_kwargs)
        comm_r = comm if comm is not None else self.comm_world
        dst = comm_r.group.world_rank(target_rank)
        ev = yield from self.engine.issue_rmi(dst, name, args, a)
        result = yield from Request(self.engine.sim, event=ev, kind="rmi").wait()
        return result

    # ------------------------------------------------------------------
    # Completion / ordering (§IV)
    # ------------------------------------------------------------------
    def complete(
        self, comm: Optional[Comm] = None, target_rank: int = ALL_RANKS
    ):
        """``MPI_RMA_complete``: wait for remote completion of all prior
        accesses to ``target_rank`` (or every rank with ``ALL_RANKS``).

        Failure-aware: when the reliable transport declared a path dead
        (fault-injection runs), the world's error handler decides —
        ``ERRORS_RAISE`` (default) raises the first
        :class:`~repro.rma.target_mem.RmaError`; ``ERRORS_RETURN``
        returns the list of errors (empty on success).
        """
        comm = comm if comm is not None else self.comm_world
        if target_rank == ALL_RANKS:
            errs = yield from self.engine.complete_all()
        else:
            errs = yield from self.engine.complete_one(
                comm.group.world_rank(target_rank)
            )
        return self._handle_completion_errors(errs)

    def complete_collective(self, comm: Optional[Comm] = None):
        """``MPI_RMA_complete_collective``: everyone completes, then a
        barrier guarantees global visibility."""
        comm = comm if comm is not None else self.comm_world
        nexus = self.engine.sim.context.get("nexus")
        if nexus is not None:
            ev, bctx = nexus.enter_complete(comm, self.engine)
            if ev is not None:
                state, val = yield ev
                if state == "ok":
                    # Analytic collective complete: no packet ever
                    # lands here to trigger lazy train application, so
                    # apply the arrived inbound prefix before the
                    # caller reads its own memory.
                    self.engine.materialize_inbound()
                    return []
                # rescued: replay the complete_all charge at its exact
                # end, then run the real flush + barrier protocol
                errs = yield from self.engine.complete_all(
                    resume_at=val + self.engine.timings.call_overhead
                )
                if self._barrier_doomed(errs):
                    return self._handle_completion_errors(errs)
                yield from comm.barrier(_ctx=bctx)
                self.engine.materialize_inbound()
                return self._handle_completion_errors(errs)
            errs = yield from self.engine.complete_all()
            if self._barrier_doomed(errs):
                return self._handle_completion_errors(errs)
            yield from comm.barrier(_ctx=bctx)
            self.engine.materialize_inbound()
            return self._handle_completion_errors(errs)
        errs = yield from self.engine.complete_all()
        if self._barrier_doomed(errs):
            return self._handle_completion_errors(errs)
        yield from comm.barrier()
        self.engine.materialize_inbound()
        return self._handle_completion_errors(errs)

    @staticmethod
    def _barrier_doomed(errs) -> bool:
        """Whether entering the closing barrier can never finish.

        A dead member or a fabric partition makes the barrier
        unreachable for everyone — fail fast with the structured errors
        instead of hanging in it.  Retry exhaustion on a live path does
        *not* doom the barrier (peers without errors still enter it),
        so the pre-failure behavior is kept there.
        """
        return any(getattr(e, "kind", None) in ("rank_failed",
                                                "link_partition")
                   for e in errs)

    def _handle_completion_errors(self, errs):
        if not errs:
            return []
        from repro.mpi.constants import ERRORS_RAISE

        world = self.engine.sim.context.get("world")
        handler = getattr(world, "rma_errhandler", ERRORS_RAISE) \
            if world is not None else ERRORS_RAISE
        if handler == ERRORS_RAISE:
            raise errs[0]
        return errs

    def order(self, comm: Optional[Comm] = None, target_rank: int = ALL_RANKS):
        """``MPI_RMA_order``: order later accesses to ``target_rank``
        after all earlier ones (shmem_fence-style; weaker and cheaper
        than completion — no network traffic)."""
        comm = comm if comm is not None else self.comm_world
        yield self.engine.sim.timeout(self.engine.timings.call_overhead)
        if target_rank == ALL_RANKS:
            self.engine.order_all()
        else:
            self.engine.order_one(comm.group.world_rank(target_rank))

    def order_collective(self, comm: Optional[Comm] = None):
        """``MPI_RMA_order_collective``."""
        comm = comm if comm is not None else self.comm_world
        yield from self.order(comm, ALL_RANKS)
        yield from comm.barrier()

    # ------------------------------------------------------------------
    # Notified RMA (DESIGN §15): target-side notification board
    # ------------------------------------------------------------------
    def wait_notify(self, target_mem: TargetMem, match: int,
                    count: int = 1, watch=()):
        """Block until ``count`` notifications with ``match`` have been
        delivered to this rank's window (``yield from``).

        A notification is delivered only after the carrying operation's
        payload has been applied here, so returning implies the payload
        is visible.  ``watch`` optionally names producer ranks: if one
        of them dies (or its path breaks) before notifying, the wait
        surfaces a structured :class:`~repro.rma.target_mem.RmaError`
        instead of hanging — raised under ``ERRORS_RAISE`` (default),
        returned under ``ERRORS_RETURN``.  Returns the error list
        (empty on success).
        """
        err = yield from self.engine.wait_notify(target_mem, match,
                                                count=count, watch=watch)
        if err is None:
            return []
        return self._handle_completion_errors([err])

    def test_notify(self, target_mem: TargetMem, match: int,
                    count: int = 1):
        """Non-blocking probe (``yield from``): consume ``count``
        notifications if present, returning whether it did."""
        yield self.engine.sim.timeout(self.engine.timings.call_overhead)
        return self.engine.test_notify(target_mem, match, count=count)

    def notify_all(self, target_mem: TargetMem, match: int):
        """Release every local waiter parked on ``(target_mem, match)``
        without consuming board counts (``yield from``); returns how
        many were released."""
        yield self.engine.sim.timeout(self.engine.timings.call_overhead)
        return self.engine.notify_all(target_mem, match)

    def notify_count(self, target_mem: TargetMem, match: int) -> int:
        """Unconsumed notifications on the slot (pure local peek)."""
        return self.engine.notify_count(target_mem, match)

    @property
    def stats(self) -> Dict[str, int]:
        """Engine statistics (ops issued, bytes moved, gated fragments)."""
        return self.engine.stats
