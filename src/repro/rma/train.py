"""Analytic op-trains: closed-form delivery of attribute-uniform runs.

PR 1 proved that the flight of an uncontended burst on a flat, ordered,
fault-free path is closed-form: injection times are a running sum of
serialization charges, arrivals are ``inject + latency`` clamped
monotonic per (src, dst) pair.  The *op-train* fast path lifts that
observation from one operation's fragments to a whole run of
operations: the engine computes every timestamp of each eligible op as
a numpy expression at issue time (:meth:`RmaEngine._try_issue_train`)
and records the op here instead of injecting packets.

A train is a per-(src, dst) sequence of :class:`TrainElement`, each a
fully-described write (put/accumulate) with a precomputed *apply time*
(its last fragment's analytic arrival).  Application is **lazy**: the
fabric materializes the arrived prefix of every train headed for a rank
immediately before delivering any real packet to it
(:meth:`~repro.network.fabric.Fabric.materialize_trains`), and the
world drains all trains at end of run.  Because arrivals on an ordered
path are clamped strictly monotonic, any real packet was sent *after*
the train elements it follows and arrives after them — so handlers
(flush requests, later gets, atomics) always observe exactly the
target-memory and watermark state the per-packet path would have
produced at the same simulated time.

Timestamps are bit-identical to the event-loop path by construction:
the arithmetic below is the same float arithmetic `Nic._injector` /
`Fabric.transmit` perform, just evaluated eagerly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.rma.layout import Fragment, apply_accumulate, apply_put_fragment

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["TrainElement", "OpTrain"]


def _dead_in_batch(batch: List["TrainElement"], i: int) -> bool:
    """Whether ``batch[i]``'s memcpy can be elided: some later put in
    the same materialization batch rewrites every byte it writes,
    before any accumulate could read them.

    Two cases, both byte-exact: a later put with the *identical*
    layout signature (any shape, the PR 6 rule), or — for a contiguous
    put — a later contiguous put to the same memory whose interval
    contains this one.  An intervening overlapping accumulate reads
    the target bytes, so the scan stops conservatively at the first
    accumulate (batches are same-(src, dst) runs into one scratch
    area; precise acc intervals are not worth tracking here)."""
    elem = batch[i]
    sig = elem.overwrite_sig
    if sig is None:
        return False
    contig = sig[0] == "contig"
    if contig:
        _, mem_id, lo, nb = sig
        hi = lo + nb
    for later in batch[i + 1:]:
        if later.kind != "put":
            return False
        lsig = later.overwrite_sig
        if lsig == sig:
            return True
        if contig and lsig is not None and lsig[0] == "contig":
            _, lmem, llo, lnb = lsig
            if lmem == mem_id and llo <= lo and llo + lnb >= hi:
                return True
    return False


class TrainElement:
    """One analytically-timed write riding a train."""

    __slots__ = ("seq", "op_key", "kind", "mem_id", "base_disp", "swap",
                 "frags", "wire", "nfrags", "apply_time", "acc_args",
                 "overwrite_sig", "total_wire")

    def __init__(
        self,
        seq: int,
        op_key: Tuple[int, int],
        kind: str,
        mem_id: int,
        base_disp: int,
        swap: bool,
        frags: Optional[List[Fragment]],
        wire: Any,
        nfrags: int,
        apply_time: float,
        acc_args: Optional[tuple],
        overwrite_sig: Optional[tuple],
        total_wire: int,
    ) -> None:
        self.seq = seq
        self.op_key = op_key
        self.kind = kind  # "put" | "acc"
        self.mem_id = mem_id
        self.base_disp = base_disp
        self.swap = swap
        #: Explicit fragment layout, or None for a *lazy* element — a
        #: contiguous same-endian put whose application is one dense
        #: deposit of ``wire`` at ``base_disp`` (fragmentation is pure
        #: timing there, so no Fragment objects are ever built).
        self.frags = frags
        self.wire = wire
        self.nfrags = nfrags
        #: Analytic arrival of the last fragment — the instant the op
        #: counts as applied (matching `_deliver_burst`'s replay point).
        self.apply_time = apply_time
        #: (np_elem, op, scale) for accumulates, None for puts.
        self.acc_args = acc_args
        #: Tagged layout signature for puts — two puts with equal
        #: signatures write byte-identical regions, and a later
        #: ``("contig", mem_id, disp, nbytes)`` signature *covers* an
        #: earlier one whose byte interval it contains.  A put covered
        #: later in its own materialization batch is dead and its
        #: memcpy is elided.
        self.overwrite_sig = overwrite_sig
        self.total_wire = total_wire


class OpTrain:
    """A pending run of analytic ops from one origin to one target."""

    __slots__ = ("src", "dst", "_sim", "_elements", "_next", "_target")

    def __init__(self, sim: "Simulator", src: int, dst: int) -> None:
        self._sim = sim
        self.src = src
        self.dst = dst
        self._elements: List[TrainElement] = []
        self._next = 0
        self._target = None  # target-rank RmaEngine, resolved lazily

    @property
    def done(self) -> bool:
        return self._next >= len(self._elements)

    @property
    def next_time(self) -> Optional[float]:
        """Analytic arrival of the earliest unapplied element, or
        ``None`` when the train is drained."""
        if self._next >= len(self._elements):
            return None
        return self._elements[self._next].apply_time

    def append(self, elem: TrainElement) -> None:
        self._elements.append(elem)

    def drop_rest(self) -> int:
        """Discard every unmaterialized element (rank death); returns
        the number of fragments dropped (they count as in-flight
        packets for the fabric's ``dead_dropped`` stat)."""
        dropped = self._elements[self._next:]
        del self._elements[self._next:]
        return sum(e.nfrags for e in dropped)

    def _target_engine(self):
        eng = self._target
        if eng is None:
            world = self._sim.context["world"]
            eng = self._target = world.contexts[self.dst].rma.engine
        return eng

    def materialize_upto(self, now: float) -> bool:
        """Apply every element whose analytic arrival has passed.

        Returns True once the train is fully drained (the fabric then
        drops it from the registry).  Replays the exact target-side
        effects of per-packet delivery: fragment application, delivery
        stats, the applied-watermark roll, then gate draining and flush
        answering once per batch (`_op_applied` does the same pair of
        calls per op; batching them is safe because the intermediate
        watermark states are never observable — nothing else can run
        between elements of one materialization).
        """
        elements = self._elements
        end = self._next
        n = len(elements)
        while end < n and elements[end].apply_time <= now:
            end += 1
        if end == self._next:
            return self._next >= n
        eng = self._target_engine()
        fabric = eng.nic.fabric
        tpeer = eng._target_peer(self.src)
        mem = eng.mem
        batch = elements[self._next:end]
        self._next = end
        nbatch = len(batch)
        # A train riding a same-node path carries the same packets the
        # per-packet path would have: keep the intra-node stat honest —
        # one count per fragment, exactly like Fabric.transmit[_burst].
        intra = (fabric.intra_config is not None
                 and fabric.config_for(self.src, self.dst)
                 is fabric.intra_config)
        for i, elem in enumerate(batch):
            fabric.packets_delivered += elem.nfrags
            fabric.bytes_delivered += elem.total_wire
            if intra:
                fabric.intra_node_packets += elem.nfrags
            alloc = eng._resolve(elem.mem_id)
            if elem.kind == "put":
                if i + 1 < nbatch and _dead_in_batch(batch, i):
                    # Dead store: a later element of this same batch
                    # rewrites every byte — elide the memcpy (the
                    # watermark below still rolls).
                    pass
                elif elem.frags is None:
                    mem.nic_write(alloc, elem.base_disp, elem.wire)
                else:
                    for frag in elem.frags:
                        apply_put_fragment(mem, alloc, elem.base_disp, frag,
                                           elem.swap)
            else:
                np_elem, acc_op, acc_scale = elem.acc_args  # type: ignore
                for frag in elem.frags:
                    apply_accumulate(mem, alloc, elem.base_disp, frag,
                                     elem.swap, np_elem, acc_op, acc_scale,
                                     mem.space.np_byteorder)
            # applied-watermark roll (mirror of RmaEngine._op_applied;
            # train ops never register an _InboundOp, never sw-ack, and
            # only form untraced, so the rest of _op_applied is moot)
            seq = elem.seq
            if seq == tpeer.applied_upto + 1:
                tpeer.applied_upto = seq
                extra = tpeer.applied_extra
                while tpeer.applied_upto + 1 in extra:
                    extra.discard(tpeer.applied_upto + 1)
                    tpeer.applied_upto += 1
            else:
                tpeer.applied_extra.add(seq)
        eng._drain_gated(tpeer)
        eng._answer_flushes(tpeer)
        return self._next >= n
