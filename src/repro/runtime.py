"""The World: assembles a simulated machine and runs SPMD programs.

A :class:`World` builds the whole stack — simulator, fabric, one NIC +
address space + MPI endpoint (+ RMA engines, once constructed) per rank
— and runs *rank programs*: generator functions with the signature
``program(ctx, *args)`` where ``ctx`` is that rank's
:class:`RankContext`.  This mirrors how an MPI job launches N copies of
the same executable.

Example
-------
>>> from repro.runtime import World
>>> def program(ctx):
...     value = yield from ctx.comm.bcast(ctx.rank * 10, root=2)
...     return value
>>> World(n_ranks=4).run(program)
[20, 20, 20, 20]
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.machine.config import MachineConfig, generic_cluster
from repro.machine.node import Node, RankMemory, build_nodes
from repro.mpi.comm import Comm, Group
from repro.mpi.constants import ERRORS_RAISE
from repro.mpi.endpoint import MpiEndpoint
from repro.network.config import NetworkConfig, generic_rdma
from repro.network.fabric import Fabric
from repro.network.nic import Nic
from repro.sim.core import SimulationError, Simulator
from repro.sim.process import Process, ProcessKilled
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

__all__ = ["World", "RankContext"]


class RankContext:
    """Everything one rank's program can touch.

    Attributes
    ----------
    rank, size:
        World rank and job size.
    sim:
        The shared simulator (for ``ctx.sim.now`` timestamps and
        explicit ``yield ctx.sim.timeout(...)`` compute phases).
    comm:
        This rank's ``COMM_WORLD``.
    mem:
        The rank's :class:`~repro.machine.node.RankMemory` (address
        space + cache model).
    nic:
        The rank's NIC (mostly for stats).
    rma / mpi2 / armci / gasnet:
        Interface frontends, attached by the World when the respective
        subsystem is built.
    """

    def __init__(
        self,
        world: "World",
        rank: int,
        sim: Simulator,
        comm: Comm,
        mem: RankMemory,
        nic: Nic,
    ) -> None:
        self.world = world
        self.rank = rank
        self.size = world.n_ranks
        self.sim = sim
        self.comm = comm
        self.mem = mem
        self.nic = nic
        self.rma: Any = None
        self.mpi2: Any = None
        self.armci: Any = None
        self.gasnet: Any = None
        self.shmem: Any = None

    def compute(self, duration: float):
        """A local compute phase of ``duration`` µs (``yield from``)."""
        yield self.sim.timeout(duration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankContext rank={self.rank}/{self.size}>"


class World:
    """A complete simulated parallel machine.

    Parameters
    ----------
    n_ranks:
        Job size; ignored when ``machine`` is given (the machine's rank
        count wins).
    machine:
        :class:`~repro.machine.config.MachineConfig`; defaults to a
        generic coherent cluster with one rank per node.
    network:
        :class:`~repro.network.config.NetworkConfig`; defaults to
        :func:`~repro.network.config.generic_rdma`.
    seed:
        Master seed for every stochastic model element.
    trace:
        Enable structured tracing (``world.tracer``).
    serializer:
        Atomicity serializer for the strawman RMA engine: ``"auto"``
        (thread where the machine allows it, else coarse lock),
        ``"thread"``, ``"lock"``, or ``"progress"``.
    eager_threshold:
        Two-sided messages above this size use the rendezvous protocol.
    intra_node_network:
        Personality for transfers between ranks sharing a node; defaults
        to :func:`~repro.network.config.shared_memory_like` when the
        machine places multiple ranks per node, else no distinction.
    fault_plan:
        A :class:`~repro.faults.plan.FaultPlan` to arm.  When active it
        installs a seeded :class:`~repro.faults.injector.FaultInjector`
        on the fabric and the reliable transport on every NIC; an empty
        or ``None`` plan keeps every fault-free fast path bit-identical.
    rma_errhandler:
        ``ERRORS_RAISE`` (default: failed RMA ops raise their
        :class:`~repro.rma.target_mem.RmaError` out of wait/complete) or
        ``ERRORS_RETURN`` (errors are returned/left on the request).
    resilience:
        Opt into the ULFM-style failure-detection layer: ``True`` for
        defaults or a :class:`~repro.resil.detector.ResilienceConfig`.
        When ``None`` (default) nothing is built — no heartbeat
        processes, no extra packets, fault-free runs stay bit-identical.
        The runtime is available as ``world.resil``.
    """

    def __init__(
        self,
        n_ranks: Optional[int] = None,
        machine: Optional[MachineConfig] = None,
        network: Optional[NetworkConfig] = None,
        seed: int = 0,
        trace: bool = False,
        serializer: str = "auto",
        eager_threshold: int = 16384,
        intra_node_network: Optional[NetworkConfig] = None,
        fault_plan: Optional["FaultPlan"] = None,
        rma_errhandler: str = ERRORS_RAISE,
        resilience: Any = None,
    ) -> None:
        if machine is None:
            machine = generic_cluster(n_nodes=n_ranks if n_ranks else 8)
        if n_ranks is not None and machine.n_ranks != n_ranks:
            if machine.ranks_per_node != 1:
                raise ValueError(
                    "n_ranks conflicts with the machine config; pass one "
                    "or the other"
                )
            machine = machine.with_nodes(n_ranks)
        self.machine = machine
        self.network = network if network is not None else generic_rdma()
        self.n_ranks = machine.n_ranks
        self.serializer_kind = serializer

        if intra_node_network is None and machine.ranks_per_node > 1:
            from repro.network.config import shared_memory_like

            intra_node_network = shared_memory_like()
        self.intra_node_network = intra_node_network

        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace)
        #: The world's metrics registry (shared with the tracer, so
        #: ``tracer.bump`` counters and observability metrics live in
        #: one place).  See :mod:`repro.obs.metrics`.
        self.metrics = self.tracer.metrics
        self.rng = RngRegistry(seed)
        self.fabric = Fabric(
            self.sim, self.network, rng=self.rng, tracer=self.tracer,
            intra_config=intra_node_network,
            same_node=(
                (lambda a, b: machine.node_of_rank(a) == machine.node_of_rank(b))
                if intra_node_network is not None else None
            ),
            n_ranks=self.n_ranks,
        )
        #: Topology runtime when the network carries a routed topology
        #: (``None`` on flat fabrics — the pre-topology fast path).
        self.topo = None
        if self.network.topology is not None:
            from repro.topo.runtime import TopoRuntime

            topo = self.network.topology
            if machine.n_nodes > topo.n_hosts:
                raise ValueError(
                    f"machine has {machine.n_nodes} nodes but topology "
                    f"{topo.name!r} only has {topo.n_hosts} host ports"
                )
            rank_to_host = {
                r: topo.hosts[machine.node_of_rank(r)]
                for r in range(self.n_ranks)
            }
            self.topo = TopoRuntime(topo, rank_to_host, rng=self.rng,
                                    tracer=self.tracer)
            self.fabric.install_topology(self.topo)
        self.nodes: List[Node] = build_nodes(machine)
        self.memories: Dict[int, RankMemory] = {}
        self.nics: Dict[int, Nic] = {}
        self.endpoints: Dict[int, MpiEndpoint] = {}
        self.contexts: Dict[int, RankContext] = {}

        world_group = Group(range(self.n_ranks))
        for node in self.nodes:
            for rank in node.ranks:
                mem = node.memory(rank)
                nic = Nic(self.sim, rank, self.fabric)
                ep = MpiEndpoint(self.sim, rank, nic, machine.timings,
                                 eager_threshold=eager_threshold)
                comm = Comm(ep, world_group, context=("world",))
                self.memories[rank] = mem
                self.nics[rank] = nic
                self.endpoints[rank] = ep
                self.contexts[rank] = RankContext(
                    self, rank, self.sim, comm, mem, nic
                )
        self.sim.context["world"] = self
        # Analytic fast path for full-communicator collectives.  Always
        # constructed; its own gates keep it inert on traced / faulty /
        # routed / contended runs (see repro.mpi.nexus).
        from repro.mpi.nexus import CollectiveNexus

        self.nexus = CollectiveNexus(self)
        self.sim.context["nexus"] = self.nexus
        self.fabric._nexus = self.nexus
        self.fault_plan = fault_plan
        self.injector = None
        self.rma_errhandler = rma_errhandler
        self._rank_procs: Dict[int, Process] = {}
        if fault_plan is not None and fault_plan.active:
            # Must happen before the subsystems attach: the RMA engines
            # register their path-failure callbacks on nic.transport.
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(fault_plan, self.rng, tracer=self.tracer)
            self.fabric.install_injector(injector)
            for nic in self.nics.values():
                nic.enable_reliability(fault_plan.transport)
            injector.arm(self)
            self.injector = injector
        #: Simulated time each rank was fault-killed (detection-latency
        #: and MTTR baselines; populated by :meth:`_kill_rank`).
        self._kill_times: Dict[int, float] = {}
        self._attach_subsystems()
        #: The resilience runtime (``None`` unless opted in).  Built
        #: after the subsystems attach: the detector exposes memory via
        #: the RMA engines and stacks its transport callbacks behind
        #: theirs.
        self.resil = None
        if resilience:
            from repro.resil.detector import ResilienceConfig, ResilienceRuntime

            config = resilience if isinstance(resilience, ResilienceConfig) \
                else None
            self.resil = ResilienceRuntime(self, config)

    # ------------------------------------------------------------------
    def _attach_subsystems(self) -> None:
        """Build and attach the RMA/baseline frontends to each context.

        Imported lazily to keep layering acyclic (those packages import
        machine/network/mpi, not the runtime).
        """
        try:
            from repro.rma.engine import build_rma
        except ImportError:  # pragma: no cover - during bootstrap only
            build_rma = None
        if build_rma is not None:
            build_rma(self)
        try:
            from repro.mpi2rma.window import build_mpi2
        except ImportError:  # pragma: no cover
            build_mpi2 = None
        if build_mpi2 is not None:
            build_mpi2(self)
        try:
            from repro.baselines.armci import build_armci
        except ImportError:  # pragma: no cover
            build_armci = None
        if build_armci is not None:
            build_armci(self)
        try:
            from repro.baselines.gasnet import build_gasnet
        except ImportError:  # pragma: no cover
            build_gasnet = None
        if build_gasnet is not None:
            build_gasnet(self)
        try:
            from repro.baselines.shmem import build_shmem
        except ImportError:  # pragma: no cover
            build_shmem = None
        if build_shmem is not None:
            build_shmem(self)

    # ------------------------------------------------------------------
    # Fault machinery
    # ------------------------------------------------------------------
    def set_errhandler(self, handler: str) -> None:
        """Switch the RMA error handler (``ERRORS_RAISE``/``ERRORS_RETURN``)."""
        self.rma_errhandler = handler

    def fault_stats(self) -> Dict[str, Any]:
        """Aggregate fault-injection and reliability statistics.

        The historical keys (``injector``/``dead_dropped``/``transport``/
        ``counters``) keep their shapes; ``metrics`` adds the full
        registry snapshot (after publishing component gauges via
        :meth:`collect_metrics`).
        """
        stats: Dict[str, Any] = {
            "injector": dict(self.injector.stats) if self.injector else {},
            "dead_dropped": self.fabric.dead_dropped,
            "transport": {},
            "counters": dict(self.tracer.counters),
        }
        for rank, nic in self.nics.items():
            if nic.transport is not None:
                stats["transport"][rank] = dict(nic.transport.stats)
        self.collect_metrics()
        stats["metrics"] = self.metrics.snapshot()
        return stats

    def collect_metrics(self) -> "Any":
        """Publish component stats into the metrics registry as gauges.

        NIC traffic counts, transport reliability stats and fault
        injector stats are kept in plain attributes on the hot paths;
        this pulls them into ``world.metrics`` (idempotent — gauges are
        set, not incremented) so one registry snapshot describes the
        whole run.  Returns the registry.
        """
        metrics = self.metrics
        for rank, nic in self.nics.items():
            metrics.gauge("nic.packets_sent", rank=rank).set(nic.packets_sent)
            metrics.gauge("nic.bytes_sent", rank=rank).set(nic.bytes_sent)
            metrics.gauge("nic.packets_received", rank=rank).set(
                nic.packets_received
            )
            if nic.transport is not None:
                for key, value in nic.transport.stats.items():
                    metrics.gauge(f"xport.{key}", rank=rank).set(value)
        metrics.gauge("fabric.dead_dropped").set(self.fabric.dead_dropped)
        if self.topo is not None:
            metrics.gauge("fabric.unroutable_dropped").set(
                self.fabric.unroutable_dropped)
            self.topo.publish_metrics(metrics, self.sim.now)
        if self.injector is not None:
            for key, value in self.injector.stats.items():
                metrics.gauge(f"fault.{key}").set(value)
        if self.resil is not None:
            for key, value in self.resil.stats.items():
                metrics.gauge(f"resil.{key}").set(value)
        for rank, ctx in self.contexts.items():
            engine = getattr(getattr(ctx, "rma", None), "engine", None)
            if engine is None:
                continue
            if engine.stats.get("notifies") or engine.stats.get("notify_waits"):
                metrics.gauge("notify.delivered", rank=rank).set(
                    engine.stats["notifies"])
                metrics.gauge("notify.waits", rank=rank).set(
                    engine.stats["notify_waits"])
            # Latencies accumulate on the engine; publish only the
            # not-yet-observed suffix so repeated collect_metrics calls
            # stay idempotent like the gauges above.
            lat = engine.notify_latencies
            start = getattr(engine, "_notify_lat_published", 0)
            if len(lat) > start:
                hist = metrics.histogram("notify.latency_us", rank=rank)
                for value in lat[start:]:
                    hist.observe(value)
                engine._notify_lat_published = len(lat)
        return metrics

    def _kill_rank(self, rank: int, kill_program: bool = True) -> None:
        """Fault injection: rank dies at the current simulated time.
        The fabric drops all its traffic; optionally its program process
        is killed too (it fails with ProcessKilled, reported as None)."""
        self._kill_times.setdefault(rank, self.sim.now)
        self.fabric.kill_rank(rank)
        if kill_program:
            proc = self._rank_procs.get(rank)
            if proc is not None:
                proc.kill()
        # A wait_notify watching the victim as its producer can never be
        # satisfied: sweep every survivor's notification board so the
        # wait surfaces a structured RmaError instead of hanging.
        for r, ctx in self.contexts.items():
            if r == rank:
                continue
            engine = getattr(getattr(ctx, "rma", None), "engine", None)
            if engine is not None:
                engine.fail_notify_waiters(rank)

    def _restart_rank(self, rank: int) -> None:
        """Fault injection: rank comes back.  Every peer's transport
        flow and RMA path state shared with it resets (epoch restart);
        already-failed operations stay failed."""
        self.fabric.revive_rank(rank)
        for r, nic in self.nics.items():
            transport = nic.transport
            if transport is None:
                continue
            if r == rank:
                transport.reset_all()
            else:
                transport.reset_flow(rank)
        for r, ctx in self.contexts.items():
            engine = getattr(ctx.rma, "engine", None)
            if engine is None:
                continue
            if r == rank:
                engine.reset_all_paths()
            else:
                engine.reset_path(rank)

    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        *args: Any,
        limit: Optional[float] = None,
        ranks: Optional[List[int]] = None,
    ) -> List[Any]:
        """Run ``program(ctx, *args)`` on every rank (or on ``ranks``).

        Returns per-rank return values in rank order.  Any rank raising
        propagates; a deadlock (event loop drained with ranks still
        blocked) raises :class:`~repro.sim.core.SimulationError`.
        """
        target_ranks = list(ranks) if ranks is not None else list(range(self.n_ranks))
        procs = {}
        for rank in target_ranks:
            ctx = self.contexts[rank]
            procs[rank] = self.sim.spawn(
                program(ctx, *args), name=f"rank-{rank}"
            )
        self._rank_procs = procs
        # Stop when every rank program has finished — daemon processes
        # (NIC engines, serializer workers, progress pollers) never
        # terminate, so draining the heap is not a useful stop condition.
        pending = set(procs.values())
        for proc in procs.values():
            proc.add_callback(pending.discard)
        self.sim.run_while_pending(pending, limit)
        if self.fabric._pending_trains:
            # Lazily-applied op-trains whose arrival has passed but which
            # no later packet forced: drain them so post-run memory reads
            # observe the final state (exactly what the per-packet path
            # leaves behind).
            self.fabric.materialize_all_trains()
        results = []
        blocked = []
        for rank in target_ranks:
            proc = procs[rank]
            if not proc.triggered:
                blocked.append(rank)
            elif not proc.ok and not isinstance(proc.exception, ProcessKilled):
                raise proc.exception  # type: ignore[misc]
        if blocked:
            raise SimulationError(
                f"ranks {blocked} never completed "
                f"({'time limit reached' if limit is not None else 'deadlock'})"
            )
        for rank in target_ranks:
            proc = procs[rank]
            # A fault-killed rank reports None (it has no return value).
            results.append(proc.value if proc.ok else None)
        return results

    @property
    def now(self) -> float:
        """Current simulated time (µs)."""
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<World {self.n_ranks} ranks on {self.machine.name} over "
            f"{self.network.name}>"
        )
