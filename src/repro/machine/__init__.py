"""Simulated machine model.

Models the architectural diversity of the paper's §III-B:

- :class:`~repro.machine.address_space.AddressSpace` — one per rank;
  allocations are NumPy byte buffers with per-node pointer width and
  endianness (hybrid systems, §III-B3).
- cache models (:mod:`repro.machine.cache`) — fully coherent
  (Cray XT-like), non-coherent write-through scalar cache (NEC SX-like,
  §III-B2, where remote writes leave stale cached lines until a fence),
  and uncached.
- :class:`~repro.machine.config.MachineConfig` plus presets:
  :func:`~repro.machine.config.cray_xt5_catamount`,
  :func:`~repro.machine.config.cray_xt5_cnl`,
  :func:`~repro.machine.config.nec_sx9`,
  :func:`~repro.machine.config.hybrid_accelerator`,
  :func:`~repro.machine.config.generic_cluster`.
"""

from repro.machine.address_space import AddressSpace, Allocation, MemoryError_
from repro.machine.cache import (
    CacheModel,
    CoherentCache,
    NoCache,
    WriteThroughNonCoherentCache,
)
from repro.machine.config import (
    MachineConfig,
    MachineTimings,
    NodeConfig,
    cray_x1e,
    cray_xt5_catamount,
    cray_xt5_cnl,
    generic_cluster,
    hybrid_accelerator,
    nec_sx9,
)
from repro.machine.node import Node, RankMemory, build_nodes
from repro.machine.placement import PLACEMENTS, placement_map

__all__ = [
    "PLACEMENTS",
    "AddressSpace",
    "Allocation",
    "CacheModel",
    "CoherentCache",
    "MachineConfig",
    "MachineTimings",
    "MemoryError_",
    "NoCache",
    "Node",
    "NodeConfig",
    "RankMemory",
    "WriteThroughNonCoherentCache",
    "build_nodes",
    "cray_x1e",
    "cray_xt5_catamount",
    "cray_xt5_cnl",
    "generic_cluster",
    "hybrid_accelerator",
    "nec_sx9",
    "placement_map",
]
