"""Per-rank address spaces.

Each simulated MPI process owns an :class:`AddressSpace`: a set of
allocations, each a NumPy ``uint8`` buffer.  The space records the node's
pointer width and endianness so that RMA descriptors
(:class:`repro.rma.target_mem.TargetMem`) can carry them across the
machine — the paper's §III-B3 point that the target's address-space
properties may differ from the origin's.

Raw ``read``/``write`` here touch *memory* directly; cached access goes
through the node's :class:`~repro.machine.cache.CacheModel` (see
:class:`~repro.machine.node.RankMemory`), which is how the NEC-SX-style
staleness is made observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["AddressSpace", "Allocation", "MemoryError_"]


class MemoryError_(RuntimeError):
    """Bad allocation handle or out-of-bounds access.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


@dataclass(frozen=True)
class Allocation:
    """Handle to one allocation in some rank's address space."""

    rank: int
    alloc_id: int
    size: int


class AddressSpace:
    """All memory owned by one rank.

    Parameters
    ----------
    rank:
        Owning rank (recorded into handles for error messages and for
        routing RMA descriptors).
    pointer_bits:
        32 or 64; allocation sizes are bounded by the address width.
    endianness:
        ``"little"`` or ``"big"``; multi-byte values in this space are
        stored in this byte order.
    """

    def __init__(
        self, rank: int, pointer_bits: int = 64, endianness: str = "little"
    ) -> None:
        if pointer_bits not in (32, 64):
            raise ValueError(f"pointer_bits must be 32 or 64, got {pointer_bits}")
        if endianness not in ("little", "big"):
            raise ValueError(f"endianness must be 'little' or 'big'")
        self.rank = rank
        self.pointer_bits = pointer_bits
        self.endianness = endianness
        self._allocations: Dict[int, np.ndarray] = {}
        self._next_id = 1
        self._bytes_allocated = 0

    # ------------------------------------------------------------------
    @property
    def np_byteorder(self) -> str:
        """NumPy byte-order character for this space ('<' or '>')."""
        return "<" if self.endianness == "little" else ">"

    @property
    def bytes_allocated(self) -> int:
        """Total live allocation size."""
        return self._bytes_allocated

    def alloc(self, nbytes: int, fill: int = 0) -> Allocation:
        """Allocate ``nbytes``; returns a handle."""
        if nbytes < 0:
            raise MemoryError_(f"negative allocation size: {nbytes}")
        if nbytes >= 2 ** self.pointer_bits:
            raise MemoryError_(
                f"{nbytes} bytes exceeds a {self.pointer_bits}-bit address space"
            )
        alloc_id = self._next_id
        self._next_id += 1
        self._allocations[alloc_id] = np.full(nbytes, fill, dtype=np.uint8)
        self._bytes_allocated += nbytes
        return Allocation(rank=self.rank, alloc_id=alloc_id, size=nbytes)

    def free(self, alloc: Allocation) -> None:
        """Release an allocation; later access through it is an error."""
        buf = self._allocations.pop(alloc.alloc_id, None)
        if buf is None:
            raise MemoryError_(
                f"rank {self.rank}: free of unknown allocation {alloc.alloc_id}"
            )
        self._bytes_allocated -= buf.size

    def buffer(self, alloc: Allocation) -> np.ndarray:
        """The raw ``uint8`` buffer behind a handle (a live view)."""
        buf = self._allocations.get(alloc.alloc_id)
        if buf is None:
            raise MemoryError_(
                f"rank {self.rank}: access to unknown/freed allocation "
                f"{alloc.alloc_id}"
            )
        return buf

    def _check(self, buf: np.ndarray, offset: int, n: int) -> None:
        if offset < 0 or n < 0 or offset + n > buf.size:
            raise MemoryError_(
                f"rank {self.rank}: access [{offset}, {offset + n}) outside "
                f"allocation of {buf.size} bytes"
            )

    def read(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        """Copy ``n`` bytes out of memory (bypasses any cache model)."""
        buf = self.buffer(alloc)
        self._check(buf, offset, n)
        return buf[offset : offset + n].copy()

    def write(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        """Store bytes into memory (bypasses any cache model)."""
        buf = self.buffer(alloc)
        data = np.asarray(data, dtype=np.uint8)
        self._check(buf, offset, data.size)
        buf[offset : offset + data.size] = data

    # -- typed convenience accessors -----------------------------------
    def view(
        self, alloc: Allocation, dtype: str, offset: int = 0, count: Optional[int] = None
    ) -> np.ndarray:
        """A typed view in this space's byte order (live, zero-copy).

        ``dtype`` is a NumPy scalar type name like ``"int32"``.
        """
        buf = self.buffer(alloc)
        np_dt = np.dtype(dtype).newbyteorder(self.np_byteorder)
        avail = (buf.size - offset) // np_dt.itemsize
        if count is None:
            count = avail
        if count > avail or offset < 0:
            raise MemoryError_(
                f"typed view of {count} x {dtype} at {offset} does not fit"
            )
        return buf[offset : offset + count * np_dt.itemsize].view(np_dt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AddressSpace rank={self.rank} {self.pointer_bits}-bit "
            f"{self.endianness}-endian allocs={len(self._allocations)}>"
        )
