"""Cache models.

The paper's §III-B2 hinges on one architectural fact: on machines like
the NEC SX, the scalar unit reads through a **non-coherent write-through
cache**, so data deposited in memory by a remote put stays invisible to
the target until the target executes a cache/memory fence (or the RMA
runtime does it on the target's behalf).

We model exactly that observable behaviour:

- :class:`CoherentCache` — remote writes invalidate; local reads are
  always fresh (Cray XT-like; also the X1E intra-node case).
- :class:`WriteThroughNonCoherentCache` — local reads come from cached
  line snapshots; local writes update both cache and memory; remote
  writes update memory only, leaving stale lines until :meth:`fence`.
- :class:`NoCache` — vector-unit style direct memory access.

All models operate on (alloc_id, line_index) granularity with a
configurable line size.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.machine.address_space import AddressSpace, Allocation

__all__ = [
    "CacheModel",
    "CoherentCache",
    "NoCache",
    "WriteThroughNonCoherentCache",
]


class CacheModel:
    """Interface between a rank's loads/stores and its memory.

    Subclasses decide whether reads may observe stale data and what
    remote (RMA) writes do to cached state.  Counters are kept for the
    benches (hit/miss/stale statistics).
    """

    #: Whether this model keeps caches coherent with remote writes.
    coherent: bool = True

    def __init__(self, space: AddressSpace, line_size: int = 64) -> None:
        if line_size < 1:
            raise ValueError("line_size must be >= 1")
        self.space = space
        self.line_size = line_size
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- the three access paths ----------------------------------------
    def load(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        """A local CPU read of ``n`` bytes."""
        raise NotImplementedError

    def store(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        """A local CPU write."""
        raise NotImplementedError

    def remote_write(
        self, alloc: Allocation, offset: int, data: np.ndarray
    ) -> None:
        """Data deposited by the NIC/RMA engine directly into memory."""
        raise NotImplementedError

    def fence(self) -> None:
        """Memory fence: discard anything that could be stale."""
        raise NotImplementedError

    def invalidate_range(self, alloc: Allocation, offset: int, n: int) -> None:
        """Targeted invalidation (used by RMA notify protocols)."""
        raise NotImplementedError


class CoherentCache(CacheModel):
    """Fully coherent: loads always observe memory; remote writes are
    immediately visible.  Hit/miss counters still model a line cache for
    statistics."""

    coherent = True

    def __init__(self, space: AddressSpace, line_size: int = 64) -> None:
        super().__init__(space, line_size)
        self._present: set = set()

    def _touch(self, alloc: Allocation, offset: int, n: int) -> None:
        first = offset // self.line_size
        last = (offset + max(n, 1) - 1) // self.line_size
        for line in range(first, last + 1):
            key = (alloc.alloc_id, line)
            if key in self._present:
                self.hits += 1
            else:
                self.misses += 1
                self._present.add(key)

    def load(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        self._touch(alloc, offset, n)
        return self.space.read(alloc, offset, n)

    def store(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self._touch(alloc, offset, data.size)
        self.space.write(alloc, offset, data)

    def remote_write(
        self, alloc: Allocation, offset: int, data: np.ndarray
    ) -> None:
        # Coherence protocol invalidates the lines the NIC writes.
        data = np.asarray(data, dtype=np.uint8)
        self.invalidate_range(alloc, offset, data.size)
        self.space.write(alloc, offset, data)

    def fence(self) -> None:
        # Nothing can be stale; fence only drops statistics state.
        self._present.clear()

    def invalidate_range(self, alloc: Allocation, offset: int, n: int) -> None:
        first = offset // self.line_size
        last = (offset + max(n, 1) - 1) // self.line_size
        for line in range(first, last + 1):
            if (alloc.alloc_id, line) in self._present:
                self._present.discard((alloc.alloc_id, line))
                self.invalidations += 1


class WriteThroughNonCoherentCache(CacheModel):
    """NEC-SX-style scalar cache.

    Lines are snapshots of memory taken at miss time.  Local stores
    write through (cache + memory).  Remote writes update memory only —
    subsequent local loads of a cached line return the **stale**
    snapshot until :meth:`fence` or a targeted invalidation runs.
    """

    coherent = False

    def __init__(self, space: AddressSpace, line_size: int = 64) -> None:
        super().__init__(space, line_size)
        self._lines: Dict[Tuple[int, int], np.ndarray] = {}

    def _line_bounds(self, buf_size: int, line: int) -> Tuple[int, int]:
        start = line * self.line_size
        return start, min(start + self.line_size, buf_size)

    def load(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        buf = self.space.buffer(alloc)
        out = np.empty(n, dtype=np.uint8)
        first = offset // self.line_size
        last = (offset + max(n, 1) - 1) // self.line_size
        for line in range(first, last + 1):
            key = (alloc.alloc_id, line)
            lstart, lend = self._line_bounds(buf.size, line)
            snapshot = self._lines.get(key)
            if snapshot is None:
                self.misses += 1
                snapshot = buf[lstart:lend].copy()
                self._lines[key] = snapshot
            else:
                self.hits += 1
            # Copy the overlap of [offset, offset+n) with this line.
            a = max(offset, lstart)
            b = min(offset + n, lend)
            if b > a:
                out[a - offset : b - offset] = snapshot[a - lstart : b - lstart]
        return out

    def store(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self.space.write(alloc, offset, data)
        buf = self.space.buffer(alloc)
        n = data.size
        first = offset // self.line_size
        last = (offset + max(n, 1) - 1) // self.line_size
        for line in range(first, last + 1):
            key = (alloc.alloc_id, line)
            if key in self._lines:
                # Write-through: refresh the cached snapshot from memory.
                lstart, lend = self._line_bounds(buf.size, line)
                self._lines[key] = buf[lstart:lend].copy()

    def remote_write(
        self, alloc: Allocation, offset: int, data: np.ndarray
    ) -> None:
        # The NIC DMAs into memory; the scalar cache is not snooped.
        self.space.write(alloc, offset, np.asarray(data, dtype=np.uint8))

    def fence(self) -> None:
        self.invalidations += len(self._lines)
        self._lines.clear()

    def invalidate_range(self, alloc: Allocation, offset: int, n: int) -> None:
        first = offset // self.line_size
        last = (offset + max(n, 1) - 1) // self.line_size
        for line in range(first, last + 1):
            if self._lines.pop((alloc.alloc_id, line), None) is not None:
                self.invalidations += 1


class NoCache(CacheModel):
    """Direct memory access (vector unit path on the SX; also useful as
    a null model in unit tests)."""

    coherent = True

    def load(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        self.misses += 1
        return self.space.read(alloc, offset, n)

    def store(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        self.space.write(alloc, offset, data)

    def remote_write(
        self, alloc: Allocation, offset: int, data: np.ndarray
    ) -> None:
        self.space.write(alloc, offset, np.asarray(data, dtype=np.uint8))

    def fence(self) -> None:
        pass

    def invalidate_range(self, alloc: Allocation, offset: int, n: int) -> None:
        pass
