"""Nodes and per-rank memory stacks.

A :class:`Node` groups the ranks placed on one physical node and carries
the node's :class:`~repro.machine.config.NodeConfig`.  Each rank gets a
:class:`RankMemory`: the address space plus the cache model through which
that rank's *CPU* accesses go.  The NIC writes through
:meth:`RankMemory.nic_write`, which is what makes coherent and
non-coherent nodes observably different.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.machine.address_space import AddressSpace, Allocation
from repro.machine.cache import CacheModel
from repro.machine.config import MachineConfig, NodeConfig

__all__ = ["Node", "RankMemory", "build_nodes"]


class RankMemory:
    """One rank's memory stack: address space + CPU-side cache model."""

    def __init__(self, rank: int, node_cfg: NodeConfig) -> None:
        self.rank = rank
        self.node_cfg = node_cfg
        self.space = AddressSpace(
            rank,
            pointer_bits=node_cfg.pointer_bits,
            endianness=node_cfg.endianness,
        )
        self.cache: CacheModel = node_cfg.make_cache(self.space)

    # -- CPU paths -------------------------------------------------------
    def load(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        """CPU read through the cache (may be stale on non-coherent nodes)."""
        return self.cache.load(alloc, offset, n)

    def store(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        """CPU write through the cache."""
        self.cache.store(alloc, offset, data)

    def fence(self) -> None:
        """Memory fence: after this, loads observe all remote writes."""
        self.cache.fence()

    # -- NIC path --------------------------------------------------------
    def nic_write(self, alloc: Allocation, offset: int, data: np.ndarray) -> None:
        """Remote data deposited by the NIC (DMA, not snooped on
        non-coherent nodes)."""
        self.cache.remote_write(alloc, offset, data)

    def nic_read(self, alloc: Allocation, offset: int, n: int) -> np.ndarray:
        """The NIC reads memory directly (gets for remote ranks)."""
        return self.space.read(alloc, offset, n)

    @property
    def coherent(self) -> bool:
        """Whether this rank's CPU cache is coherent with NIC writes."""
        return self.cache.coherent


class Node:
    """A physical node hosting one or more ranks."""

    def __init__(self, node_id: int, cfg: NodeConfig, ranks: List[int]) -> None:
        self.node_id = node_id
        self.cfg = cfg
        self.ranks = list(ranks)
        self.memories: Dict[int, RankMemory] = {
            r: RankMemory(r, cfg) for r in ranks
        }

    def memory(self, rank: int) -> RankMemory:
        """The memory stack of a rank hosted here."""
        try:
            return self.memories[rank]
        except KeyError:
            raise ValueError(
                f"rank {rank} is not hosted on node {self.node_id}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} ranks={self.ranks}>"


def build_nodes(config: MachineConfig) -> List[Node]:
    """Instantiate every node and rank memory for a machine config."""
    nodes = []
    for node_id in range(config.n_nodes):
        ranks = config.ranks_on_node(node_id)
        nodes.append(Node(node_id, config.node_config(node_id), ranks))
    return nodes
