"""Machine configuration and named presets.

A :class:`MachineConfig` describes the hardware a simulated job runs on:
how many nodes, which ranks live where, each node's memory-system
personality (coherence, endianness, pointer width), whether the OS allows
extra communication threads (Catamount famously does not — paper
§III-B1), and the CPU-side cost model (:class:`MachineTimings`).

Presets correspond to the systems the paper discusses:

===============================  =========================================
preset                           paper reference
===============================  =========================================
:func:`cray_xt5_catamount`       §III-B1/§V-A — coherent, **no threads**,
                                 Portals, so atomicity needs a coarse lock
:func:`cray_xt5_cnl`             §III-B1 — Compute Node Linux allows a
                                 communication thread
:func:`cray_x1e`                 §III-B1 — coherent within a node, remote
                                 accesses uncached
:func:`nec_sx9`                  §III-B2 — non-coherent scalar caches,
                                 fence required for visibility
:func:`hybrid_accelerator`       §III-B3 — mixed endianness/pointer width
:func:`generic_cluster`          neutral default
===============================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.machine.address_space import AddressSpace
from repro.machine.cache import (
    CacheModel,
    CoherentCache,
    NoCache,
    WriteThroughNonCoherentCache,
)
from repro.machine.placement import PLACEMENTS, placement_map

__all__ = [
    "MachineTimings",
    "NodeConfig",
    "MachineConfig",
    "cray_xt5_catamount",
    "cray_xt5_cnl",
    "cray_x1e",
    "nec_sx9",
    "hybrid_accelerator",
    "generic_cluster",
]


@dataclass(frozen=True)
class MachineTimings:
    """CPU-side cost model.  All times in microseconds.

    Attributes
    ----------
    call_overhead:
        Software overhead of entering a communication call.
    mem_copy_per_byte:
        Local memory copy cost (pack/unpack of noncontiguous data).
    cache_fence:
        Cost of a full cache/memory fence (large on the SX).
    am_handler:
        Fixed cost for an active-message handler activation on the
        communication thread (the thread-serializer per-message cost).
    lock_op:
        CPU cost of a local lock/unlock operation (excludes network
        round trips, which the fabric charges separately).
    accumulate_per_byte:
        Arithmetic cost of applying a reduction op at the target.
    mem_register_base / mem_register_per_page:
        Cost of registering memory with the NIC when exposing it for
        RMA (the paper's §V note that "the network interconnect may
        require the memory to be registered").  Charged by the
        collective exposure/window/segment creation paths; pages are
        4 KiB.
    """

    call_overhead: float = 0.2
    mem_copy_per_byte: float = 0.0005
    cache_fence: float = 1.5
    am_handler: float = 0.5
    lock_op: float = 0.1
    accumulate_per_byte: float = 0.001
    mem_register_base: float = 1.0
    mem_register_per_page: float = 0.05


@dataclass(frozen=True)
class NodeConfig:
    """Per-node memory-system personality."""

    coherent: bool = True
    endianness: str = "little"
    pointer_bits: int = 64
    cache_line: int = 64
    #: Factory building this node's cache model for a given space.
    cache_factory: Optional[Callable[[AddressSpace, int], CacheModel]] = None

    def make_cache(self, space: AddressSpace) -> CacheModel:
        """Instantiate the cache model for one rank's address space."""
        if self.cache_factory is not None:
            return self.cache_factory(space, self.cache_line)
        if self.coherent:
            return CoherentCache(space, self.cache_line)
        return WriteThroughNonCoherentCache(space, self.cache_line)


@dataclass(frozen=True)
class MachineConfig:
    """The whole machine.

    ``nodes`` may be shorter than the node count implied by
    ``n_nodes``; the last entry is replicated (convenient for
    homogeneous machines described by one :class:`NodeConfig`).

    ``placement`` picks the rank-to-node strategy (see
    :mod:`repro.machine.placement`): ``"block"`` (the default, rank
    ``r`` on node ``r // ranks_per_node``), ``"round_robin"``, or
    ``"random"`` (seeded by ``placement_seed``).
    """

    name: str = "generic"
    n_nodes: int = 8
    ranks_per_node: int = 1
    threads_allowed: bool = True
    nodes: List[NodeConfig] = field(default_factory=lambda: [NodeConfig()])
    timings: MachineTimings = field(default_factory=MachineTimings)
    placement: str = "block"
    placement_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if not self.nodes:
            raise ValueError("at least one NodeConfig is required")
        if len(self.nodes) > self.n_nodes:
            # A short list replicates its last entry, but a *longer* one
            # means the caller described nodes that do not exist — almost
            # certainly a mismatched n_nodes, so refuse instead of
            # silently ignoring the tail.
            raise ValueError(
                f"{len(self.nodes)} NodeConfig entries for a machine with "
                f"only {self.n_nodes} node(s); drop the extras or raise "
                "n_nodes")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}: "
                f"expected one of {PLACEMENTS}")
        # Cache the rank->node map (frozen dataclass: set via object).
        rank_node = placement_map(self.placement, self.n_nodes,
                                  self.ranks_per_node, self.placement_seed)
        if len(rank_node) != self.n_nodes * self.ranks_per_node:
            raise ValueError(
                f"placement map covers {len(rank_node)} rank(s) but the "
                f"machine hosts {self.n_nodes} node(s) x "
                f"{self.ranks_per_node} rank(s)/node = "
                f"{self.n_nodes * self.ranks_per_node}")
        bad = [n for n in rank_node if not 0 <= n < self.n_nodes]
        if bad:
            raise ValueError(
                f"placement map names node(s) {sorted(set(bad))} outside "
                f"0..{self.n_nodes - 1}")
        object.__setattr__(self, "_rank_node", rank_node)

    @property
    def n_ranks(self) -> int:
        """Total ranks the machine hosts."""
        return self.n_nodes * self.ranks_per_node

    def node_config(self, node_id: int) -> NodeConfig:
        """The :class:`NodeConfig` for ``node_id`` (last entry replicates)."""
        if node_id < 0 or node_id >= self.n_nodes:
            raise ValueError(f"node {node_id} out of range 0..{self.n_nodes - 1}")
        if node_id < len(self.nodes):
            return self.nodes[node_id]
        return self.nodes[-1]

    def node_of_rank(self, rank: int) -> int:
        """The node hosting ``rank`` under this machine's placement."""
        if rank < 0 or rank >= self.n_ranks:
            raise ValueError(f"rank {rank} out of range 0..{self.n_ranks - 1}")
        return self._rank_node[rank]  # type: ignore[attr-defined]

    def ranks_on_node(self, node_id: int) -> List[int]:
        """The ranks hosted on ``node_id`` (ascending)."""
        if node_id < 0 or node_id >= self.n_nodes:
            raise ValueError(f"node {node_id} out of range 0..{self.n_nodes - 1}")
        rank_node = self._rank_node  # type: ignore[attr-defined]
        return [r for r in range(self.n_ranks) if rank_node[r] == node_id]

    def with_nodes(self, n_nodes: int) -> "MachineConfig":
        """Copy with a different node count."""
        return replace(self, n_nodes=n_nodes)

    def with_placement(self, strategy: str, seed: int = 0) -> "MachineConfig":
        """Copy with a different rank-to-node placement."""
        return replace(self, placement=strategy, placement_seed=seed)


# ---------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------

def cray_xt5_catamount(n_nodes: int = 8) -> MachineConfig:
    """Cray XT5 under the Catamount lightweight kernel.

    Coherent caches, but user processes **cannot spawn threads** and
    Portals has no active messages, so the atomicity attribute must fall
    back to a coarse-grain process-level lock (paper §III-B1, §V-A).
    """
    return MachineConfig(
        name="cray-xt5-catamount",
        n_nodes=n_nodes,
        threads_allowed=False,
        nodes=[NodeConfig(coherent=True)],
    )


def cray_xt5_cnl(n_nodes: int = 8) -> MachineConfig:
    """Cray XT5 under Compute Node Linux: a communication thread is
    available, enabling the thread serializer."""
    return MachineConfig(
        name="cray-xt5-cnl",
        n_nodes=n_nodes,
        threads_allowed=True,
        nodes=[NodeConfig(coherent=True)],
    )


def cray_x1e(n_nodes: int = 8) -> MachineConfig:
    """Cray X1E: coherent within a node; remote accesses uncached.

    From the RMA implementation's point of view this behaves like a
    coherent machine (paper §III-B1), which is how we model it.
    """
    return MachineConfig(
        name="cray-x1e",
        n_nodes=n_nodes,
        threads_allowed=True,
        nodes=[NodeConfig(coherent=True, cache_line=32)],
    )


def nec_sx9(n_nodes: int = 4, ranks_per_node: int = 2) -> MachineConfig:
    """NEC SX-9: non-coherent write-through scalar caches; a memory
    fence is needed before RMA-deposited data becomes visible
    (paper §III-B2).  Fences on the SX are comparatively expensive."""
    return MachineConfig(
        name="nec-sx9",
        n_nodes=n_nodes,
        ranks_per_node=ranks_per_node,
        threads_allowed=True,
        nodes=[NodeConfig(coherent=False, cache_line=128)],
        timings=MachineTimings(cache_fence=6.0),
    )


def hybrid_accelerator(n_host_nodes: int = 4, n_accel_nodes: int = 4) -> MachineConfig:
    """Roadrunner-flavoured hybrid: big-endian 64-bit hosts plus
    little-endian 32-bit accelerator nodes seen as MPI tasks
    (paper §III-B3)."""
    hosts = [
        NodeConfig(coherent=True, endianness="big", pointer_bits=64)
    ] * n_host_nodes
    accels = [
        NodeConfig(coherent=True, endianness="little", pointer_bits=32)
    ] * n_accel_nodes
    return MachineConfig(
        name="hybrid-accelerator",
        n_nodes=n_host_nodes + n_accel_nodes,
        threads_allowed=True,
        nodes=hosts + accels,
    )


def generic_cluster(n_nodes: int = 8, ranks_per_node: int = 1) -> MachineConfig:
    """A neutral coherent little-endian cluster."""
    return MachineConfig(
        name="generic-cluster",
        n_nodes=n_nodes,
        ranks_per_node=ranks_per_node,
    )
