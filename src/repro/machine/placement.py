"""Rank-to-node placement strategies.

Where ranks land on the machine decides which traffic stays inside a
node (the shared-memory path) and which crosses the interconnect — and,
on a routed topology, *how far* it travels.  A halo exchange placed
block-wise on a torus talks to neighbours one hop away; the same
exchange under a random placement scatters neighbours across the
machine and pays multi-hop routes through contended links (see
``examples/torus_placement.py``).

Strategies
----------
``block``
    Ranks fill node 0, then node 1, … (``rank // ranks_per_node``).
    This is the historical default and what MPI launchers usually do.
``round_robin``
    Rank ``r`` lands on node ``r % n_nodes`` (cyclic distribution).
``random``
    A seeded permutation of the block layout: node occupancy stays
    exactly ``ranks_per_node`` everywhere, only *which* ranks share a
    node is shuffled.  Deterministic for a given ``seed``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["PLACEMENTS", "placement_map"]

#: Recognised placement strategy names.
PLACEMENTS: Tuple[str, ...] = ("block", "round_robin", "random")


def placement_map(strategy: str, n_nodes: int, ranks_per_node: int,
                  seed: int = 0) -> Tuple[int, ...]:
    """The node of each rank, as a tuple indexed by rank.

    Every strategy is load-balanced: exactly ``ranks_per_node`` ranks
    land on each node.  ``seed`` only matters for ``random``.
    """
    if n_nodes < 1 or ranks_per_node < 1:
        raise ValueError("n_nodes and ranks_per_node must be >= 1")
    n_ranks = n_nodes * ranks_per_node
    if strategy == "block":
        return tuple(r // ranks_per_node for r in range(n_ranks))
    if strategy == "round_robin":
        return tuple(r % n_nodes for r in range(n_ranks))
    if strategy == "random":
        block = np.repeat(np.arange(n_nodes), ranks_per_node)
        rng = np.random.default_rng(seed)
        return tuple(int(x) for x in rng.permutation(block))
    raise ValueError(
        f"unknown placement {strategy!r}: expected one of {PLACEMENTS}")
