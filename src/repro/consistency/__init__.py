"""Consistency-model machinery (paper §II-B, §III-A).

The paper's taxonomy of memory-consistency requirements drives the
attribute design; this package makes those models *checkable* against
execution histories:

- :func:`~repro.consistency.checkers.check_read_your_writes` — the
  paper's *ordering property* (a single source observes its own writes);
- :func:`~repro.consistency.checkers.check_causal` — causal consistency
  (Hutto & Ahamad, the paper's [18]);
- :func:`~repro.consistency.checkers.check_sequential` — Lamport
  sequential consistency (the paper's [19]) via serialization search;
- :class:`~repro.consistency.location.LocationPomset` — Gao & Sarkar
  location consistency (the paper's [20]): per-location partially
  ordered multisets of writes with synchronization edges.

Histories can be built by hand (:class:`~repro.consistency.history.History`)
or extracted from a traced simulation run
(:func:`~repro.consistency.history.history_from_tracer`).
"""

from repro.consistency.checkers import (
    Skipped,
    Violation,
    check_causal,
    check_read_your_writes,
    check_sequential,
)
from repro.consistency.history import History, MemOp, history_from_tracer
from repro.consistency.location import LocationPomset

__all__ = [
    "History",
    "LocationPomset",
    "MemOp",
    "Skipped",
    "Violation",
    "check_causal",
    "check_read_your_writes",
    "check_sequential",
    "history_from_tracer",
]
