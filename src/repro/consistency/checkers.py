"""Consistency checkers over histories.

Each checker returns a (possibly empty) list of :class:`Violation`; an
empty list means the history is admissible under that model.  The models
form the paper's §III-A ladder:

read/write ("ordering")  <  causal  <  sequential

so a history admissible under a stronger model is admissible under the
weaker ones (property-tested in the suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.consistency.history import History, MemOp

__all__ = [
    "Violation",
    "Skipped",
    "check_read_your_writes",
    "check_causal",
    "check_sequential",
]


@dataclass(frozen=True)
class Violation:
    """One detected consistency violation."""

    model: str
    message: str
    ops: Tuple[MemOp, ...]

    def __str__(self) -> str:
        return f"[{self.model}] {self.message}"


@dataclass(frozen=True)
class Skipped:
    """Explicit "this check did not run" marker.

    :func:`check_sequential` returns it for histories larger than its
    backtracking cap.  It is falsy and iterates like an empty violation
    list, so ``if check_sequential(h):`` and ``for v in ...`` keep
    working — but callers that care (e.g. ``repro.check``) can
    distinguish *verified clean* from *not verified* instead of
    treating an oversized history as vacuously passing.
    """

    model: str
    reason: str

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def __str__(self) -> str:
        return f"[{self.model}] skipped: {self.reason}"


# ----------------------------------------------------------------------
# Read-your-writes — the paper's "ordering property"
# ----------------------------------------------------------------------
def check_read_your_writes(history: History) -> List[Violation]:
    """A read must see the process's own latest prior write to that
    location, *provided no other process wrote the location* (the
    paper's single-source guarantee)."""
    violations = []
    for loc in history.locations():
        writers = {w.process for w in history.writes_to(loc)}
        for proc in history.processes():
            if writers - {proc}:
                continue  # other sources altered it: guarantee waived
            last_write: Optional[MemOp] = None
            for op in history.by_process(proc):
                if op.location != loc:
                    continue
                if op.kind == "write":
                    last_write = op
                elif last_write is not None and op.value != last_write.value:
                    violations.append(
                        Violation(
                            "read-your-writes",
                            f"process {proc} wrote {last_write.value!r} to "
                            f"{loc!r} but later read {op.value!r}",
                            (last_write, op),
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# Causal consistency (Hutto & Ahamad)
# ----------------------------------------------------------------------
def _causal_graph(history: History) -> Tuple[nx.DiGraph, Dict[int, MemOp]]:
    """Program-order + reads-from edges, transitively closed."""
    g = nx.DiGraph()
    by_id = {op.op_id: op for op in history.ops}
    g.add_nodes_from(by_id)
    for proc in history.processes():
        ops = history.by_process(proc)
        for a, b in zip(ops, ops[1:]):
            g.add_edge(a.op_id, b.op_id)
    for op in history.ops:
        if op.kind == "read":
            w = history.writer_of(op)
            if w is not None:
                g.add_edge(w.op_id, op.op_id)
    return g, by_id


def check_causal(history: History) -> List[Violation]:
    """No read may return a write that is causally overwritten: if
    ``w -> w' -> r`` causally, with ``w``/``w'`` to the read's location,
    then ``r`` must not return ``w``."""
    g, by_id = _causal_graph(history)
    closure = nx.transitive_closure(g)
    violations = []
    for op in history.ops:
        if op.kind != "read":
            continue
        w = history.writer_of(op)
        if w is None:
            # Read of the initial value: the initial (virtual) write
            # causally precedes everything, so any write to this
            # location that causally precedes the read overwrites it.
            for other in history.writes_to(op.location):
                if closure.has_edge(other.op_id, op.op_id):
                    violations.append(
                        Violation(
                            "causal",
                            f"read by {op.process} of {op.location!r} "
                            f"returned the initial value, but the write of "
                            f"{other.value!r} causally precedes it",
                            (other, op),
                        )
                    )
                    break
            continue
        for other in history.writes_to(op.location):
            if other.op_id == w.op_id:
                continue
            if (
                closure.has_edge(w.op_id, other.op_id)
                and closure.has_edge(other.op_id, op.op_id)
            ):
                violations.append(
                    Violation(
                        "causal",
                        f"read by {op.process} of {op.location!r} returned "
                        f"{w.value!r}, but write of {other.value!r} is "
                        "causally between them",
                        (w, other, op),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Sequential consistency (Lamport)
# ----------------------------------------------------------------------
def check_sequential(
    history: History, max_ops: int = 14
) -> "List[Violation] | Skipped":
    """Search for a legal serialization: one total order of all ops
    respecting program order in which every read returns the latest
    preceding write (or the initial value ``None``-style: here, a read
    with no matching write must come before any write to its location).

    Backtracking search — exponential in the worst case, so histories
    larger than ``max_ops`` return an explicit (falsy, empty-iterable)
    :class:`Skipped` marker instead of running: the caller learns the
    history was *not verified* rather than mistaking the cap for a
    clean pass.
    """
    ops = history.ops
    if len(ops) > max_ops:
        return Skipped(
            "sequential",
            f"history has {len(ops)} ops; the backtracking search is "
            f"capped at {max_ops}",
        )

    per_proc = {p: history.by_process(p) for p in history.processes()}
    # precompute reads-from for legality checking
    rf = {}
    for op in ops:
        if op.kind == "read":
            w = history.writer_of(op)
            rf[op.op_id] = w.op_id if w is not None else None

    state_last: Dict[Hashable, Optional[int]] = {}

    def backtrack(positions: Dict[int, int], last_write: Dict) -> bool:
        if all(positions[p] == len(per_proc[p]) for p in per_proc):
            return True
        for p in per_proc:
            i = positions[p]
            if i >= len(per_proc[p]):
                continue
            op = per_proc[p][i]
            if op.kind == "write":
                prev = last_write.get(op.location)
                last_write[op.location] = op.op_id
                positions[p] = i + 1
                if backtrack(positions, last_write):
                    return True
                positions[p] = i
                last_write[op.location] = prev
            else:
                if last_write.get(op.location) == rf[op.op_id]:
                    positions[p] = i + 1
                    if backtrack(positions, last_write):
                        return True
                    positions[p] = i
        return False

    ok = backtrack({p: 0 for p in per_proc}, dict(state_last))
    if ok:
        return []
    return [
        Violation(
            "sequential",
            "no serialization of the history respects program order and "
            "reads-from",
            tuple(ops),
        )
    ]
