"""Location consistency (Gao & Sarkar — the paper's [20]).

LC drops the cache-coherence assumption: "the state of a memory location
is modeled as a partially ordered multiset of write and synchronization
operations".  A read may return the value of any write in the *frontier*
of the pomset visible to the reading processor — any write not dominated
by another visible write.

This is exactly the model of a non-cache-coherent machine like the NEC
SX (paper §III-B2): without synchronization, a processor may legally
observe a stale value, and the RMA "ordering" attribute narrows the
frontier back to a single write.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Set, Tuple

import networkx as nx

__all__ = ["LocationPomset"]


class LocationPomset:
    """The partially ordered multiset of writes to one location."""

    def __init__(self, location: Hashable = None, initial: Any = 0) -> None:
        self.location = location
        self.initial = initial
        self._g = nx.DiGraph()
        self._ids = itertools.count(1)
        self._last_by_proc: Dict[int, int] = {}
        self._values: Dict[int, Any] = {0: initial}
        self._g.add_node(0)  # the initial write
        self._sync_edges: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def write(self, process: int, value: Any) -> int:
        """Add a write by ``process``; ordered after that process's own
        previous operation on this location (program order).  Returns
        the write id."""
        wid = next(self._ids)
        self._values[wid] = value
        self._g.add_node(wid)
        self._g.add_edge(0, wid)
        prev = self._last_by_proc.get(process)
        if prev is not None:
            self._g.add_edge(prev, wid)
        self._last_by_proc[process] = wid
        return wid

    def synchronize(self, before_process: int, after_process: int) -> None:
        """A synchronization edge: everything ``before_process`` has done
        to this location becomes visible to ``after_process`` (release/
        acquire pairs, fences, or the RMA ordering attribute)."""
        before = self._last_by_proc.get(before_process)
        if before is None:
            return
        self._sync_edges.setdefault(after_process, []).append(before)

    def _visible_frontier(self, process: int) -> Set[int]:
        """Writes not dominated by another write that ``process`` is
        ordered after."""
        # The reader's knowledge: its own last op + any sync predecessors
        known: Set[int] = set()
        own = self._last_by_proc.get(process)
        if own is not None:
            known.add(own)
        for pred in self._sync_edges.get(process, []):
            known.add(pred)
        # A write w is ruled out if some w' in the pomset satisfies
        # w < w' and w' <= some known op (the reader provably saw w
        # superseded).
        all_writes = set(self._g.nodes)
        dominated: Set[int] = set()
        reach: Dict[int, Set[int]] = {
            n: nx.descendants(self._g, n) for n in all_writes
        }
        for w in all_writes:
            for w2 in reach[w]:
                # w < w2; is w2 <= something known?
                if any(
                    w2 == k or k in reach[w2] for k in known
                ):
                    dominated.add(w)
                    break
        return all_writes - dominated

    def legal_read_values(self, process: int) -> List[Any]:
        """Every value a read by ``process`` may legally return."""
        frontier = self._visible_frontier(process)
        # preserve deterministic ordering by write id
        return [self._values[w] for w in sorted(frontier)]

    def is_legal_read(self, process: int, value: Any) -> bool:
        """Whether ``value`` is an admissible result for a read."""
        return value in self.legal_read_values(process)

    def observe(self, process: int, write_id: int) -> None:
        """Record that ``process`` observed ``write_id`` (e.g. a read
        returned it): future reads by this process cannot go back past
        it."""
        self._sync_edges.setdefault(process, []).append(write_id)
