"""Execution histories of reads and writes.

A :class:`History` is the common input of every checker: a set of
:class:`MemOp` records, each a read or write by some process on some
location, ordered per process by *program order*.  Values are opaque
hashables; reads record the value they returned.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.trace import Tracer

__all__ = ["MemOp", "History", "history_from_tracer"]

_op_ids = itertools.count()


@dataclass(frozen=True)
class MemOp:
    """One read or write in a history.

    Attributes
    ----------
    process:
        Issuing process (origin rank).
    kind:
        ``"read"`` or ``"write"``.
    location:
        Opaque location key.
    value:
        Value written, or value the read returned.
    po_index:
        Program-order index within ``process`` (strictly increasing).
    time:
        Optional wall-clock annotation (application time); checkers
        never rely on it, but reports include it.
    op_id:
        Unique id, for stable references in violation reports.
    """

    process: int
    kind: str
    location: Hashable
    value: Any
    po_index: int
    time: Optional[float] = None
    op_id: int = field(default_factory=lambda: next(_op_ids))

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"kind must be read/write, got {self.kind!r}")


class History:
    """An append-only collection of :class:`MemOp`, with helpers."""

    def __init__(self) -> None:
        self._ops: List[MemOp] = []
        self._po_counters: Dict[int, int] = {}

    # -- construction ----------------------------------------------------
    def write(self, process: int, location: Hashable, value: Any,
              time: Optional[float] = None) -> MemOp:
        """Record a write in the next program-order slot of ``process``."""
        return self._add(process, "write", location, value, time)

    def read(self, process: int, location: Hashable, value: Any,
             time: Optional[float] = None) -> MemOp:
        """Record a read (and the value it returned)."""
        return self._add(process, "read", location, value, time)

    def _add(self, process, kind, location, value, time) -> MemOp:
        idx = self._po_counters.get(process, 0)
        self._po_counters[process] = idx + 1
        op = MemOp(process, kind, location, value, idx, time)
        self._ops.append(op)
        return op

    # -- views -------------------------------------------------------------
    @property
    def ops(self) -> List[MemOp]:
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def processes(self) -> List[int]:
        return sorted({op.process for op in self._ops})

    def locations(self) -> List[Hashable]:
        return sorted({op.location for op in self._ops}, key=repr)

    def by_process(self, process: int) -> List[MemOp]:
        """Ops of one process in program order."""
        return sorted(
            (op for op in self._ops if op.process == process),
            key=lambda o: o.po_index,
        )

    def writes_to(self, location: Hashable) -> List[MemOp]:
        return [o for o in self._ops if o.kind == "write"
                and o.location == location]

    def restrict(self, locations) -> "History":
        """A sub-history of the ops touching ``locations`` only.

        Per-process program order is preserved (ops are re-added in the
        original order, so ``po_index`` is re-compacted per process).
        Used by ``repro.check`` to carve the data-variable history out
        of a trace that also records accumulate operands and scratch
        traffic.
        """
        keep = set(locations)
        sub = History()
        for op in self._ops:
            if op.location in keep:
                sub._add(op.process, op.kind, op.location, op.value, op.time)
        return sub

    def writer_of(self, read: MemOp) -> Optional[MemOp]:
        """The write whose value the read returned (reads-from), if
        unambiguous.  ``None`` when the read returned an initial value
        or when no matching write exists; raises if several writes of
        the same value to the location exist (ambiguous histories should
        use distinct values per write)."""
        candidates = [
            w for w in self.writes_to(read.location) if w.value == read.value
        ]
        if not candidates:
            return None
        if len(candidates) > 1:
            raise ValueError(
                f"ambiguous reads-from for {read}: give writes unique values"
            )
        return candidates[0]


def history_from_tracer(
    tracer: Tracer, initial_value: Any = 0
) -> History:
    """Build a history from an RMA-engine trace.

    The engine records ``consistency.write`` / ``consistency.read``
    trace entries (category ``"consistency"``) for small transfers when
    tracing is enabled; this converts them.  Program order follows
    trace order per origin rank, which matches issue order because the
    engine traces at issue time.
    """
    hist = History()
    for rec in tracer.filter(category="consistency"):
        loc = rec.detail["location"]
        value = rec.detail["value"]
        if rec.kind == "write":
            hist.write(rec.rank, loc, value, time=rec.time)
        elif rec.kind == "read":
            hist.read(rec.rank, loc, value, time=rec.time)
    return hist
