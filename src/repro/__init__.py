"""repro — a simulation-based reproduction of
"Investigating High Performance RMA Interfaces for the MPI-3 Standard"
(Tipparaju, Gropp, Ritzdorf, Thakur, Träff — ICPP 2009).

The package provides, over a deterministic discrete-event simulation of
a parallel machine:

- the paper's **strawman MPI-3 RMA interface** (:mod:`repro.rma`):
  attribute-configurable put/get/accumulate/xfer, non-collective target
  memory, request completion, per-rank/ALL_RANKS/collective complete and
  order, RMW, and the RMI extension;
- every substrate it needs: event kernel (:mod:`repro.sim`), machine
  and cache models (:mod:`repro.machine`), NIC/fabric models
  (:mod:`repro.network`), MPI datatypes (:mod:`repro.datatypes`), a
  two-sided MPI runtime (:mod:`repro.mpi`);
- the baselines it is compared against: MPI-2 RMA
  (:mod:`repro.mpi2rma`), ARMCI and GASNet (:mod:`repro.baselines`);
- consistency-model checkers (:mod:`repro.consistency`);
- the experiment harness (:mod:`repro.bench`).

Quickstart
----------
>>> from repro import World, RmaAttrs
>>> from repro.datatypes import BYTE
>>> def program(ctx):
...     alloc, tmems = yield from ctx.rma.expose_collective(64)
...     if ctx.rank == 1:
...         src = ctx.mem.space.alloc(8, fill=7)
...         yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
...                                blocking=True, remote_completion=True)
...     yield from ctx.comm.barrier()
...     return ctx.mem.load(alloc, 0, 8).tolist() if ctx.rank == 0 else None
>>> World(n_ranks=2).run(program)[0]
[7, 7, 7, 7, 7, 7, 7, 7]
"""

from repro.machine import (
    MachineConfig,
    cray_x1e,
    cray_xt5_catamount,
    cray_xt5_cnl,
    generic_cluster,
    hybrid_accelerator,
    nec_sx9,
)
from repro.network import (
    NetworkConfig,
    generic_rdma,
    infiniband_like,
    quadrics_like,
    seastar_portals,
    shared_memory_like,
)
from repro.rma import ALL_RANKS, RmaAttrs, RmaError, TargetMem
from repro.runtime import RankContext, World

__version__ = "1.0.0"

__all__ = [
    "ALL_RANKS",
    "MachineConfig",
    "NetworkConfig",
    "RankContext",
    "RmaAttrs",
    "RmaError",
    "TargetMem",
    "World",
    "__version__",
    "cray_x1e",
    "cray_xt5_catamount",
    "cray_xt5_cnl",
    "generic_cluster",
    "generic_rdma",
    "hybrid_accelerator",
    "infiniband_like",
    "nec_sx9",
    "quadrics_like",
    "seastar_portals",
    "shared_memory_like",
]
