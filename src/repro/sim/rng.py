"""Deterministic random streams for the simulation.

Every stochastic element of the model (e.g. packet reordering jitter on
unordered fabrics) draws from a named substream derived from a single
master seed, so adding a new consumer never perturbs existing streams and
two runs with the same seed are bit-identical.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A registry of named, independently-seeded NumPy generators."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from the named stream."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.stream(name).exponential(mean))
