"""The simulator event loop.

Two scheduling structures back the loop:

- a binary heap of ``(time, seq, fn, args)`` entries for callbacks at
  a *future* simulated time;
- a plain FIFO deque for *urgent* callbacks at the **current** time
  (event-trigger processing, process resumption).  The deque is always
  drained before the heap is consulted, which reproduces the classic
  ``(time, priority, seq)`` ordering — urgent entries run before any
  ordinary callback at the same timestamp — at deque cost instead of
  heap cost.  This matters: roughly half of all kernel events in an
  RMA simulation are urgent (every event trigger is one).

``seq`` is a monotonically increasing counter so that heap entries
scheduled at the same simulated time execute in scheduling order; with
the FIFO deque this makes the whole simulation deterministic,
independent of hash seeds or dict iteration order.

Scheduling a *bound method plus arguments* (:meth:`Simulator.schedule_call`)
instead of a freshly allocated closure is the kernel's fast path: the
network and RMA layers schedule millions of callbacks per run, and a
lambda per callback used to dominate allocation on large sweeps.

Simulated time is a ``float`` in *microseconds* by convention throughout
:mod:`repro` (the network configs document their units the same way), but
the kernel itself is unit-agnostic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Default priority for scheduled callbacks (kept for API compatibility;
#: the heap itself no longer stores a priority column).
NORMAL = 1
#: Priority used for event-callback processing, so that events triggered
#: "now" are observed before ordinary callbacks scheduled "now".
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. running a finished loop)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated clock value.

    Notes
    -----
    All mutation of simulation state must happen from inside callbacks or
    processes run by this loop.  The class is single-threaded on purpose:
    simulated concurrency comes from interleaving coroutines, not OS
    threads, which keeps runs reproducible.
    """

    __slots__ = ("_now", "_heap", "_urgent", "_seq", "_running",
                 "_processes_spawned", "context")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._urgent: Deque[Tuple[Callable[..., None], tuple]] = deque()
        self._seq: int = 0
        self._running: bool = False
        self._processes_spawned: int = 0
        #: Arbitrary per-simulation scratch space used by higher layers
        #: (e.g. the runtime stores the World here so that deeply nested
        #: components can find global services without threading them
        #: through every constructor).
        self.context: dict = {}

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = NORMAL,
    ) -> None:
        """Run ``callback`` after ``delay`` simulated time units.

        ``delay`` must be non-negative; a zero delay runs the callback at
        the current time, after everything already scheduled for this
        instant.  ``priority=URGENT`` requires ``delay == 0`` and jumps
        ahead of ordinary zero-delay callbacks (equivalent to
        :meth:`schedule_urgent`).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        if priority == URGENT:
            if delay != 0:
                raise ValueError("URGENT callbacks must have zero delay")
            self._urgent.append((callback, ()))
            return
        _heappush(self._heap, (self._now + delay, self._seq, callback, ()))
        self._seq += 1

    def schedule_call(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Run ``fn(*args)`` after ``delay`` time units (fast path).

        Equivalent to ``schedule(delay, lambda: fn(*args))`` without the
        closure allocation; ``fn`` is typically a bound method.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        _heappush(self._heap, (self._now + delay, self._seq, fn, args))
        self._seq += 1

    def schedule_call_at(
        self, t: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Run ``fn(*args)`` at the *absolute* simulated time ``t``.

        Unlike ``schedule_call(t - now, ...)``, the heap entry carries
        ``t`` itself — no ``now + (t - now)`` float round trip — so a
        precomputed analytic timestamp is reproduced bit-exactly.
        """
        if t < self._now:
            raise ValueError(f"cannot schedule in the past (t={t!r})")
        _heappush(self._heap, (t, self._seq, fn, args))
        self._seq += 1

    def wake_at(self, t: float, value: Any = None) -> Event:
        """An event that succeeds at the absolute time ``t`` exactly
        (the absolute-time counterpart of :meth:`timeout`)."""
        ev = Event(self)
        self.schedule_call_at(t, ev.succeed, value)
        return ev

    def schedule_bulk_succeed(
        self, delay: float, events: List[Event], values: List[Any]
    ) -> None:
        """Succeed ``events[i]`` with ``values[i]`` after ``delay``, as a
        single heap entry.

        The batched generalization of the analytic burst-ack trick: N
        completion events whose (time, value) pairs are already known
        cost one event-loop interaction instead of N.  Events that
        trigger earlier by other means are skipped, so heap order and
        every observable timestamp stay exactly as if each event had its
        own timer at ``delay``.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        _heappush(self._heap, (self._now + delay, self._seq,
                               self._bulk_succeed, (events, values)))
        self._seq += 1

    def schedule_bulk_succeed_at(
        self, t: float, events: List[Event], values: List[Any]
    ) -> None:
        """Absolute-time variant of :meth:`schedule_bulk_succeed`: the
        heap entry carries ``t`` itself, with no ``now + (t - now)``
        float round trip, so a precomputed analytic timestamp is
        reproduced bit-exactly no matter when the call is made."""
        if t < self._now:
            raise ValueError(f"cannot schedule in the past (t={t!r})")
        _heappush(self._heap, (t, self._seq,
                               self._bulk_succeed, (events, values)))
        self._seq += 1

    @staticmethod
    def _bulk_succeed(events: List[Event], values: List[Any]) -> None:
        for ev, value in zip(events, values):
            if not ev.triggered:
                ev.succeed(value)

    def schedule_urgent(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at the current time, urgent priority."""
        self._urgent.append((callback, ()))

    def schedule_urgent_call(
        self, fn: Callable[..., None], *args: Any
    ) -> None:
        """Run ``fn(*args)`` at the current time, before any ordinary
        callback scheduled for this instant (fast path)."""
        self._urgent.append((fn, args))

    # ------------------------------------------------------------------
    # Event / process factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event` bound to this loop."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``.

        The generator yields :class:`Event` objects and is resumed with
        each event's value once it triggers (or has the event's exception
        thrown into it if the event failed).  The returned
        :class:`Process` is itself an event that triggers when the
        generator returns; its value is the generator's return value.
        """
        self._processes_spawned += 1
        if name is None:
            name = f"proc-{self._processes_spawned}"
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``False`` when nothing is scheduled, ``True`` otherwise.
        """
        if self._urgent:
            fn, args = self._urgent.popleft()
            fn(*args)
            return True
        if not self._heap:
            return False
        time, _seq, fn, args = _heappop(self._heap)
        if time < self._now:
            raise SimulationError("heap time went backwards")
        self._now = time
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the loop drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        heap = self._heap
        urgent = self._urgent
        pop = _heappop
        popleft = urgent.popleft
        try:
            if until is None:
                while True:
                    # Urgent FIFO first: everything here is due *now*.
                    while urgent:
                        fn, args = popleft()
                        fn(*args)
                    if not heap:
                        break
                    time, _seq, fn, args = pop(heap)
                    self._now = time
                    fn(*args)
            else:
                while True:
                    while urgent:
                        fn, args = popleft()
                        fn(*args)
                    if not heap:
                        break
                    if heap[0][0] > until:
                        self._now = until
                        break
                    time, _seq, fn, args = pop(heap)
                    self._now = time
                    fn(*args)
        finally:
            self._running = False
        return self._now

    def run_while_pending(
        self, pending: Iterable, limit: Optional[float] = None
    ) -> None:
        """Step until ``pending`` empties, the loop drains, or the next
        heap entry lies beyond ``limit``.

        ``pending`` is any sized container that event callbacks shrink as
        work completes (the :class:`~repro.runtime.World` passes the set
        of unfinished rank processes).  This is the driver's hot loop —
        kept inside the kernel so each event costs one pop and one call,
        nothing more.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        heap = self._heap
        urgent = self._urgent
        pop = _heappop
        popleft = urgent.popleft
        try:
            while pending:
                while urgent:
                    fn, args = popleft()
                    fn(*args)
                    if not pending:
                        return
                if not heap:
                    break
                if limit is not None and heap[0][0] > limit:
                    break
                time, _seq, fn, args = pop(heap)
                self._now = time
                fn(*args)
        finally:
            self._running = False

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises
        ------
        SimulationError
            If the loop drains (deadlock) or ``limit`` is reached before
            the event triggers.
        """
        while not event.triggered:
            if (limit is not None and not self._urgent and self._heap
                    and self._heap[0][0] > limit):
                raise SimulationError(
                    f"time limit {limit} reached before event triggered"
                )
            if not self.step():
                raise SimulationError(
                    "event loop drained before event triggered (deadlock?)"
                )
        if not event.ok:
            raise event.exception  # type: ignore[misc]
        return event.value

    def pending_count(self) -> int:
        """Number of callbacks currently scheduled (diagnostic)."""
        return len(self._heap) + len(self._urgent)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next scheduled callback, or ``None``."""
        if self._urgent:
            return self._now
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now} pending={self.pending_count()}>"
