"""The simulator event loop.

The loop is a binary heap of ``(time, priority, seq, callback)`` entries.
``seq`` is a monotonically increasing counter so that entries scheduled at
the same simulated time and priority execute in scheduling order; this is
what makes the whole simulation deterministic, independent of hash seeds
or dict iteration order.

Simulated time is a ``float`` in *microseconds* by convention throughout
:mod:`repro` (the network configs document their units the same way), but
the kernel itself is unit-agnostic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator", "SimulationError"]

#: Default priority for scheduled callbacks.  Lower runs first among
#: entries at the same timestamp.
NORMAL = 1
#: Priority used for event-callback processing, so that events triggered
#: "now" are observed before ordinary callbacks scheduled "now".
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. running a finished loop)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated clock value.

    Notes
    -----
    All mutation of simulation state must happen from inside callbacks or
    processes run by this loop.  The class is single-threaded on purpose:
    simulated concurrency comes from interleaving coroutines, not OS
    threads, which keeps runs reproducible.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._heap: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._running: bool = False
        self._processes_spawned: int = 0
        #: Arbitrary per-simulation scratch space used by higher layers
        #: (e.g. the runtime stores the World here so that deeply nested
        #: components can find global services without threading them
        #: through every constructor).
        self.context: dict = {}

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = NORMAL,
    ) -> None:
        """Run ``callback`` after ``delay`` simulated time units.

        ``delay`` must be non-negative; a zero delay runs the callback at
        the current time, after everything already scheduled for this
        instant at the same priority.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._seq, callback)
        )
        self._seq += 1

    def schedule_urgent(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at the current time, urgent priority."""
        heapq.heappush(self._heap, (self._now, URGENT, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Event / process factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event` bound to this loop."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``.

        The generator yields :class:`Event` objects and is resumed with
        each event's value once it triggers (or has the event's exception
        thrown into it if the event failed).  The returned
        :class:`Process` is itself an event that triggers when the
        generator returns; its value is the generator's return value.
        """
        self._processes_spawned += 1
        if name is None:
            name = f"proc-{self._processes_spawned}"
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``False`` when the heap is empty, ``True`` otherwise.
        """
        if not self._heap:
            return False
        time, _prio, _seq, callback = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("heap time went backwards")
        self._now = time
        callback()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False
        return self._now

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises
        ------
        SimulationError
            If the heap drains (deadlock) or ``limit`` is reached before
            the event triggers.
        """
        while not event.triggered:
            if limit is not None and self._heap and self._heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} reached before event triggered"
                )
            if not self.step():
                raise SimulationError(
                    "event loop drained before event triggered (deadlock?)"
                )
        if not event.ok:
            raise event.exception  # type: ignore[misc]
        return event.value

    def pending_count(self) -> int:
        """Number of callbacks currently scheduled (diagnostic)."""
        return len(self._heap)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next scheduled callback, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
