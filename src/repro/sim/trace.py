"""Structured simulation tracing.

Higher layers (RMA engine, consistency checkers, benches) record
:class:`TraceRecord` entries into a shared :class:`Tracer`.  The
consistency checkers in :mod:`repro.consistency` consume these traces to
validate ordering/atomicity guarantees, and the bench harness uses them
to attribute simulated time to protocol phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Coarse grouping, e.g. ``"rma"``, ``"net"``, ``"mem"``.
    kind:
        Specific occurrence, e.g. ``"put_issue"``, ``"packet_deliver"``.
    rank:
        Originating rank, or ``None`` for rank-less occurrences.
    detail:
        Free-form payload describing the occurrence.
    seq:
        Global record index; breaks ties among equal timestamps.
    """

    time: float
    category: str
    kind: str
    rank: Optional[int]
    detail: Dict[str, Any]
    seq: int


class Tracer:
    """Collects :class:`TraceRecord` entries.

    Tracing is off by default; benches that don't need traces pay only a
    boolean check per potential record.
    """

    def __init__(self, enabled: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._seq = 0
        #: Always-on typed metrics (cheap, no record objects).  The
        #: fault-injection/reliability layers bump counters here to
        #: count retransmits, checksum drops, etc. even when record
        #: tracing is off; the span/report layers fill histograms.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def bump(self, key: str, n: int = 1, **labels: Any) -> None:
        """Increment counter ``key`` by ``n`` (independent of
        ``enabled``), optionally labeled (e.g. ``rank=3``)."""
        self.metrics.counter(key, **labels).inc(n)

    @property
    def counters(self) -> Dict[str, int]:
        """Counters aggregated over labels — the untyped-dict compat
        view of :attr:`metrics` (a snapshot, not a live reference)."""
        return self.metrics.counter_totals()

    def record(
        self,
        time: float,
        category: str,
        kind: str,
        rank: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Append a record if tracing is enabled."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(
                time=time,
                category=category,
                kind=kind,
                rank=rank,
                detail=detail,
                seq=self._seq,
            )
        )
        self._seq += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in recording order."""
        return list(self._records)

    def filter(
        self,
        category: Optional[str] = None,
        kind: Optional[str] = None,
        rank: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Records matching all provided criteria."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if rank is not None and rec.rank != rank:
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        """Discard all records *and* reset every metric (counters,
        gauges, histograms), so a tracer reused across bench repetitions
        or chaos seeds never double-counts.  The record sequence counter
        stays monotonic across clears."""
        self._records.clear()
        self.metrics.reset()
