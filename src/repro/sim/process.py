"""Generator-coroutine processes.

A process wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` instances; the kernel resumes it with
the event's value once the event triggers, or throws the event's
exception into it if the event failed.  Sub-activities are composed with
``yield from``, exactly as in SimPy, e.g.::

    def worker(sim, lock):
        yield from lock.acquire()
        yield sim.timeout(3)
        lock.release()

The :class:`Process` object is itself an event: it triggers when the
generator returns (value = the generator's return value) or fails when
the generator raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, _PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Process", "Interrupt", "ProcessKilled"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown into a process by :meth:`Process.kill`; do not catch."""


class Process(Event):
    """A running simulated activity (see module docstring)."""

    __slots__ = ("name", "_generator", "_waiting_on", "_dead")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "proc",
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you call the function instead of passing its result?)"
            )
        self.name = name
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._dead = False
        # First resume happens via the event queue so the spawner's
        # current callback finishes before the child starts.
        sim.schedule_urgent_call(self._resume, None, None)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process may catch the interrupt and continue; the event it
        was waiting on remains pending from its point of view (it must
        re-wait explicitly if it still wants the result).
        """
        if not self.is_alive:
            return
        self.sim.schedule_urgent_call(self._throw, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process; it fails with :class:`ProcessKilled`."""
        if not self.is_alive:
            return
        self._dead = True
        self.sim.schedule_urgent_call(self._throw, ProcessKilled())

    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            # The process was interrupted/killed while waiting and has
            # since moved on; drop the stale wakeup.
            return
        self._waiting_on = None
        # Inlined event.ok/value/exception: the event has triggered by
        # construction (we are one of its processed callbacks).
        exc = event._exception
        if exc is None:
            self._resume(event._value, None)
        else:
            event._defused = True  # the process observes the failure
            self._resume(None, exc)

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        self._resume(None, exc)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._value is not _PENDING or self._exception is not None:
            return  # already finished (e.g. killed then woken)
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as pk:
            self.fail(pk)
            self._defused = True  # kills are intentional, never "unhandled"
            return
        except BaseException as err:
            captured = err  # `err` is unbound once the except block exits
            self.fail(captured)
            # SimPy-style: if nothing observes this failure by the time
            # the event queue settles, crash the simulation instead of
            # silently losing the error.
            def check_unhandled() -> None:
                if not self._defused:
                    raise captured

            self.sim.schedule(0, check_unhandled)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(ValueError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else ("done" if self.ok else "failed")
        return f"<Process {self.name!r} {state}>"
