"""Synchronization primitives built on events.

All primitives hand out wakeups in strict FIFO order, which keeps
simulations deterministic and makes starvation impossible — important
because the coarse-grain-lock serializer experiments (paper §V-A) measure
contention behaviour and must not depend on arbitrary queue order.

Usage from a process::

    yield from resource.acquire()
    ...critical section...
    resource.release()

    yield from store.put(item)
    item = yield from store.get()
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Generator, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Resource", "Semaphore", "Store", "Channel"]


class Resource:
    """A counted resource (capacity ``n``); capacity 1 is a mutex.

    :meth:`acquire` is a generator meant for ``yield from``; it completes
    once a slot is held.  :meth:`release` is a plain call.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Take a slot immediately if one is free; never waits."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def acquire(self) -> Generator[Event, Any, None]:
        """Wait until a slot is free, then take it (``yield from``)."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return
        ticket = Event(self.sim)
        self._waiters.append(ticket)
        yield ticket
        # Slot ownership was transferred by release(); nothing to do.

    def release(self) -> None:
        """Give back a slot; wakes the longest-waiting acquirer."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            # Hand the slot straight to the next waiter: _in_use stays
            # constant, so no third party can barge in between.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Semaphore:
    """A counting semaphore with FIFO wakeups.

    Unlike :class:`Resource` the counter may be raised past its initial
    value, which makes it suitable for signalling (post/wait pairs).
    """

    def __init__(self, sim: "Simulator", initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("initial count must be >= 0")
        self.sim = sim
        self._count = initial
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Current counter value (not counting queued waiters)."""
        return self._count

    def post(self, n: int = 1) -> None:
        """Increment the counter, waking up to ``n`` waiters."""
        if n < 1:
            raise ValueError("post count must be >= 1")
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._count += 1

    def wait(self) -> Generator[Event, Any, None]:
        """Wait for the counter to be positive, then decrement it."""
        if self._count > 0:
            self._count -= 1
            return
        ticket = Event(self.sim)
        self._waiters.append(ticket)
        yield ticket


class Store:
    """An unbounded FIFO buffer of items with blocking :meth:`get`.

    ``put`` never blocks (the NICs model backpressure explicitly with
    their own rate limiting, so an unbounded store is the right level of
    abstraction here).
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Generator[Event, Any, Any]:
        """Wait for and return the oldest item (``yield from``)."""
        if self._items:
            return self._items.popleft()
        ticket = Event(self.sim)
        self._getters.append(ticket)
        item = yield ticket
        return item

    def try_get(self) -> Optional[Any]:
        """Return the oldest item or ``None`` without blocking."""
        if self._items:
            return self._items.popleft()
        return None

    def peek_all(self) -> list:
        """Snapshot of buffered items (diagnostic)."""
        return list(self._items)


class Channel:
    """A :class:`Store` with optional predicate-matched receive.

    Used by the MPI layer for tag matching: a getter may specify a
    predicate; it receives the oldest buffered item satisfying it.
    Ordering between matching getters is FIFO, mirroring MPI's
    non-overtaking rule for equally-matching receives.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[tuple] = deque()  # (predicate|None, Event)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deliver ``item`` to the oldest waiting matching getter, else buffer."""
        for idx, (pred, ticket) in enumerate(self._getters):
            if pred is None or pred(item):
                del self._getters[idx]
                ticket.succeed(item)
                return
        self._items.append(item)

    def get(
        self, predicate: Optional[Callable[[Any], bool]] = None
    ) -> Generator[Event, Any, Any]:
        """Wait for the oldest item matching ``predicate`` (``yield from``)."""
        for idx, item in enumerate(self._items):
            if predicate is None or predicate(item):
                del self._items[idx]
                return item
        ticket = Event(self.sim)
        self._getters.append((predicate, ticket))
        item = yield ticket
        return item

    def try_get(
        self, predicate: Optional[Callable[[Any], bool]] = None
    ) -> Optional[Any]:
        """Non-blocking matched receive; ``None`` if nothing matches."""
        for idx, item in enumerate(self._items):
            if predicate is None or predicate(item):
                del self._items[idx]
                return item
        return None
