"""Waitable events for the simulation kernel.

An :class:`Event` has three observable states:

- *pending* — created, not yet triggered;
- *triggered* — :meth:`Event.succeed` or :meth:`Event.fail` has been
  called; the value/exception is fixed;
- *processed* — its callbacks have run.

Callbacks added after an event has triggered are scheduled to run
immediately (at the current simulated time), so late waiters never miss a
wakeup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Event", "Timeout", "DeferredEvent", "AnyOf", "AllOf",
           "EventError"]

_PENDING = object()


class EventError(RuntimeError):
    """Raised on event misuse (double trigger, reading a pending value)."""


class Event:
    """A one-shot waitable condition.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.core.Simulator`.

    Notes
    -----
    Events are one-shot: once triggered they stay triggered and keep their
    value.  Reuse a fresh event for each wait.
    """

    __slots__ = (
        "sim",
        "_value",
        "_exception",
        "_callbacks",
        "_to_run",
        "_processed",
        "_defused",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._to_run: Optional[List[Callable[["Event"], None]]] = None
        self._processed = False
        # A failure is "defused" once some waiter observed the exception;
        # Process uses this to crash the simulation on unhandled failures.
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise EventError("event has not triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The success value (raises if pending or failed)."""
        if not self.triggered:
            raise EventError("event has not triggered yet")
        if self._exception is not None:
            self._defused = True
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None`` if the event succeeded.

        Reading it counts as handling the failure (defuses it).
        """
        if not self.triggered:
            raise EventError("event has not triggered yet")
        if self._exception is not None:
            self._defused = True
        return self._exception

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise EventError(f"{self!r} already triggered")
        self._value = value
        self._to_run = self._callbacks
        self._callbacks = None
        self.sim.schedule_urgent_call(self._process_callbacks)
        return self

    def succeed_now(self, value: Any = None) -> "Event":
        """:meth:`succeed`, but with the callbacks run inline instead of
        deferred through the urgent queue — for the rare caller that must
        observe the waiters' resulting state before its own next
        statement (the collective nexus's synchronous rescue)."""
        if self._value is not _PENDING or self._exception is not None:
            raise EventError(f"{self!r} already triggered")
        self._value = value
        self._to_run = self._callbacks
        self._callbacks = None
        self._process_callbacks()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters get the exception."""
        if self._value is not _PENDING or self._exception is not None:
            raise EventError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._schedule_callbacks()
        return self

    def trigger(self, value: Any = None) -> "Event":
        """Alias for :meth:`succeed` (reads better for signal-style use)."""
        return self.succeed(value)

    def _schedule_callbacks(self) -> None:
        # Kept for subclasses/tests; succeed() and fail() inline this.
        self._to_run = self._callbacks
        self._callbacks = None
        self.sim.schedule_urgent_call(self._process_callbacks)

    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks = self._to_run
        self._to_run = None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    # -- waiting -------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when the event is processed.

        If the event already triggered, the callback is scheduled to run
        at the current simulated time.
        """
        if self._callbacks is not None:
            self._callbacks.append(callback)
        else:
            self.sim.schedule_urgent_call(callback, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._exception is None else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers a fixed delay after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        super().__init__(sim)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.delay = delay
        sim.schedule_call(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        # Runs from a heap pop, where the urgent deque is by construction
        # empty — so invoking the callbacks inline is indistinguishable
        # from succeed()'s urgent-queue round trip, and saves one kernel
        # event per timeout (the single most common event in a run).
        if self._value is not _PENDING or self._exception is not None:
            return  # triggered early by other means; the timer is stale
        self._value = value
        self._processed = True
        callbacks = self._callbacks
        self._callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)


class DeferredEvent(Event):
    """An event whose trigger time and value are both known at creation.

    The op-train fast path (:mod:`repro.rma.train`) precomputes every
    completion timestamp analytically; most of the resulting events are
    never waited on individually (non-blocking operations retired
    wholesale by a later ``complete()``).  A deferred event therefore
    costs *zero* kernel events until somebody looks:

    - reading :attr:`triggered` (``Request.test()``/``state``) at or
      after the due time fires the event inline with its stored value;
    - attaching a callback before the due time arms one exact timer, so
      a blocking waiter resumes at precisely the analytic timestamp;
    - a batch owner may :meth:`mark_armed` a whole group and retire it
      with one :meth:`~repro.sim.core.Simulator.schedule_bulk_succeed`
      heap entry.
    """

    __slots__ = ("due", "_deferred_value", "_armed")

    def __init__(self, sim: "Simulator", due: float, value: Any = None) -> None:
        super().__init__(sim)
        self.due = due
        self._deferred_value = value
        self._armed = False

    @property
    def triggered(self) -> bool:
        if self._value is not _PENDING or self._exception is not None:
            return True
        if self.sim.now >= self.due:
            self.succeed(self._deferred_value)
            return True
        return False

    def mark_armed(self) -> None:
        """Claim the firing: the caller promises to ``succeed()`` this
        event at (or after) its due time, so no per-event timer is
        armed when waiters attach."""
        self._armed = True

    def _fire(self) -> None:
        if self._value is _PENDING and self._exception is None:
            self.succeed(self._deferred_value)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if (self._value is _PENDING and self._exception is None
                and self.sim.now >= self.due):
            self.succeed(self._deferred_value)
        if self._callbacks is not None and not self._armed:
            self._armed = True
            self.sim.schedule_call(self.due - self.sim.now, self._fire)
        super().add_callback(callback)


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_satisfied")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
        self._satisfied = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> list:
        return [ev.value for ev in self.events if ev.triggered and ev.ok]


class AnyOf(_Condition):
    """Triggers when any child event triggers.

    The condition's value is the list of values of all children that had
    triggered by the moment the condition processed.  A failing child
    fails the condition.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every child event has triggered.

    Value is the list of all child values in construction order.  A
    failing child fails the condition immediately.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self._satisfied += 1
        if self._satisfied == len(self.events):
            self.succeed([e.value for e in self.events])
