"""Deterministic discrete-event simulation kernel.

This package is the substrate for every other subsystem in :mod:`repro`.
It provides a SimPy-flavoured, dependency-free kernel:

- :class:`~repro.sim.core.Simulator` — the event loop with a
  ``(time, priority, seq)``-ordered heap, giving fully deterministic
  execution.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf` —
  waitable conditions.
- :class:`~repro.sim.process.Process` — generator-coroutine processes;
  simulated actors ``yield`` events and are resumed when they trigger.
- :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Channel` — synchronization primitives.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim, out):
...     yield sim.timeout(5.0)
...     out.append(sim.now)
>>> out = []
>>> sim.spawn(hello(sim, out))
Process(...)
>>> sim.run()
5.0
>>> out
[5.0]
"""

from repro.sim.core import SimulationError, Simulator
from repro.sim.events import AllOf, AnyOf, Event, EventError, Timeout
from repro.sim.process import Interrupt, Process, ProcessKilled
from repro.sim.resources import Channel, Resource, Semaphore, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Event",
    "EventError",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "RngRegistry",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
