"""MPI-style datatype engine.

The strawman MPI-3 RMA API (paper §IV, requirement 7) reuses MPI
datatypes for noncontiguous (strided / scatter-gather) transfers and for
heterogeneity (endianness conversion between dissimilar nodes).  This
package implements that machinery over NumPy byte buffers:

- predefined primitives (:data:`BYTE`, :data:`INT32`, :data:`FLOAT64`, …);
- derived constructors: :func:`contiguous`, :func:`vector`,
  :func:`hvector`, :func:`indexed`, :func:`hindexed`, :func:`struct_type`;
- a pack/unpack engine (:mod:`repro.datatypes.pack`) that flattens any
  datatype into coalesced byte segments and performs byte-order
  conversion when origin and target endianness differ.
"""

from repro.datatypes.base import Datatype, DatatypeError, Segment
from repro.datatypes.predefined import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    FLOAT32,
    FLOAT64,
    INT,
    INT8,
    INT16,
    INT32,
    INT64,
    LONG,
    PREDEFINED,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    Primitive,
)
from repro.datatypes.derived import (
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    Struct,
    Vector,
    contiguous,
    hindexed,
    hvector,
    indexed,
    struct_type,
    vector,
)
from repro.datatypes.pack import pack, unpack, unpack_swapped

__all__ = [
    "BYTE",
    "CHAR",
    "Contiguous",
    "DOUBLE",
    "Datatype",
    "DatatypeError",
    "FLOAT",
    "FLOAT32",
    "FLOAT64",
    "Hindexed",
    "Hvector",
    "INT",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "Indexed",
    "LONG",
    "PREDEFINED",
    "Primitive",
    "Segment",
    "Struct",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "Vector",
    "contiguous",
    "hindexed",
    "hvector",
    "indexed",
    "pack",
    "struct_type",
    "unpack",
    "unpack_swapped",
    "vector",
]
