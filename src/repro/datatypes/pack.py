"""Pack/unpack engine.

``pack`` gathers a (possibly noncontiguous) datatype layout from a NumPy
byte buffer into a dense wire buffer; ``unpack`` scatters a wire buffer
back out.  The wire format is the *origin's* native byte order, annotated
out-of-band (the simulated packets carry the origin endianness); the
receiver converts on unpack when orders differ — the standard
receiver-makes-right strategy for heterogeneous systems (paper §III-B3).

Contiguous single-segment layouts take a zero-copy-ish fast path (one
NumPy slice copy).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datatypes.base import Datatype, DatatypeError, Segment

__all__ = ["pack", "unpack", "unpack_swapped", "swap_inplace", "check_bounds"]


def check_bounds(
    buf: np.ndarray, offset: int, dtype: Datatype, count: int
) -> None:
    """Validate that ``count`` instances at ``offset`` fit inside ``buf``."""
    if buf.dtype != np.uint8:
        raise DatatypeError(f"buffers must be uint8 arrays, got {buf.dtype}")
    lo, hi = dtype.byte_range(count)
    if count and (offset + lo < 0 or offset + hi > buf.size):
        raise DatatypeError(
            f"access [{offset + lo}, {offset + hi}) outside buffer of "
            f"{buf.size} bytes"
        )


def pack(
    buf: np.ndarray, offset: int, dtype: Datatype, count: int,
    copy: bool = True,
) -> np.ndarray:
    """Gather ``count`` instances of ``dtype`` at ``buf[offset...]``.

    Returns a dense ``uint8`` array of ``count * dtype.size`` bytes.

    With ``copy=False`` a *contiguous* layout is returned as a read-only
    **view** of ``buf`` instead of a fresh copy — the zero-copy
    (rendezvous-style) path.  The caller then owns the aliasing
    contract: the view reflects any later write to the underlying
    buffer, so it must either be consumed before the buffer can change
    or the buffer must be kept stable for the view's lifetime (the RMA
    engine does the latter for multi-fragment transfers, mirroring real
    zero-copy RDMA where the origin region is pinned until remote
    completion).  Noncontiguous layouts always gather into a fresh
    array; ``copy`` is ignored for them.
    """
    check_bounds(buf, offset, dtype, count)
    total = count * dtype.size
    if count != 0 and total != 0 and dtype.is_contiguous:
        if copy:
            out = np.empty(total, dtype=np.uint8)
            np.copyto(out, buf[offset : offset + total])
        else:
            out = buf[offset : offset + total]
            out.flags.writeable = False
        return out
    out = np.empty(total, dtype=np.uint8)
    if count == 0 or total == 0:
        return out
    pos = 0
    extent = dtype.extent
    segs = dtype.segments
    for i in range(count):
        base = offset + i * extent
        for seg in segs:
            start = base + seg.disp
            out[pos : pos + seg.nbytes] = buf[start : start + seg.nbytes]
            pos += seg.nbytes
    return out


def unpack(
    data: np.ndarray,
    buf: np.ndarray,
    offset: int,
    dtype: Datatype,
    count: int,
) -> None:
    """Scatter dense ``data`` into ``count`` instances at ``buf[offset..]``."""
    check_bounds(buf, offset, dtype, count)
    total = count * dtype.size
    if data.size != total:
        raise DatatypeError(
            f"wire data is {data.size} bytes but layout needs {total}"
        )
    if count == 0 or total == 0:
        return
    if dtype.is_contiguous:
        buf[offset : offset + total] = data
        return
    pos = 0
    extent = dtype.extent
    segs = dtype.segments
    for i in range(count):
        base = offset + i * extent
        for seg in segs:
            start = base + seg.disp
            buf[start : start + seg.nbytes] = data[pos : pos + seg.nbytes]
            pos += seg.nbytes


def _segment_spans(dtype: Datatype, count: int) -> Tuple[Tuple[int, int], ...]:
    """(wire_pos, elem_size) spans of the packed representation."""
    spans = []
    pos = 0
    for _ in range(count):
        for seg in dtype.segments:
            spans.append((pos, seg.nbytes, seg.elem_size))
            pos += seg.nbytes
    return tuple(spans)  # type: ignore[return-value]


def swap_inplace(data: np.ndarray, dtype: Datatype, count: int) -> None:
    """Reverse byte order of every multi-byte element in packed ``data``.

    Uses the datatype's segment element sizes to know the swap
    granularity; 1-byte elements are left untouched.
    """
    pos = 0
    for _ in range(count):
        for seg in dtype.segments:
            if seg.elem_size > 1:
                view = data[pos : pos + seg.nbytes]
                view[:] = (
                    view.reshape(-1, seg.elem_size)[:, ::-1].reshape(-1)
                )
            pos += seg.nbytes


def unpack_swapped(
    data: np.ndarray,
    buf: np.ndarray,
    offset: int,
    dtype: Datatype,
    count: int,
    scratch: "np.ndarray | None" = None,
) -> None:
    """Like :func:`unpack` but byte-swaps elements first (heterogeneous
    receive where origin and target endianness differ).

    ``scratch`` may provide a reusable staging buffer of at least
    ``data.size`` bytes (e.g. the engine's per-rank scratch): the swap
    is transient — fully consumed by the scatter below — so the staging
    bytes never outlive this call and reuse is safe.
    """
    if scratch is not None and scratch.size >= data.size:
        swapped = scratch[: data.size]
        np.copyto(swapped, data)
    else:
        swapped = data.copy()
    swap_inplace(swapped, dtype, count)
    unpack(swapped, buf, offset, dtype, count)
