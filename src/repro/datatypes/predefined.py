"""Predefined (primitive) datatypes.

Primitives know their NumPy dtype so the pack engine can view byte runs
at the right granularity for arithmetic (accumulate) and byte-order
conversion.  The canonical aliases (:data:`INT`, :data:`LONG`,
:data:`FLOAT`, :data:`DOUBLE`) match common MPI C bindings on LP64
platforms.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.datatypes.base import Datatype, Segment

__all__ = [
    "Primitive",
    "BYTE",
    "CHAR",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FLOAT32",
    "FLOAT64",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "PREDEFINED",
]


class Primitive(Datatype):
    """A fixed-size machine type.

    Parameters
    ----------
    name:
        Canonical name (e.g. ``"int32"``).
    np_dtype:
        The *native-endian* NumPy dtype; per-node endianness is applied
        by the memory/pack layers, not baked into the type object.
    """

    def __init__(self, name: str, np_dtype: np.dtype) -> None:
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        size = self.np_dtype.itemsize
        self.typename = name
        self.elem_np = self.np_dtype.name
        self._size = size
        self._extent = size
        self._segments = (Segment(0, size, size),)

    def __repr__(self) -> str:
        return f"<Primitive {self.name}>"


BYTE = Primitive("byte", np.uint8)
CHAR = Primitive("char", np.uint8)
INT8 = Primitive("int8", np.int8)
INT16 = Primitive("int16", np.int16)
INT32 = Primitive("int32", np.int32)
INT64 = Primitive("int64", np.int64)
UINT8 = Primitive("uint8", np.uint8)
UINT16 = Primitive("uint16", np.uint16)
UINT32 = Primitive("uint32", np.uint32)
UINT64 = Primitive("uint64", np.uint64)
FLOAT32 = Primitive("float32", np.float32)
FLOAT64 = Primitive("float64", np.float64)

#: C-binding style aliases (LP64).
INT = INT32
LONG = INT64
FLOAT = FLOAT32
DOUBLE = FLOAT64

#: Registry of all predefined types by name.
PREDEFINED: Dict[str, Primitive] = {
    t.name: t
    for t in (
        BYTE,
        CHAR,
        INT8,
        INT16,
        INT32,
        INT64,
        UINT8,
        UINT16,
        UINT32,
        UINT64,
        FLOAT32,
        FLOAT64,
    )
}
