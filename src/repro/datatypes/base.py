"""Datatype base class and flattened layout representation.

Every datatype — primitive or derived — can be flattened into a tuple of
:class:`Segment` entries: contiguous byte runs relative to the start of
one datatype instance, each annotated with the primitive element size so
the pack engine knows the granularity for byte-order conversion.

Adjacent runs of the same element size are coalesced at flattening time,
so a ``contiguous(1024, BYTE)`` costs one segment, not 1024 — this is the
datatype-engine analogue of the "vectorize, don't loop per element"
guidance for numerical Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Datatype", "DatatypeError", "Segment"]


class DatatypeError(ValueError):
    """Raised for malformed datatype constructions or buffer misuse."""


@dataclass(frozen=True, slots=True)
class Segment:
    """A contiguous byte run inside one datatype instance.

    Attributes
    ----------
    disp:
        Byte displacement from the instance start (may be negative for
        exotic struct layouts, mirroring MPI's lower-bound semantics).
    nbytes:
        Length of the run in bytes.
    elem_size:
        Size of the primitive elements the run is made of (1 for bytes;
        byte-order conversion swaps within groups of this size).
    """

    disp: int
    nbytes: int
    elem_size: int


def coalesce(segments: Sequence[Segment]) -> Tuple[Segment, ...]:
    """Merge byte-adjacent segments with identical element size.

    Input order is preserved; only immediately-adjacent mergeable pairs
    collapse, so the serialized byte order of packed data is unchanged.
    """
    out: List[Segment] = []
    for seg in segments:
        if seg.nbytes == 0:
            continue
        if (
            out
            and out[-1].elem_size == seg.elem_size
            and out[-1].disp + out[-1].nbytes == seg.disp
        ):
            prev = out[-1]
            out[-1] = Segment(prev.disp, prev.nbytes + seg.nbytes, prev.elem_size)
        else:
            out.append(seg)
    return tuple(out)


class Datatype:
    """Abstract datatype.

    Subclasses must set ``_segments`` (flattened layout of a single
    instance), ``_size`` (total payload bytes) and ``_extent`` (span in
    the buffer from one instance to the next).
    """

    _segments: Tuple[Segment, ...]
    _size: int
    _extent: int

    #: Human-readable constructor name for repr/debugging.
    typename: str = "datatype"

    #: NumPy scalar type name when every element of the type is the same
    #: primitive (e.g. ``"float64"``); ``None`` for mixed structs.  The
    #: accumulate engine requires a uniform element type for arithmetic.
    elem_np: "str | None" = None

    @property
    def size(self) -> int:
        """Number of payload bytes in one instance (MPI ``MPI_Type_size``)."""
        return self._size

    @property
    def extent(self) -> int:
        """Span of one instance in the buffer (MPI ``MPI_Type_extent``)."""
        return self._extent

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """Flattened, coalesced layout of one instance."""
        return self._segments

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a single run starting at offset 0
        whose length equals the extent — the fast path for pack/unpack."""
        return (
            len(self._segments) == 1
            and self._segments[0].disp == 0
            and self._segments[0].nbytes == self._size == self._extent
        )

    def segments_for(self, count: int) -> Tuple[Segment, ...]:
        """Flattened layout of ``count`` consecutive instances.

        Two things keep this O(segments-in-result) rather than
        O(count * segments-per-instance) on the hot path:

        - a single-run instance whose run length equals the extent tiles
          the buffer back-to-back, so ``count`` instances coalesce to one
          ``count * nbytes`` run — computed directly (this covers every
          primitive and ``contiguous`` type, i.e. the common RMA case);
        - results are memoized per count, since the engine recomputes the
          same layout for every fragment-sized operation of a sweep.
        """
        if count < 0:
            raise DatatypeError(f"negative count: {count}")
        if count == 1:
            return self._segments
        segs = self._segments
        if len(segs) == 1 and segs[0].nbytes == self._extent:
            s = segs[0]
            return (Segment(s.disp, s.nbytes * count, s.elem_size),)
        cache = getattr(self, "_segments_for_cache", None)
        if cache is None:
            cache = self._segments_for_cache = {}
        cached = cache.get(count)
        if cached is None:
            flat: List[Segment] = []
            for i in range(count):
                base = i * self._extent
                for seg in segs:
                    flat.append(Segment(base + seg.disp, seg.nbytes, seg.elem_size))
            cached = cache[count] = coalesce(flat)
        return cached

    def byte_range(self, count: int) -> Tuple[int, int]:
        """``(lo, hi)`` byte bounds touched by ``count`` instances.

        Both are relative to the buffer offset the instances start at;
        the buffer must cover ``offset + lo .. offset + hi``.  Returns
        ``(0, 0)`` for zero count or empty types.
        """
        if count <= 0 or not self._segments:
            return (0, 0)
        lo = min(s.disp for s in self._segments)
        hi = max(s.disp + s.nbytes for s in self._segments)
        return (lo, (count - 1) * self._extent + hi)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.typename} size={self._size} "
            f"extent={self._extent} nseg={len(self._segments)}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datatype):
            return NotImplemented
        return (
            self._segments == other._segments
            and self._size == other._size
            and self._extent == other._extent
        )

    def __hash__(self) -> int:
        return hash((self._segments, self._size, self._extent))
