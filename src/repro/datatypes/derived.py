"""Derived datatype constructors.

These mirror the MPI type constructors the strawman API leans on for
requirement 7 (strided/vector and scatter/gather transfers):

- :func:`contiguous` — ``count`` back-to-back copies of a base type;
- :func:`vector` / :func:`hvector` — regularly strided blocks (stride in
  base-type extents / in bytes);
- :func:`indexed` / :func:`hindexed` — irregular scatter/gather blocks;
- :func:`struct_type` — heterogeneous records.

All constructors eagerly flatten into coalesced byte segments (see
:mod:`repro.datatypes.base`), so deeply nested constructions cost nothing
at transfer time.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.datatypes.base import Datatype, DatatypeError, Segment, coalesce

__all__ = [
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "Hindexed",
    "Struct",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "struct_type",
]


def _replicate(base: Datatype, byte_offsets: Sequence[int]) -> List[Segment]:
    """Copies of ``base``'s segments at each byte offset, in order."""
    segs: List[Segment] = []
    for off in byte_offsets:
        for seg in base.segments:
            segs.append(Segment(off + seg.disp, seg.nbytes, seg.elem_size))
    return segs


class Contiguous(Datatype):
    """``count`` consecutive instances of ``base``."""

    def __init__(self, count: int, base: Datatype) -> None:
        if count < 0:
            raise DatatypeError(f"negative count: {count}")
        self.count = count
        self.base = base
        self.typename = f"contiguous({count})"
        self.elem_np = base.elem_np
        self._size = count * base.size
        self._extent = count * base.extent
        self._segments = coalesce(
            _replicate(base, [i * base.extent for i in range(count)])
        )


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base elements, start-to-start
    spaced ``stride`` base extents apart (MPI ``Type_vector``)."""

    def __init__(
        self, count: int, blocklength: int, stride: int, base: Datatype
    ) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be >= 0")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        self.typename = f"vector({count},{blocklength},{stride})"
        self.elem_np = base.elem_np
        ext = base.extent
        segs: List[Segment] = []
        for i in range(count):
            block_start = i * stride * ext
            segs.extend(
                _replicate(
                    base, [block_start + j * ext for j in range(blocklength)]
                )
            )
        self._segments = coalesce(segs)
        self._size = count * blocklength * base.size
        # MPI extent: from first byte to last byte of the type map,
        # covering the stride pattern.
        if count == 0 or blocklength == 0:
            self._extent = 0
        else:
            self._extent = ((count - 1) * stride + blocklength) * ext


class Hvector(Datatype):
    """Like :class:`Vector` but ``stride_bytes`` is in bytes."""

    def __init__(
        self, count: int, blocklength: int, stride_bytes: int, base: Datatype
    ) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be >= 0")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride_bytes
        self.base = base
        self.typename = f"hvector({count},{blocklength},{stride_bytes}B)"
        self.elem_np = base.elem_np
        ext = base.extent
        segs: List[Segment] = []
        for i in range(count):
            block_start = i * stride_bytes
            segs.extend(
                _replicate(
                    base, [block_start + j * ext for j in range(blocklength)]
                )
            )
        self._segments = coalesce(segs)
        self._size = count * blocklength * base.size
        if count == 0 or blocklength == 0:
            self._extent = 0
        else:
            self._extent = (count - 1) * stride_bytes + blocklength * ext


class Indexed(Datatype):
    """Irregular blocks: ``blocklengths[i]`` base elements at
    ``displacements[i]`` (in base extents) — MPI ``Type_indexed``."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: Datatype,
    ) -> None:
        if len(blocklengths) != len(displacements):
            raise DatatypeError(
                "blocklengths and displacements must have equal length"
            )
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("negative blocklength")
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.base = base
        self.typename = f"indexed({len(blocklengths)} blocks)"
        self.elem_np = base.elem_np
        ext = base.extent
        segs: List[Segment] = []
        for blen, disp in zip(blocklengths, displacements):
            segs.extend(
                _replicate(base, [(disp + j) * ext for j in range(blen)])
            )
        self._segments = coalesce(segs)
        self._size = sum(blocklengths) * base.size
        if self._segments:
            hi = max(
                (d + b) * ext for b, d in zip(blocklengths, displacements)
            )
            self._extent = hi
        else:
            self._extent = 0


class Hindexed(Datatype):
    """Like :class:`Indexed` but displacements are in bytes."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        byte_displacements: Sequence[int],
        base: Datatype,
    ) -> None:
        if len(blocklengths) != len(byte_displacements):
            raise DatatypeError(
                "blocklengths and byte_displacements must have equal length"
            )
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("negative blocklength")
        self.blocklengths = list(blocklengths)
        self.byte_displacements = list(byte_displacements)
        self.base = base
        self.typename = f"hindexed({len(blocklengths)} blocks)"
        self.elem_np = base.elem_np
        ext = base.extent
        segs: List[Segment] = []
        for blen, disp in zip(blocklengths, byte_displacements):
            segs.extend(_replicate(base, [disp + j * ext for j in range(blen)]))
        self._segments = coalesce(segs)
        self._size = sum(blocklengths) * base.size
        if self._segments:
            self._extent = max(
                d + b * ext for b, d in zip(blocklengths, byte_displacements)
            )
        else:
            self._extent = 0


class Struct(Datatype):
    """Heterogeneous records: block ``i`` is ``blocklengths[i]``
    instances of ``types[i]`` at byte offset ``byte_displacements[i]``."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        byte_displacements: Sequence[int],
        types: Sequence[Datatype],
        extent: int = None,  # type: ignore[assignment]
    ) -> None:
        if not (len(blocklengths) == len(byte_displacements) == len(types)):
            raise DatatypeError("struct argument lists must have equal length")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("negative blocklength")
        self.blocklengths = list(blocklengths)
        self.byte_displacements = list(byte_displacements)
        self.types = list(types)
        self.typename = f"struct({len(types)} fields)"
        elem_kinds = {t.elem_np for t in types if t.size > 0}
        self.elem_np = elem_kinds.pop() if len(elem_kinds) == 1 else None
        segs: List[Segment] = []
        hi = 0
        for blen, disp, typ in zip(blocklengths, byte_displacements, types):
            for j in range(blen):
                base_off = disp + j * typ.extent
                for seg in typ.segments:
                    segs.append(
                        Segment(base_off + seg.disp, seg.nbytes, seg.elem_size)
                    )
            if blen:
                hi = max(hi, disp + blen * typ.extent)
        self._segments = coalesce(segs)
        self._size = sum(
            b * t.size for b, t in zip(blocklengths, types)
        )
        self._extent = extent if extent is not None else hi


# ---------------------------------------------------------------------
# Functional constructors (the public spelling used throughout repro)
# ---------------------------------------------------------------------

def contiguous(count: int, base: Datatype) -> Contiguous:
    """``count`` back-to-back instances of ``base``."""
    return Contiguous(count, base)


def vector(count: int, blocklength: int, stride: int, base: Datatype) -> Vector:
    """Strided blocks; ``stride`` counts base-type extents."""
    return Vector(count, blocklength, stride, base)


def hvector(
    count: int, blocklength: int, stride_bytes: int, base: Datatype
) -> Hvector:
    """Strided blocks; stride given in bytes."""
    return Hvector(count, blocklength, stride_bytes, base)


def indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], base: Datatype
) -> Indexed:
    """Scatter/gather blocks; displacements count base-type extents."""
    return Indexed(blocklengths, displacements, base)


def hindexed(
    blocklengths: Sequence[int],
    byte_displacements: Sequence[int],
    base: Datatype,
) -> Hindexed:
    """Scatter/gather blocks; displacements in bytes."""
    return Hindexed(blocklengths, byte_displacements, base)


def struct_type(
    blocklengths: Sequence[int],
    byte_displacements: Sequence[int],
    types: Sequence[Datatype],
    extent: int = None,  # type: ignore[assignment]
) -> Struct:
    """Heterogeneous record type; optionally force the extent (padding)."""
    return Struct(blocklengths, byte_displacements, types, extent)
