"""Differential verification of optimizing passes (DESIGN §16).

A pass is *verified*, not trusted: for every (program, fabric, seed)
the harness runs both arms through the full simulated stack and checks
three things, each against the zero-latency reference oracle:

1. **original arm** — the unoptimized program conforms (the baseline
   sanity the conformance suite already sweeps);
2. **optimized arm** — the optimized program conforms under *its own*
   oracle (its attributes/flushes as written);
3. **refinement** — the optimized run's observables, re-keyed onto the
   *original* program through the passes' provenance map, still
   satisfy the original program's oracle.

Arm 3 is the load-bearing one.  A self-check alone is vacuous for an
unsound pass: a program weakened by dropping a load-bearing flush is
perfectly consistent *with its own weakened text*.  Only by re-keying
the optimized execution onto the original text does the original's
stronger sequenced-before relation apply — which is exactly how the
planted ``coalesce_too_eager`` pass is caught.

Re-keying is sound because no pass touches a traced access or a
value-producing op: histories are compared structurally (per-rank
traced-read counts are part of the oracle), returns are pinned back to
source ops via ``op_map``, and finals are keyed by vid.  On top of the
oracle, *commutative* finals — counter and rmw variables, whose final
bytes are order-insensitive — must be bit-identical between the arms.

CLI::

    python -m repro.ir.verify --seeds 0:25 --fabric all
    python -m repro.ir.verify --seeds 0:25 --fabric unordered --each
    python -m repro.ir.verify --seeds 0:10 --passes coalesce_too_eager
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.oracle import CheckReport, CheckViolation, check_program
from repro.check.program import RmaProgram
from repro.check.runner import FABRICS, RunResult, run_program
from repro.ir.passes import PIPELINE, PassStats, optimize

__all__ = ["VerifyReport", "rekey_result", "verify_program",
           "check_optimized", "main"]


def rekey_result(program: RmaProgram, opt_result: RunResult,
                 op_map: Dict[int, int]) -> RunResult:
    """Re-key an optimized run's observables onto the original program.

    The history, finals, locations and notify counts carry over
    unchanged (passes never add, drop or reorder traced accesses or
    notified ops); per-op returns are pinned back to their source
    canonical indices through the provenance map."""
    returns: Dict[int, int] = {}
    for opt_idx, val in opt_result.returns.items():
        src = op_map.get(opt_idx)
        if src is not None:
            returns[src] = val
    return replace(opt_result, program=program, returns=returns)


@dataclass
class VerifyReport:
    """Outcome of verifying one (program, passes, fabric, seed)."""

    fabric: str
    seed: int
    passes: Tuple[str, ...]
    program: RmaProgram
    optimized: RmaProgram
    pass_stats: List[PassStats]
    original_report: CheckReport
    optimized_report: Optional[CheckReport]  # None when passes no-opped
    refinement_report: Optional[CheckReport]
    commutative_mismatches: List[str] = field(default_factory=list)
    sim_time_original: float = 0.0
    sim_time_optimized: float = 0.0

    @property
    def changed(self) -> bool:
        return self.optimized.ops != self.program.ops

    @property
    def ok(self) -> bool:
        if not self.original_report.ok:
            return False
        if not self.changed:
            return True
        return (self.optimized_report.ok and self.refinement_report.ok
                and not self.commutative_mismatches)

    def violations(self) -> List[CheckViolation]:
        """Every violation across the arms, arm-tagged."""
        out = list(self.original_report.violations)
        if self.optimized_report is not None:
            out += [CheckViolation(f"opt:{v.check}", v.message, v.vid)
                    for v in self.optimized_report.violations]
        if self.refinement_report is not None:
            out += [CheckViolation(f"refined:{v.check}", v.message, v.vid)
                    for v in self.refinement_report.violations]
        out += [CheckViolation("commutative-finals", msg)
                for msg in self.commutative_mismatches]
        return out


def _commutative_diff(program: RmaProgram, a: RunResult,
                      b: RunResult) -> List[str]:
    """Counter/rmw finals must be bit-identical between the arms: their
    outcomes are order-insensitive (commutative +1s; a single-user rmw
    sequence), so optimization has nothing legitimate to change."""
    out = []
    for v in program.vars:
        if v.vtype not in ("counter", "rmw"):
            continue
        if a.finals[v.vid] != b.finals[v.vid]:
            out.append(
                f"var {v.vid} ({v.vtype}): original arm {a.finals[v.vid]!r}"
                f" != optimized arm {b.finals[v.vid]!r}")
    return out


def verify_program(
    program: RmaProgram,
    fabric: str,
    seed: int,
    passes: Sequence[str] = PIPELINE,
    chaos: float = 0.0,
    mutations: Tuple[str, ...] = (),
    shared: bool = False,
    original_result: Optional[RunResult] = None,
) -> VerifyReport:
    """Run the three-arm differential check (see module docstring).

    ``original_result`` lets sweeps reuse one original-arm execution
    across several pass configurations of the same (program, fabric,
    seed)."""
    optimized, op_map, pass_stats = optimize(program, passes)
    if original_result is None:
        original_result = run_program(program, fabric, seed, chaos=chaos,
                                      mutations=mutations, shared=shared)
    original_report = check_program(original_result)

    if optimized.ops == program.ops:
        return VerifyReport(
            fabric=fabric, seed=seed, passes=tuple(passes),
            program=program, optimized=optimized, pass_stats=pass_stats,
            original_report=original_report, optimized_report=None,
            refinement_report=None,
            sim_time_original=original_result.sim_time,
            sim_time_optimized=original_result.sim_time)

    opt_result = run_program(optimized, fabric, seed, chaos=chaos,
                             mutations=mutations, shared=shared)
    optimized_report = check_program(opt_result)
    refinement_report = check_program(
        rekey_result(program, opt_result, op_map))
    return VerifyReport(
        fabric=fabric, seed=seed, passes=tuple(passes), program=program,
        optimized=optimized, pass_stats=pass_stats,
        original_report=original_report,
        optimized_report=optimized_report,
        refinement_report=refinement_report,
        commutative_mismatches=_commutative_diff(
            program, original_result, opt_result),
        sim_time_original=original_result.sim_time,
        sim_time_optimized=opt_result.sim_time)


def check_optimized(program: RmaProgram, config) -> CheckReport:
    """One merged report for a :class:`~repro.check.config.RunConfig`
    with ``ir_passes``: all three verification arms folded into a
    single :class:`CheckReport` so the fuzzing CLI, the shrinker and
    artifact replay can treat an optimized run like any other."""
    rep = verify_program(
        program, config.fabric, config.seed, passes=config.ir_passes,
        chaos=config.chaos, mutations=config.mutations,
        shared=config.shared)
    merged = CheckReport(program=program, fabric=config.fabric,
                         seed=config.seed)
    merged.violations = rep.violations()
    merged.checks_run = list(rep.original_report.checks_run)
    merged.skipped = list(rep.original_report.skipped)
    if rep.refinement_report is not None:
        merged.checks_run.append("ir-refinement")
        merged.skipped += rep.refinement_report.skipped
    return merged


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ir.verify",
        description="Differentially verify the IR optimizing passes.")
    parser.add_argument("--seeds", default="0:25",
                        help="seed range A:B or count N. Default: 0:25.")
    parser.add_argument("--fabric", default="all",
                        help="comma-separated fabric names or 'all'.")
    parser.add_argument("--passes", default=",".join(PIPELINE),
                        help="comma-separated pass names. Default: the "
                             "full pipeline.")
    parser.add_argument("--each", action="store_true",
                        help="verify every pass individually as well as "
                             "the listed pipeline.")
    parser.add_argument("--notify", action="store_true",
                        help="generate programs with the notified-RMA "
                             "clause.")
    parser.add_argument("--chaos", nargs="?", type=float, const=0.02,
                        default=0.0, metavar="P")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from repro.check.generator import generate_program

    if ":" in args.seeds:
        lo, hi = (int(s) for s in args.seeds.split(":", 1))
        seeds = range(lo, hi)
    else:
        seeds = range(int(args.seeds))
    fabrics = (sorted(FABRICS) if args.fabric == "all"
               else [f.strip() for f in args.fabric.split(",") if f.strip()])
    for f in fabrics:
        if f not in FABRICS:
            parser.error(f"unknown fabric {f!r}")
    pipeline = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    configs: List[Tuple[str, ...]] = [pipeline]
    if args.each and len(pipeline) > 1:
        configs = [(name,) for name in pipeline] + [pipeline]

    failures = checked = 0
    for seed in seeds:
        program = generate_program(seed, notify=args.notify)
        for fabric in fabrics:
            original_result = run_program(program, fabric, seed,
                                          chaos=args.chaos)
            for passes in configs:
                rep = verify_program(program, fabric, seed, passes=passes,
                                     chaos=args.chaos,
                                     original_result=original_result)
                checked += 1
                tag = "+".join(passes) if len(passes) <= 1 else "pipeline"
                if rep.ok:
                    if not args.quiet:
                        eliminated = sum(s.ops_eliminated
                                         for s in rep.pass_stats)
                        print(f"seed {seed} [{fabric}] {tag}: ok "
                              f"({eliminated} op(s) eliminated"
                              f"{'' if rep.changed else ', no-op'})")
                    continue
                failures += 1
                print(f"seed {seed} [{fabric}] {tag}: "
                      f"{len(rep.violations())} VIOLATION(S)")
                for v in rep.violations():
                    print(f"  {v}")
    print(f"verified {checked} configuration(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
