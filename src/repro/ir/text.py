"""Human-readable text form of the IR (mlir-flavored).

One op per line, fixed operand order, so the format round-trips
exactly: ``parse(print(ir)) == ir`` (dataclass equality), which implies
the parse-print-parse fixed point the round-trip suite pins.

::

    rma.program @"seed7" ranks(4) region(1024) {
      %v0 = rma.var data owner(2)
      %v1 = rma.var rmw owner(1) user(3)

      rma.put r0 w2 var(%v0) value(17) attrs[ordering] origin(0)
      %0 = rma.get r1 w2 var(%v0) attrs[blocking] origin(1)
      rma.put r3 w0 range(528, 96) value(9) origin(2)
      %1 = rma.rmw.cas r3 w1 var(%v1) value(42) cmp(7) origin(3)
      rma.flush.order r0 all origin(4)
      rma.fence origin(5)
      // epoch 1
      rma.compute r1 dur(3.25) origin(6)
    }

Window operands print only where they are free (remote ops and
flushes); local ops derive theirs from the rank, and epochs are derived
by counting fences — both are re-materialized at parse time.
"""

from __future__ import annotations

import re
from typing import List

from repro.check.program import SLOT_BYTES, VarSpec
from repro.ir.ops import IrOp, IrProgram

__all__ = ["print_ir", "parse_ir"]

#: Kinds whose window operand is printed (not derivable from the rank).
_WINDOWED = ("put", "get", "acc", "getacc", "rmw", "flush")


def _format_op(op: IrOp) -> str:
    parts: List[str] = []
    name = f"rma.{op.kind}"
    if op.kind == "flush":
        name += f".{op.flush}"
    elif op.kind == "rmw":
        name += f".{op.rmw_op}"
    parts.append(name)
    if op.kind != "fence":
        parts.append(f"r{op.rank}")
    if op.kind in _WINDOWED:
        parts.append("all" if op.window < 0 else f"w{op.window}")
    if op.var >= 0 and op.kind != "compute":
        parts.append(f"var(%v{op.var})")
    if op.is_raw:
        parts.append(f"range({op.disp}, {op.nbytes})")
    if op.value:
        parts.append(f"value({op.value})")
    if op.compare:
        parts.append(f"cmp({op.compare})")
    if op.kind == "compute":
        parts.append(f"dur({op.duration!r})")
    if op.kind == "wait_notify":
        parts.append(f"match({op.notify})")
    elif op.notify:
        parts.append(f"notify({op.notify})")
    if op.attrs:
        parts.append(f"attrs[{', '.join(op.attrs)}]")
    if op.via_xfer:
        parts.append("xfer")
    parts.append(f"origin({', '.join(str(i) for i in op.origin)})")
    line = " ".join(parts)
    if op.result >= 0:
        line = f"%{op.result} = {line}"
    return line


def print_ir(ir: IrProgram) -> str:
    """Render an :class:`IrProgram` in the text format."""
    out: List[str] = []
    strict = " strict" if ir.strict else ""
    out.append(f'rma.program @"{ir.label}" ranks({ir.n_ranks}) '
               f'region({ir.region_size}){strict} {{')
    for v in ir.vars:
        user = f" user({v.user})" if v.user >= 0 else ""
        out.append(f"  %v{v.vid} = rma.var {v.vtype} owner({v.owner}){user}")
    if ir.vars:
        out.append("")
    for op in ir.ops:
        out.append(f"  {_format_op(op)}")
        if op.kind == "fence":
            out.append(f"  // epoch {op.epoch + 1}")
    out.append("}")
    return "\n".join(out) + "\n"


_HEADER_RE = re.compile(
    r'^rma\.program @"([^"]*)" ranks\((\d+)\) region\((\d+)\)'
    r"( strict)? \{$")
_VAR_RE = re.compile(
    r"^%v(\d+) = rma\.var (data|counter|rmw) owner\((\d+)\)"
    r"(?: user\((\d+)\))?$")
_OP_RE = re.compile(
    r"^(?:%(\d+) = )?"
    r"rma\.([a-z_]+?)(?:\.([a-z_]+))?"
    r"(?: r(-?\d+))?"
    r"(?: (w\d+|all))?"
    r"(?: var\(%v(\d+)\))?"
    r"(?: range\((\d+), (\d+)\))?"
    r"(?: value\((-?\d+)\))?"
    r"(?: cmp\((-?\d+)\))?"
    r"(?: dur\(([^)]+)\))?"
    r"(?: match\((\d+)\))?"
    r"(?: notify\((\d+)\))?"
    r"(?: attrs\[([^\]]*)\])?"
    r"( xfer)?"
    r" origin\(([0-9, ]+)\)$")

#: rma.<name> suffixes that are op modes, not kinds.
_KINDS_WITH_MODE = {"flush", "rmw"}


def _parse_op(line: str, epoch: int, vars_by_vid) -> IrOp:
    m = _OP_RE.match(line)
    if m is None:
        raise ValueError(f"unparseable IR op line: {line!r}")
    (res, kind, mode, rank, window_tok, var, disp, nbytes, value, compare,
     dur, match, notify, attrs, xfer, origin) = m.groups()
    if mode is not None and kind not in _KINDS_WITH_MODE:
        raise ValueError(f"op kind {kind!r} takes no mode: {line!r}")
    rank_i = int(rank) if rank is not None else -1
    var_i = int(var) if var is not None else -1
    if window_tok is None:
        window = rank_i if kind in ("store", "load", "wait_notify") else -1
    else:
        window = -1 if window_tok == "all" else int(window_tok[1:])
    if var_i >= 0:
        disp_i, nbytes_i = SLOT_BYTES * var_i, SLOT_BYTES
    elif disp is not None:
        disp_i, nbytes_i = int(disp), int(nbytes)
    else:
        disp_i, nbytes_i = -1, 0
    notify_i = int(match) if match is not None else (
        int(notify) if notify is not None else 0)
    return IrOp(
        kind=kind, rank=rank_i, epoch=epoch, window=window, var=var_i,
        disp=disp_i, nbytes=nbytes_i,
        value=int(value) if value is not None else 0,
        compare=int(compare) if compare is not None else 0,
        rmw_op=mode if kind == "rmw" else "",
        flush=mode if kind == "flush" else "",
        attrs=tuple(a.strip() for a in attrs.split(",") if a.strip())
        if attrs is not None else (),
        via_xfer=xfer is not None,
        duration=float(dur) if dur is not None else 0.0,
        notify=notify_i,
        result=int(res) if res is not None else -1,
        origin=tuple(int(t) for t in origin.split(",")),
    )


def parse_ir(text: str) -> IrProgram:
    """Parse the text format back into an :class:`IrProgram`."""
    lines = []
    for raw in text.splitlines():
        line = raw.split("//", 1)[0].strip()
        if line:
            lines.append(line)
    if not lines:
        raise ValueError("empty IR text")
    m = _HEADER_RE.match(lines[0])
    if m is None:
        raise ValueError(f"bad IR header: {lines[0]!r}")
    label, n_ranks, region_size, strict = m.groups()
    if lines[-1] != "}":
        raise ValueError("IR text does not end with '}'")

    vars_: List[VarSpec] = []
    ops: List[IrOp] = []
    epoch = 0
    for line in lines[1:-1]:
        vm = _VAR_RE.match(line)
        if vm is not None:
            if ops:
                raise ValueError(f"var decl after first op: {line!r}")
            vid, vtype, owner, user = vm.groups()
            if int(vid) != len(vars_):
                raise ValueError(f"non-sequential var id: {line!r}")
            vars_.append(VarSpec(vid=int(vid), vtype=vtype,
                                 owner=int(owner),
                                 user=int(user) if user is not None else -1))
            continue
        op = _parse_op(line, epoch, vars_)
        if op.kind == "fence":
            epoch += 1
        ops.append(op)

    ir = IrProgram(
        n_ranks=int(n_ranks), vars=tuple(vars_), ops=tuple(ops),
        region_size=int(region_size), strict=strict is not None,
        label=label,
    )
    ir.validate()
    return ir
