"""The RMA program IR with verified optimizing passes (DESIGN §16).

- :mod:`repro.ir.ops` — the typed SSA-ish IR (:class:`IrProgram`),
  lossless round trip with :class:`~repro.check.program.RmaProgram`;
- :mod:`repro.ir.text` — the human-readable text format;
- :mod:`repro.ir.passes` — the optimizing pass pipeline, each pass a
  pure IR→IR function with a machine-checkable legality precondition;
- :mod:`repro.ir.verify` — the differential refinement harness that
  proves every pass preserves the conformance oracle's semantics on
  the full simulated stack, fabric by fabric.
"""

from repro.ir.ops import IR_KINDS, IrOp, IrProgram
from repro.ir.passes import (
    PASSES,
    PIPELINE,
    IrPassError,
    Pass,
    PassStats,
    optimize,
    run_pipeline,
)
from repro.ir.text import parse_ir, print_ir


def __getattr__(name):
    # Lazy: importing repro.ir.verify here would shadow the module when
    # it is executed as ``python -m repro.ir.verify`` (runpy warning).
    if name in ("VerifyReport", "rekey_result", "verify_program",
                "check_optimized"):
        from repro.ir import verify

        return getattr(verify, name)
    raise AttributeError(name)

__all__ = [
    "IR_KINDS",
    "IrOp",
    "IrPassError",
    "IrProgram",
    "PASSES",
    "PIPELINE",
    "Pass",
    "PassStats",
    "VerifyReport",
    "optimize",
    "parse_ir",
    "print_ir",
    "rekey_result",
    "run_pipeline",
    "verify_program",
]
