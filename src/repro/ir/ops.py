"""The RMA program IR: typed ops with explicit epoch/window operands.

:class:`IrProgram` is the SSA-ish promotion of
:class:`~repro.check.program.RmaProgram` (DESIGN §16).  Where the check
format keeps one flat op list with implicit structure, the IR makes the
structure *operands*:

- every op carries its **epoch** (the number of preceding fences) and
  the **window** it touches — the target rank whose exposed region the
  op reads or writes (``-1`` for "all"/"none") — so a pass never has to
  re-derive either;
- value-producing ops (``get``/``load``/``getacc``/``rmw``) name their
  result with a monotonically-assigned SSA id (``%N``), the stable key
  optimizing passes use to map observed returns back onto source ops;
- every op records its **origin** — the canonical-interleaving indices
  of the source op(s) it descends from — so a whole pass pipeline stays
  provenance-complete: the verifier re-keys an optimized run's
  observables onto the *original* program and checks them under the
  original's (stronger) oracle.

The op vocabulary is normalized relative to the check format: raw-range
scratch traffic (``noise``/``peek``) becomes a ``put``/``get`` with
``var = -1`` and an explicit byte range; the three read-modify-write
kinds collapse into one ``rmw`` op with an ``rmw_op`` operand; the
``order``/``complete`` calls become a single ``flush`` op with a mode;
the collective ``sync`` becomes ``fence``.  ``from_program`` /
``to_program`` are exact inverses — program → IR → program is an
identity, which the round-trip suite pins on 50 generated seeds.

The canonical op order is preserved: the IR's op list *is* the
canonical interleaving, and ``rank_view`` restricts it to one rank's
program order (plus the collective fences), exactly like
``RmaProgram.ops_for``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.check.program import SLOT_BYTES, ProgOp, RmaProgram, VarSpec

__all__ = ["IrOp", "IrProgram", "IR_KINDS", "RESULT_KINDS", "REMOTE_KINDS"]

#: The IR op vocabulary.
IR_KINDS = (
    "put",          # remote write: a var slot (var >= 0) or a raw range
    "store",        # local whole-slot write of an own data var
    "get",          # remote read: a var slot or a raw range (peek)
    "load",         # local read of an own data var
    "acc",          # accumulate(sum) on a counter var
    "getacc",       # get_accumulate(sum) on a counter var
    "rmw",          # cas / swap / fetch_add (the rmw_op operand)
    "flush",        # order / complete (the flush operand) to one window
    "fence",        # collective epoch boundary (complete_collective)
    "wait_notify",  # block until a notified put's board delivery
    "compute",      # local compute phase
)

#: Kinds that produce an SSA result value.
RESULT_KINDS = ("get", "load", "getacc", "rmw")

#: Kinds that put traffic on the wire toward a remote window.
REMOTE_KINDS = ("put", "get", "acc", "getacc", "rmw")

#: rmw_op operand values and the check-format kind each maps back to.
RMW_OPS = ("cas", "swap", "fetch_add")


@dataclass(frozen=True)
class IrOp:
    """One typed IR operation (see module docstring for the kinds)."""

    kind: str
    rank: int                     # issuing rank; fences use -1
    epoch: int                    # explicit epoch operand
    window: int = -1              # target rank's region; -1 = all/none
    var: int = -1                 # vid, or -1 for a raw byte range
    disp: int = -1                # byte displacement inside the window
    nbytes: int = 0               # access size in bytes
    value: int = 0                # fill byte / operand / rmw value
    compare: int = 0              # rmw cas compare value
    rmw_op: str = ""              # "cas" | "swap" | "fetch_add"
    flush: str = ""               # "order" | "complete"
    attrs: Tuple[str, ...] = ()   # RmaAttrs flags that are set
    via_xfer: bool = False
    duration: float = 0.0         # compute phase length (µs)
    notify: int = 0               # notification match value (0 = none)
    result: int = -1              # SSA result id, -1 when none
    origin: Tuple[int, ...] = ()  # source canonical op indices

    def __post_init__(self) -> None:
        if self.kind not in IR_KINDS:
            raise ValueError(f"unknown IR op kind {self.kind!r}")
        if self.kind == "rmw" and self.rmw_op not in RMW_OPS:
            raise ValueError(f"rmw needs an rmw_op operand: {self}")
        if self.kind == "flush" and self.flush not in ("order", "complete"):
            raise ValueError(f"flush needs a flush mode operand: {self}")

    def has(self, flag: str) -> bool:
        return flag in self.attrs

    @property
    def is_remote(self) -> bool:
        return self.kind in REMOTE_KINDS

    @property
    def is_raw(self) -> bool:
        """A raw-range scratch access (the check format's noise/peek)."""
        return self.kind in ("put", "get") and self.var < 0

    def interval(self) -> Optional[Tuple[int, int, int]]:
        """The (window, lo, hi) byte interval this op accesses, or
        ``None`` for ops that touch no window memory (flush/fence/
        compute/wait_notify)."""
        if self.kind in ("flush", "fence", "compute", "wait_notify"):
            return None
        return (self.window, self.disp, self.disp + self.nbytes)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind, "rank": self.rank,
                             "epoch": self.epoch, "window": self.window,
                             "origin": list(self.origin)}
        if self.var >= 0:
            d["var"] = self.var
        if self.disp >= 0:
            d["disp"] = self.disp
        if self.nbytes:
            d["nbytes"] = self.nbytes
        if self.value:
            d["value"] = self.value
        if self.compare:
            d["compare"] = self.compare
        if self.rmw_op:
            d["rmw_op"] = self.rmw_op
        if self.flush:
            d["flush"] = self.flush
        if self.attrs:
            d["attrs"] = list(self.attrs)
        if self.via_xfer:
            d["via_xfer"] = True
        if self.duration:
            d["duration"] = self.duration
        if self.notify:
            d["notify"] = self.notify
        if self.result >= 0:
            d["result"] = self.result
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "IrOp":
        return cls(
            kind=d["kind"], rank=d["rank"], epoch=d["epoch"],
            window=d["window"], var=d.get("var", -1),
            disp=d.get("disp", -1), nbytes=d.get("nbytes", 0),
            value=d.get("value", 0), compare=d.get("compare", 0),
            rmw_op=d.get("rmw_op", ""), flush=d.get("flush", ""),
            attrs=tuple(d.get("attrs", ())),
            via_xfer=d.get("via_xfer", False),
            duration=d.get("duration", 0.0), notify=d.get("notify", 0),
            result=d.get("result", -1),
            origin=tuple(d["origin"]),
        )


#: check-format kind -> IR kind for the rmw family.
_RMW_FROM = {"cas": "cas", "swap": "swap", "fetch_add": "fetch_add"}


def _op_to_ir(i: int, op: ProgOp, epoch: int, by_vid: Dict[int, VarSpec],
              next_result: List[int]) -> IrOp:
    """Lower one check-format op (at canonical index ``i``)."""

    def result_id() -> int:
        rid = next_result[0]
        next_result[0] += 1
        return rid

    origin = (i,)
    kind = op.kind
    if kind == "sync":
        return IrOp(kind="fence", rank=-1, epoch=epoch, origin=origin)
    if kind == "compute":
        return IrOp(kind="compute", rank=op.rank, epoch=epoch,
                    duration=op.duration, origin=origin)
    if kind in ("order", "complete"):
        return IrOp(kind="flush", rank=op.rank, epoch=epoch,
                    window=op.target, flush=kind, origin=origin)
    if kind == "wait_notify":
        return IrOp(kind="wait_notify", rank=op.rank, epoch=epoch,
                    window=op.rank, var=op.var,
                    disp=SLOT_BYTES * op.var, nbytes=SLOT_BYTES,
                    notify=op.notify, origin=origin)
    if kind == "noise":
        return IrOp(kind="put", rank=op.rank, epoch=epoch,
                    window=op.target, disp=op.disp, nbytes=op.nbytes,
                    value=op.value, attrs=op.attrs, origin=origin)
    if kind == "peek":
        return IrOp(kind="get", rank=op.rank, epoch=epoch,
                    window=op.target, disp=op.disp, nbytes=op.nbytes,
                    attrs=op.attrs, result=result_id(), origin=origin)

    v = by_vid[op.var]
    common = dict(rank=op.rank, epoch=epoch, window=v.owner, var=op.var,
                  disp=v.disp, nbytes=SLOT_BYTES, origin=origin)
    if kind == "put":
        return IrOp(kind="put", value=op.value, attrs=op.attrs,
                    via_xfer=op.via_xfer, notify=op.notify, **common)
    if kind == "store":
        # Local stores ignore attrs at run time, but generated programs
        # may carry them — keep them for the exact round trip.
        common["window"] = op.rank
        return IrOp(kind="store", value=op.value, attrs=op.attrs, **common)
    if kind == "get":
        return IrOp(kind="get", attrs=op.attrs, via_xfer=op.via_xfer,
                    result=result_id(), **common)
    if kind == "load":
        common["window"] = op.rank
        return IrOp(kind="load", result=result_id(), **common)
    if kind == "acc":
        return IrOp(kind="acc", value=op.value, attrs=op.attrs,
                    via_xfer=op.via_xfer, **common)
    if kind == "getacc":
        return IrOp(kind="getacc", value=op.value, attrs=op.attrs,
                    via_xfer=op.via_xfer, result=result_id(), **common)
    if kind in _RMW_FROM:
        return IrOp(kind="rmw", rmw_op=kind, value=op.value,
                    compare=op.compare, attrs=op.attrs,
                    result=result_id(), **common)
    raise ValueError(f"cannot lower op kind {kind!r}")  # pragma: no cover


def _ir_to_op(op: IrOp) -> ProgOp:
    """Raise one IR op back to the check format (exact inverse)."""
    kind = op.kind
    if kind == "fence":
        return ProgOp(rank=-1, kind="sync")
    if kind == "compute":
        return ProgOp(rank=op.rank, kind="compute", duration=op.duration)
    if kind == "flush":
        return ProgOp(rank=op.rank, kind=op.flush, target=op.window)
    if kind == "wait_notify":
        return ProgOp(rank=op.rank, kind="wait_notify", var=op.var,
                      notify=op.notify)
    if kind == "put":
        if op.var < 0:
            return ProgOp(rank=op.rank, kind="noise", target=op.window,
                          nbytes=op.nbytes, disp=op.disp, value=op.value,
                          attrs=op.attrs)
        return ProgOp(rank=op.rank, kind="put", var=op.var, value=op.value,
                      attrs=op.attrs, via_xfer=op.via_xfer,
                      notify=op.notify)
    if kind == "get":
        if op.var < 0:
            return ProgOp(rank=op.rank, kind="peek", target=op.window,
                          nbytes=op.nbytes, disp=op.disp, attrs=op.attrs)
        return ProgOp(rank=op.rank, kind="get", var=op.var, attrs=op.attrs,
                      via_xfer=op.via_xfer)
    if kind == "store":
        return ProgOp(rank=op.rank, kind="store", var=op.var,
                      value=op.value, attrs=op.attrs)
    if kind == "load":
        return ProgOp(rank=op.rank, kind="load", var=op.var)
    if kind == "acc":
        return ProgOp(rank=op.rank, kind="acc", var=op.var, value=op.value,
                      attrs=op.attrs, via_xfer=op.via_xfer)
    if kind == "getacc":
        return ProgOp(rank=op.rank, kind="getacc", var=op.var,
                      value=op.value, attrs=op.attrs, via_xfer=op.via_xfer)
    if kind == "rmw":
        return ProgOp(rank=op.rank, kind=op.rmw_op, var=op.var,
                      value=op.value, compare=op.compare, attrs=op.attrs)
    raise ValueError(f"cannot raise IR op kind {kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class IrProgram:
    """A complete IR program (ops in canonical-interleaving order)."""

    n_ranks: int
    vars: Tuple[VarSpec, ...]
    ops: Tuple[IrOp, ...]
    region_size: int = 1024
    strict: bool = False
    label: str = ""

    # -- conversion ------------------------------------------------------
    @classmethod
    def from_program(cls, program: RmaProgram) -> "IrProgram":
        program.validate()
        by_vid = {v.vid: v for v in program.vars}
        epochs = program.epochs()
        next_result = [0]
        ops = tuple(_op_to_ir(i, op, epochs[i], by_vid, next_result)
                    for i, op in enumerate(program.ops))
        ir = cls(n_ranks=program.n_ranks, vars=program.vars, ops=ops,
                 region_size=program.region_size, strict=program.strict,
                 label=program.label)
        ir.validate()
        return ir

    def to_program(self) -> RmaProgram:
        program = RmaProgram(
            n_ranks=self.n_ranks, vars=self.vars,
            ops=tuple(_ir_to_op(op) for op in self.ops),
            region_size=self.region_size, strict=self.strict,
            label=self.label,
        )
        program.validate()
        return program

    def op_map(self) -> Dict[int, int]:
        """Emitted canonical index -> single source index, for every op
        with one-op provenance (the re-keying map the verifier uses to
        pin an optimized run's returns back onto the original program).
        Merged ops (``len(origin) > 1``) are deliberately absent — they
        are never value-producing."""
        return {i: op.origin[0] for i, op in enumerate(self.ops)
                if len(op.origin) == 1}

    # -- views -----------------------------------------------------------
    def var(self, vid: int) -> VarSpec:
        return self.vars[vid]

    def rank_view(self, rank: int) -> List[Tuple[int, IrOp]]:
        """This rank's program order: its own ops plus every fence, as
        (canonical index, op) pairs."""
        return [(i, op) for i, op in enumerate(self.ops)
                if op.rank == rank or op.kind == "fence"]

    def n_epochs(self) -> int:
        return (self.ops[-1].epoch + 1) if self.ops else 1

    def results(self) -> Dict[int, int]:
        """SSA result id -> canonical index of its producer."""
        return {op.result: i for i, op in enumerate(self.ops)
                if op.result >= 0}

    def with_ops(self, ops) -> "IrProgram":
        return replace(self, ops=tuple(ops))

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        epoch = 0
        seen_results: set = set()
        claimed: set = set()
        for i, op in enumerate(self.ops):
            if op.epoch != epoch:
                raise ValueError(
                    f"op {i}: epoch operand {op.epoch} != derived {epoch}")
            if op.kind == "fence":
                epoch += 1
            if op.kind in RESULT_KINDS:
                if op.result < 0:
                    raise ValueError(f"op {i}: {op.kind} needs a result id")
                if op.result in seen_results:
                    raise ValueError(
                        f"op {i}: duplicate result id %{op.result}")
                seen_results.add(op.result)
            elif op.result >= 0:
                raise ValueError(
                    f"op {i}: {op.kind} must not carry a result id")
            if not op.origin:
                raise ValueError(f"op {i}: empty origin (provenance lost)")
            if claimed & set(op.origin):
                raise ValueError(
                    f"op {i}: origin {op.origin} overlaps another op's")
            claimed.update(op.origin)
            if op.var >= 0 and op.var >= len(self.vars):
                raise ValueError(f"op {i}: unknown var {op.var}")
        # The raised program enforces every check-format invariant
        # (ranks, scratch ranges, notify wellformedness, ...).
        self.to_program()

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_ranks": self.n_ranks,
            "region_size": self.region_size,
            "strict": self.strict,
            "label": self.label,
            "vars": [v.to_dict() for v in self.vars],
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "IrProgram":
        return cls(
            n_ranks=d["n_ranks"],
            region_size=d.get("region_size", 1024),
            strict=d.get("strict", False),
            label=d.get("label", ""),
            vars=tuple(VarSpec.from_dict(v) for v in d["vars"]),
            ops=tuple(IrOp.from_dict(o) for o in d["ops"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "IrProgram":
        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:
        return (f"<IrProgram {self.label or 'anon'}: {self.n_ranks} ranks, "
                f"{len(self.vars)} vars, {len(self.ops)} ops, "
                f"{self.n_epochs()} epoch(s)"
                f"{', strict' if self.strict else ''}>")
