"""Optimizing IR→IR passes with machine-checkable legality.

Every pass is split into three pure functions over an
:class:`~repro.ir.ops.IrProgram`:

- ``plan(ir)``    — compute the list of edits the pass wants to make;
- ``legal(ir, edits)`` — independently re-derive, edit by edit, the
  legality precondition against the consistency rules the conformance
  oracle enforces (:class:`repro.check.oracle._Sequencer`); returns the
  list of violated preconditions (empty = legal);
- ``apply(ir, edits)`` — perform the edits, preserving provenance
  (every surviving op keeps its ``origin``; merged ops concatenate
  theirs).

``Pass.run`` refuses to apply an illegal plan.  The soundness argument
for each pass is spelled out in DESIGN §16; the shape common to all of
them: the oracle only ever derives a must-happen-before edge between
two same-rank accesses of one variable from (a) the epoch boundary,
(b) an intervening covering flush, (c) the *later* op's ``ordering``
attribute, (d) the earlier op's ``blocking``+``atomicity`` or
``blocking``+``remote_completion`` pair, or (e) fabric FIFO.  A pass
may delete or weaken program text only when it can show no pair loses
its edge — and the verifier (:mod:`repro.ir.verify`) then *checks*
that claim differentially on every fabric by re-keying the optimized
run's observables onto the original program.

``coalesce_too_eager`` is the deliberately unsound test-only variant:
it merges every synchronization — explicit flushes *and* the per-op
sequence micro-flush the ``ordering`` attribute stands for — into the
epoch-closing completion collective, ignoring the ops in between that
relied on them (exactly the edits ``legal`` rejects), and skips the
legality gate.  It is planted to prove the differential harness has
the power to catch a bad pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.ops import IrOp, IrProgram

__all__ = ["PassStats", "Pass", "PASSES", "PIPELINE", "IrPassError",
           "run_pipeline", "optimize"]


class IrPassError(ValueError):
    """A pass's plan failed its own legality precondition."""


@dataclass
class PassStats:
    """What one pass did (the ``--ir`` report's row source)."""

    name: str
    ops_in: int = 0
    ops_out: int = 0
    flushes_removed: int = 0
    attrs_dropped: int = 0
    stores_elided: int = 0
    puts_merged: int = 0      # source puts folded into batches
    batches: int = 0          # batched puts emitted
    bytes_elided: int = 0     # payload bytes of elided dead stores
    bytes_batched: int = 0    # source payload bytes now riding batches

    @property
    def ops_eliminated(self) -> int:
        return self.ops_in - self.ops_out

    def to_dict(self) -> Dict[str, int]:
        return {
            "name": self.name, "ops_in": self.ops_in,
            "ops_out": self.ops_out,
            "ops_eliminated": self.ops_eliminated,
            "flushes_removed": self.flushes_removed,
            "attrs_dropped": self.attrs_dropped,
            "stores_elided": self.stores_elided,
            "puts_merged": self.puts_merged, "batches": self.batches,
            "bytes_elided": self.bytes_elided,
            "bytes_batched": self.bytes_batched,
        }


# ----------------------------------------------------------------------
# Shared predicates
# ----------------------------------------------------------------------
def _overlaps(a: IrOp, b: IrOp) -> bool:
    """Whether two ops access overlapping bytes of one window (var
    slots and raw scratch ranges live in disjoint halves, so plain
    interval arithmetic covers every combination)."""
    ia, ib = a.interval(), b.interval()
    if ia is None or ib is None:
        return False
    return ia[0] == ib[0] and ia[1] < ib[2] and ib[1] < ia[2]


def _flush_covers_op(f: IrOp, op: IrOp) -> bool:
    """Whether flush ``f`` covers remote op ``op``'s window."""
    return f.window < 0 or op.window == f.window


def _flush_covers_flush(g: IrOp, f: IrOp) -> bool:
    """Whether a later flush ``g`` subsumes flush ``f``: it must cover
    at least ``f``'s window, and ``complete`` (a full remote-completion
    flush) covers both modes while ``order`` only covers ``order``."""
    if g.window >= 0 and g.window != f.window and f.window >= 0:
        return False
    if g.window >= 0 and f.window < 0:
        return False  # f covered all targets, g only one
    return g.flush == "complete" or g.flush == f.flush


#: Purely local kinds a coalesced flush may skip over when looking for
#: its covering successor (they never put traffic on the wire, and the
#: oracle never sequences a mixed local/remote pair).
_LOCAL_KINDS = ("store", "load", "compute")


# ----------------------------------------------------------------------
# Pass 1: flush/fence coalescing
# ----------------------------------------------------------------------
def _coalesce_ok(ir: IrProgram, idx: int) -> Optional[str]:
    """The machine-checkable precondition for removing the flush at
    canonical index ``idx``; returns the justification, or ``None``
    when removal is NOT legal.

    Legal cases (soundness per DESIGN §16): the flush is *vacuous* —
    no covered remote traffic from its rank both before and after it
    within its epoch, so it can never be the intervening op of a
    sequenced pair (cross-epoch pairs are ordered by the fence
    already); or it is *subsumed* — the very next non-local op of its
    rank in the epoch is a covering flush, so any pair it ordered is
    still ordered by that flush."""
    f = ir.ops[idx]
    if f.kind != "flush":
        return None
    view = ir.rank_view(f.rank)
    pos = next(p for p, (i, _) in enumerate(view) if i == idx)
    before = any(op.is_remote and op.epoch == f.epoch
                 and _flush_covers_op(f, op) for _, op in view[:pos])
    after = any(op.is_remote and op.epoch == f.epoch
                and _flush_covers_op(f, op) for _, op in view[pos + 1:])
    if not (before and after):
        side = "before" if not before else "after"
        return f"vacuous: no covered remote op {side} it in epoch {f.epoch}"
    for i, op in view[pos + 1:]:
        if op.epoch != f.epoch or op.kind == "fence":
            break
        if op.kind in _LOCAL_KINDS:
            continue
        if op.kind == "flush" and _flush_covers_flush(op, f):
            return f"subsumed by adjacent covering flush at op {i}"
        break
    return None


def _coalesce_plan(ir: IrProgram) -> List[Tuple[int, str]]:
    plan = []
    for idx, op in enumerate(ir.ops):
        if op.kind != "flush":
            continue
        reason = _coalesce_ok(ir, idx)
        if reason is not None:
            plan.append((idx, reason))
    return plan


def _coalesce_legal(ir: IrProgram, edits: List[Tuple[int, str]]) -> List[str]:
    problems = []
    for idx, _ in edits:
        if ir.ops[idx].kind != "flush":
            problems.append(f"op {idx} is not a flush")
        elif _coalesce_ok(ir, idx) is None:
            problems.append(
                f"flush at op {idx} is load-bearing: covered remote "
                "traffic on both sides and no adjacent covering flush")
    return problems


def _remove_ops(ir: IrProgram, indices) -> IrProgram:
    gone = set(indices)
    return ir.with_ops(op for i, op in enumerate(ir.ops) if i not in gone)


def _coalesce_apply(ir, edits):
    stats = PassStats("coalesce_flushes", ops_in=len(ir.ops),
                      flushes_removed=len(edits))
    out = _remove_ops(ir, [i for i, _ in edits])
    stats.ops_out = len(out.ops)
    return out, stats


# ----------------------------------------------------------------------
# Test-only planted-unsound variant.  The (plausible-looking) bug: every
# epoch ends in a completion collective, so "obviously" every
# synchronization inside the epoch can be merged forward into it — the
# explicit flush ops, and the per-op sequence micro-flush that the
# `ordering` attribute stands for in this engine.  The conflation is
# the classic one: the collective provides *completion at the epoch
# boundary*, not *delivery order during the epoch*, so ops between a
# merged flush and the epoch's end lose the ordering they relied on.
# It also skips the legality gate, which flags exactly the
# load-bearing removals.
# ----------------------------------------------------------------------
def _eager_plan(ir: IrProgram) -> List[Tuple[int, str, str]]:
    plan = []
    for idx, op in enumerate(ir.ops):
        if op.kind == "flush":
            plan.append((idx, "flush",
                         "eagerly merged into the epoch-closing completion"))
        elif op.is_remote and op.has("ordering"):
            plan.append((idx, "ordering",
                         "per-op sequence micro-flush eagerly merged into "
                         "the epoch-closing completion"))
    return plan


def _eager_legal(ir: IrProgram, edits) -> List[str]:
    """The honest legality check the eager pass *skips*: reusing the
    sound passes' preconditions shows its plan is exactly the set of
    edits they refuse to make."""
    problems = []
    for idx, what, _ in edits:
        if what == "flush":
            if _coalesce_ok(ir, idx) is None:
                problems.append(f"flush at op {idx} is load-bearing")
        elif _relax_ok(ir, idx, "ordering") is None:
            problems.append(f"attr 'ordering' on op {idx} is load-bearing")
    return problems


def _eager_apply(ir, edits):
    stats = PassStats("coalesce_too_eager", ops_in=len(ir.ops))
    gone = {i for i, what, _ in edits if what == "flush"}
    strip = {i for i, what, _ in edits if what == "ordering"}
    ops = []
    for i, op in enumerate(ir.ops):
        if i in gone:
            stats.flushes_removed += 1
            continue
        if i in strip:
            stats.attrs_dropped += 1
            op = replace(op, attrs=tuple(a for a in op.attrs
                                         if a != "ordering"))
        ops.append(op)
    out = ir.with_ops(ops)
    stats.ops_out = len(out.ops)
    return out, stats


# ----------------------------------------------------------------------
# Pass 2: attribute relaxation
# ----------------------------------------------------------------------
def _relax_ok(ir: IrProgram, idx: int, attr: str) -> Optional[str]:
    """Precondition for dropping ``attr`` from the op at ``idx``.

    - ``ordering`` on op *b* only creates edges toward same-rank
      predecessors whose access aliases *b*'s in the same epoch; with
      no aliasing predecessor the attribute is free to go (the
      "non-aliasing targets" rule).
    - ``remote_completion`` only creates an edge together with
      ``blocking`` (and ``complete`` flushes fall back to a flush
      round trip for ack-less ops), so on a non-blocking op it is
      semantically inert — and dropping it is what lets the op ride
      the op-train on fabrics without hardware delivery acks.
    """
    b = ir.ops[idx]
    if attr not in b.attrs:
        return None
    if b.kind not in ("put", "get", "acc", "getacc"):
        return None
    if b.notify:
        return None  # notified litmus ops are left untouched
    if attr == "ordering":
        for i, a in ir.rank_view(b.rank):
            if i >= idx:
                break
            if a.is_remote and a.epoch == b.epoch and _overlaps(a, b):
                return None
        return f"no aliasing same-rank predecessor in epoch {b.epoch}"
    if attr == "remote_completion":
        if b.has("blocking"):
            return None
        return "inert without blocking: creates no completion edge"
    return None


def _relax_plan(ir: IrProgram) -> List[Tuple[int, str, str]]:
    plan = []
    for idx in range(len(ir.ops)):
        for attr in ("ordering", "remote_completion"):
            reason = _relax_ok(ir, idx, attr)
            if reason is not None:
                plan.append((idx, attr, reason))
    return plan


def _relax_legal(ir, edits) -> List[str]:
    problems = []
    for idx, attr, _ in edits:
        if _relax_ok(ir, idx, attr) is None:
            problems.append(
                f"attr {attr!r} on op {idx} is load-bearing")
    return problems


def _relax_apply(ir, edits):
    stats = PassStats("relax_attributes", ops_in=len(ir.ops),
                      ops_out=len(ir.ops), attrs_dropped=len(edits))
    drop: Dict[int, set] = {}
    for idx, attr, _ in edits:
        drop.setdefault(idx, set()).add(attr)
    ops = list(ir.ops)
    for idx, attrs in drop.items():
        op = ops[idx]
        ops[idx] = replace(
            op, attrs=tuple(a for a in op.attrs if a not in attrs))
    return ir.with_ops(ops), stats


# ----------------------------------------------------------------------
# Pass 3: dead-scratch-store elision
# ----------------------------------------------------------------------
def _elide_ok(ir: IrProgram, idx: int) -> Optional[str]:
    """Precondition for eliding the raw scratch put at ``idx``: no
    raw-range read (peek) anywhere in the program overlaps its bytes —
    scratch bytes outlive epochs, so a peek in *any* epoch keeps a
    store alive.  Raw puts are untraced (> 16 B by construction) and
    never enter the oracle's sequenced pairs, so an unobserved one is
    dead by definition."""
    p = ir.ops[idx]
    if not (p.kind == "put" and p.var < 0 and not p.notify):
        return None
    for op in ir.ops:
        if op.kind == "get" and op.var < 0 and _overlaps(op, p):
            return None
    return f"no peek overlaps [{p.disp}, {p.disp + p.nbytes}) on w{p.window}"


def _elide_plan(ir: IrProgram) -> List[Tuple[int, str]]:
    plan = []
    for idx, op in enumerate(ir.ops):
        if op.kind == "put" and op.var < 0:
            reason = _elide_ok(ir, idx)
            if reason is not None:
                plan.append((idx, reason))
    return plan


def _elide_legal(ir, edits) -> List[str]:
    problems = []
    for idx, _ in edits:
        if _elide_ok(ir, idx) is None:
            problems.append(f"scratch store at op {idx} is observable")
    return problems


def _elide_apply(ir, edits):
    stats = PassStats("elide_dead_stores", ops_in=len(ir.ops),
                      stores_elided=len(edits),
                      bytes_elided=sum(ir.ops[i].nbytes for i, _ in edits))
    out = _remove_ops(ir, [i for i, _ in edits])
    stats.ops_out = len(out.ops)
    return out, stats


# ----------------------------------------------------------------------
# Pass 4: small-op aggregation into batched puts
# ----------------------------------------------------------------------
def _run_mergeable(op: IrOp) -> bool:
    return (op.kind == "put" and op.var < 0 and not op.notify
            and not op.via_xfer)


def _aggregate_runs(ir: IrProgram) -> List[List[int]]:
    """Maximal mergeable runs: per rank, strictly consecutive raw puts
    (no other op of that rank between them) sharing window, fill
    value, attrs and epoch, whose byte intervals chain into one gapless
    interval."""
    runs: List[List[int]] = []
    for rank in range(ir.n_ranks):
        cur: List[int] = []
        lo = hi = 0

        def flush_run():
            if len(cur) >= 2:
                runs.append(list(cur))
            cur.clear()

        for idx, op in ir.rank_view(rank):
            if op.kind == "fence":
                flush_run()
                continue
            if cur:
                head = ir.ops[cur[0]]
                chains = not (op.disp > hi or op.disp + op.nbytes < lo)
                if (_run_mergeable(op) and op.window == head.window
                        and op.value == head.value
                        and op.attrs == head.attrs
                        and op.epoch == head.epoch and chains):
                    cur.append(idx)
                    lo = min(lo, op.disp)
                    hi = max(hi, op.disp + op.nbytes)
                    continue
                flush_run()
            if _run_mergeable(op):
                cur.append(idx)
                lo, hi = op.disp, op.disp + op.nbytes
        flush_run()
    return runs


def _aggregate_ok(ir: IrProgram, run: Sequence[int]) -> Optional[str]:
    """Precondition for merging ``run`` into one batched put: all
    members are mergeable raw puts of one rank/window/value/attr-set/
    epoch, consecutive in the rank's view, and their byte intervals
    union to a single gapless interval — so the batched put writes
    exactly the bytes the sources wrote, with the same fill."""
    if len(run) < 2:
        return None
    head = ir.ops[run[0]]
    for idx in run:
        op = ir.ops[idx]
        if not _run_mergeable(op):
            return None
        if (op.rank != head.rank or op.window != head.window
                or op.value != head.value or op.attrs != head.attrs
                or op.epoch != head.epoch):
            return None
    view_idx = [i for i, op in ir.rank_view(head.rank)]
    pos = [view_idx.index(i) for i in run]
    if pos != list(range(pos[0], pos[0] + len(run))):
        return None  # another op of this rank interleaves the run
    ivs = sorted((ir.ops[i].disp, ir.ops[i].disp + ir.ops[i].nbytes)
                 for i in run)
    hi = ivs[0][1]
    for lo2, hi2 in ivs[1:]:
        if lo2 > hi:
            return None  # gap: the batch would write unwritten bytes
        hi = max(hi, hi2)
    return (f"{len(run)} puts -> 1 batched put "
            f"[{ivs[0][0]}, {hi}) on w{head.window}")


def _aggregate_plan(ir: IrProgram) -> List[List[int]]:
    return [run for run in _aggregate_runs(ir)
            if _aggregate_ok(ir, run) is not None]


def _aggregate_legal(ir, edits) -> List[str]:
    problems = []
    for run in edits:
        if _aggregate_ok(ir, run) is None:
            problems.append(f"run {run} is not mergeable")
    return problems


def _aggregate_apply(ir, edits):
    stats = PassStats("aggregate_puts", ops_in=len(ir.ops),
                      batches=len(edits))
    merged: Dict[int, IrOp] = {}
    gone = set()
    for run in edits:
        head = ir.ops[run[0]]
        lo = min(ir.ops[i].disp for i in run)
        hi = max(ir.ops[i].disp + ir.ops[i].nbytes for i in run)
        origin = tuple(o for i in run for o in ir.ops[i].origin)
        merged[run[0]] = replace(head, disp=lo, nbytes=hi - lo,
                                 origin=origin)
        gone.update(run[1:])
        stats.puts_merged += len(run)
        stats.bytes_batched += sum(ir.ops[i].nbytes for i in run)
    ops = [merged.get(i, op) for i, op in enumerate(ir.ops)
           if i not in gone]
    out = ir.with_ops(ops)
    stats.ops_out = len(out.ops)
    return out, stats


# ----------------------------------------------------------------------
# Pass registry + pipeline driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Pass:
    """One optimizing pass: plan / legality precondition / apply."""

    name: str
    plan: Callable[[IrProgram], list]
    legal: Callable[[IrProgram, list], List[str]]
    apply: Callable[[IrProgram, list], Tuple[IrProgram, PassStats]]
    test_only: bool = False
    #: The planted-unsound variant skips the legality gate (that *is*
    #: the planted bug); every real pass enforces it.
    unchecked: bool = False

    def precondition(self, ir: IrProgram) -> List[str]:
        """The violated legality preconditions of this pass's plan on
        ``ir`` (empty = the pass is legal to run)."""
        return self.legal(ir, self.plan(ir))

    def run(self, ir: IrProgram) -> Tuple[IrProgram, PassStats]:
        edits = self.plan(ir)
        if not self.unchecked:
            problems = self.legal(ir, edits)
            if problems:
                raise IrPassError(
                    f"pass {self.name} planned illegal edits: {problems}")
        out, stats = self.apply(ir, edits)
        out.validate()
        return out, stats


PASSES: Dict[str, Pass] = {
    "coalesce_flushes": Pass(
        "coalesce_flushes", _coalesce_plan, _coalesce_legal,
        _coalesce_apply),
    "relax_attributes": Pass(
        "relax_attributes", _relax_plan, _relax_legal, _relax_apply),
    "elide_dead_stores": Pass(
        "elide_dead_stores", _elide_plan, _elide_legal, _elide_apply),
    "aggregate_puts": Pass(
        "aggregate_puts", _aggregate_plan, _aggregate_legal,
        _aggregate_apply),
    "coalesce_too_eager": Pass(
        "coalesce_too_eager", _eager_plan, _eager_legal,
        _eager_apply, test_only=True, unchecked=True),
}

#: The default pipeline, in application order: sync coalescing first
#: (exposes longer uninterrupted runs), relaxation second (makes runs
#: train-eligible), elision before aggregation (don't batch dead
#: bytes).
PIPELINE: Tuple[str, ...] = (
    "coalesce_flushes", "relax_attributes", "elide_dead_stores",
    "aggregate_puts",
)


def run_pipeline(ir: IrProgram,
                 names: Sequence[str] = PIPELINE,
                 ) -> Tuple[IrProgram, List[PassStats]]:
    """Run the named passes in order; returns the optimized IR and
    per-pass stats."""
    all_stats = []
    for name in names:
        try:
            ir, stats = PASSES[name].run(ir)
        except KeyError:
            raise ValueError(
                f"unknown pass {name!r}; choose from {sorted(PASSES)}"
            ) from None
        all_stats.append(stats)
    return ir, all_stats


def optimize(program, names: Sequence[str] = PIPELINE):
    """Optimize a check-format program through the pipeline.

    Returns ``(optimized_program, op_map, pass_stats)`` where
    ``op_map`` maps each optimized canonical op index back to its
    single source index (absent for merged ops) — the re-keying map the
    verifier uses."""
    ir = IrProgram.from_program(program)
    ir, all_stats = run_pipeline(ir, names)
    return ir.to_program(), ir.op_map(), all_stats
