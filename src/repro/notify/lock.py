"""MCS queue locks built on notified RMA (DESIGN §15.4).

The MCS lock keeps one *tail* word on a home rank and threads waiters
into a distributed queue: each contender swaps itself into the tail,
learns its predecessor from the swap's return value, and parks.  The
two hand-offs that classic shared-memory MCS does with spinning are
notified puts here:

- *enqueue*: the successor writes its identity into the predecessor's
  ``next`` slot with ``notify=MATCH_NEXT``;
- *grant*: the releasing holder writes the successor's ``grant`` slot
  with ``notify=MATCH_GRANT`` and the successor's ``wait_notify``
  returns — payload-before-notification means the successor owns the
  lock the moment it wakes.

No rank ever polls remote memory: every wait is a local
``wait_notify`` on the rank's own window slice, which is what makes
the lock O(1) remote ops per hand-off regardless of contention (the
property foMPI measures against ``MPI_Win_lock``).

:class:`McsTreeLock` composes two of these into a contention-localizing
tree: contenders first win their group's lock (home = the group
leader), and only group winners contend on the root lock — on a torus
or fat-tree, group = co-located ranks keeps most hand-off traffic off
the global links.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datatypes import BYTE
from repro.rma.target_mem import TargetMem

__all__ = ["McsLock", "McsTreeLock"]

#: Notification match values (per-lock window, so no cross-object
#: collisions: every lock owns its own window slice / board slots).
MATCH_NEXT = 1
MATCH_GRANT = 2

#: Per-rank window slice layout (all int64 words).
_TAIL_DISP = 0    # meaningful on the home rank only: 0 = free, r+1 = holder
_NEXT_DISP = 8    # successor rank + 1, written remotely by the successor
_GRANT_DISP = 16  # grant payload landing zone
_SLICE = 24


def _i64(value: int) -> np.ndarray:
    return np.array([value], dtype="<i8").view(np.uint8)


class McsLock:
    """A distributed MCS lock over one collectively created window.

    Collective construction::

        lock = yield from McsLock.create(ctx)        # home = rank 0
        yield from lock.acquire()
        ...                                          # critical section
        yield from lock.release()

    ``home`` names the rank whose window slice holds the tail word;
    ranks that never call :meth:`acquire` only pay the collective
    ``create``.  Hold and wait times are recorded into
    ``notify.lock.wait_us`` / ``notify.lock.hold_us`` histograms.
    """

    def __init__(self, ctx, alloc, tmems: List[TargetMem], home: int,
                 name: str = "mcs") -> None:
        self._ctx = ctx
        self._alloc = alloc
        self._tmems = tmems
        self._home = home
        self._name = name
        self._scratch = ctx.mem.space.alloc(16)
        self._acquired_at: Optional[float] = None
        self._holding = False

    @classmethod
    def create(cls, ctx, home: int = 0, comm=None, name: str = "mcs"):
        """Collectively build the lock window (``yield from``)."""
        comm = comm if comm is not None else ctx.comm
        alloc, tmems = yield from ctx.rma.expose_collective(_SLICE, comm=comm)
        ctx.mem.store(alloc, 0, np.zeros(_SLICE, dtype=np.uint8))
        yield from comm.barrier()
        return cls(ctx, alloc, tmems, home, name=name)

    # -- helpers -----------------------------------------------------------
    def _metrics(self):
        world = getattr(self._ctx, "world", None)
        return getattr(world, "metrics", None)

    def _read_local_i64(self, disp: int) -> int:
        # Runner protocol for reading one's own window under inbound
        # traffic: apply the arrived prefix, then fence the cache.
        self._ctx.rma.engine.materialize_inbound()
        self._ctx.mem.fence()
        return int(self._ctx.mem.load(self._alloc, disp, 8).view("<i8")[0])

    @property
    def holding(self) -> bool:
        """Whether this rank currently holds the lock."""
        return self._holding

    # -- the protocol ------------------------------------------------------
    def acquire(self, watch: Sequence[int] = ()):
        """Join the queue and block until the lock is held
        (``yield from``).  ``watch`` optionally names ranks whose death
        should abort the wait with a structured RmaError."""
        if self._holding:
            raise RuntimeError(f"lock {self._name!r}: acquire while holding")
        ctx = self._ctx
        me = ctx.rank
        t0 = ctx.sim.now
        # Clear my next slot *before* publishing myself as the tail —
        # after the swap a successor may write it at any moment.
        ctx.mem.store(self._alloc, _NEXT_DISP, _i64(0))
        ctx.mem.fence()
        pred = yield from ctx.rma.swap(
            self._tmems[self._home], _TAIL_DISP, "int64", me + 1
        )
        pred = int(pred)
        if pred != 0:
            # Enqueue behind the predecessor, then sleep until granted.
            ctx.mem.store(self._scratch, 0, _i64(me + 1))
            yield from ctx.rma.put(
                self._scratch, 0, 8, BYTE,
                self._tmems[pred - 1], _NEXT_DISP, 8, BYTE,
                notify=MATCH_NEXT,
            )
            wl = list(watch) or [pred - 1]
            yield from ctx.rma.wait_notify(
                self._tmems[me], MATCH_GRANT, watch=wl
            )
        self._holding = True
        self._acquired_at = ctx.sim.now
        m = self._metrics()
        if m is not None:
            m.counter("notify.lock.acquires", lock=self._name).inc()
            m.histogram("notify.lock.wait_us", lock=self._name).observe(
                ctx.sim.now - t0
            )

    def release(self):
        """Hand the lock to the successor, or free it (``yield from``)."""
        if not self._holding:
            raise RuntimeError(f"lock {self._name!r}: release without hold")
        ctx = self._ctx
        me = ctx.rank
        old = yield from ctx.rma.compare_and_swap(
            self._tmems[self._home], _TAIL_DISP, "int64", me + 1, 0
        )
        if int(old) != me + 1:
            # A successor swapped in behind us; its enqueue put may
            # still be in flight — wait for the notification, then the
            # payload (our next slot) is guaranteed visible.
            yield from ctx.rma.wait_notify(self._tmems[me], MATCH_NEXT)
            succ = self._read_local_i64(_NEXT_DISP) - 1
            ctx.mem.store(self._scratch, 8, _i64(me + 1))
            yield from ctx.rma.put(
                self._scratch, 8, 8, BYTE,
                self._tmems[succ], _GRANT_DISP, 8, BYTE,
                notify=MATCH_GRANT,
            )
        self._holding = False
        m = self._metrics()
        if m is not None and self._acquired_at is not None:
            m.histogram("notify.lock.hold_us", lock=self._name).observe(
                ctx.sim.now - self._acquired_at
            )
        self._acquired_at = None

    def locked(self, ctx=None):
        """Context-manager-free convenience: acquire, run, release is
        on the caller (generators cannot ``with``)."""
        return self.acquire()


class McsTreeLock:
    """Two-level MCS lock tree: group locks feeding a root lock.

    Ranks are partitioned into groups of ``group_size`` consecutive
    ranks; a contender first wins its group's MCS lock (home = the
    group's first rank), then the root lock (home = ``root``).  Release
    order is root first, then group — the next group winner inherits
    root contention, so at most ``n_groups`` ranks ever touch the root
    tail word and hand-off traffic stays group-local under contention.
    Deeper trees are this construction composed again.
    """

    def __init__(self, local: McsLock, root: McsLock, leader: int) -> None:
        self._local = local
        self._root = root
        self.leader = leader

    @classmethod
    def create(cls, ctx, group_size: int = 4, root: int = 0, comm=None,
               name: str = "mcs_tree"):
        """Collectively build both lock levels (``yield from``)."""
        comm = comm if comm is not None else ctx.comm
        leader = (ctx.rank // group_size) * group_size
        local = yield from McsLock.create(
            ctx, home=leader, comm=comm, name=f"{name}.local"
        )
        root_lock = yield from McsLock.create(
            ctx, home=root, comm=comm, name=f"{name}.root"
        )
        return cls(local, root_lock, leader)

    @property
    def holding(self) -> bool:
        return self._root.holding

    def acquire(self, watch: Sequence[int] = ()):
        yield from self._local.acquire(watch=watch)
        yield from self._root.acquire(watch=watch)

    def release(self):
        yield from self._root.release()
        yield from self._local.release()
