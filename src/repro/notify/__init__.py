"""RMA-built synchronization (DESIGN §15, layer 2).

foMPI demonstrated that with notified/remotely-visible RMA primitives,
classic synchronization objects — locks, barriers, queues — can be
built *entirely in user space* on the one-sided API, with no extra
progress threads or simulator shortcuts.  This package reproduces that
construction on the strawman interface:

- :class:`~repro.notify.lock.McsLock` /
  :class:`~repro.notify.lock.McsTreeLock` — MCS queue locks whose
  hand-off is a single notified put into the successor's window;
- :class:`~repro.notify.barrier.DisseminationBarrier` — the log2(P)
  round dissemination barrier over 1-byte notified puts with counting
  (monotone-signal) semantics;
- :class:`~repro.notify.queue.NotifyQueue` — a single-producer /
  single-consumer ring in the consumer's window, flow-controlled by
  credit notifications travelling the other way.

Everything here goes through the *public* ``ctx.rma`` API only
(``put(notify=...)``, ``wait_notify``, the §V RMWs) — the board, the
fabric and the reliable transport see ordinary traffic, so these
objects run unchanged on flat, torus and fat-tree fabrics and under
fault plans.  All of them report into ``ctx.world.metrics`` under the
``notify.*`` prefix (``repro.obs.report --notify`` renders them).
"""

from repro.notify.barrier import DisseminationBarrier
from repro.notify.lock import McsLock, McsTreeLock
from repro.notify.queue import NotifyQueue

__all__ = ["McsLock", "McsTreeLock", "DisseminationBarrier", "NotifyQueue"]
