"""Producer/consumer queue over notified RMA (DESIGN §15.4).

A :class:`NotifyQueue` is a single-producer / single-consumer ring
living in the *consumer's* window slice.  Data flows one way, credits
flow the other, and both directions are notified puts:

- the producer writes a slot and notifies ``MATCH_DATA`` — the
  consumer's ``wait_notify`` returning implies the payload is applied,
  so :meth:`pop` never reads a half-written slot;
- the consumer frees a slot and notifies ``MATCH_CREDIT`` into the
  producer's slice — the producer blocks in :meth:`push` only when the
  ring is full, giving bounded-memory flow control with zero remote
  polling (the UNR pipeline pattern).

Slot indices are purely local state (SPSC: each side owns its own
cursor), so the only traffic is one notified put per push and one
1-byte notified put per pop.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datatypes import BYTE
from repro.rma.target_mem import RmaError, TargetMem

__all__ = ["NotifyQueue"]

MATCH_DATA = 32
MATCH_CREDIT = 33


class NotifyQueue:
    """Bounded SPSC queue between ``producer`` and ``consumer`` ranks.

    Collective construction (every comm member participates in the
    window; only the two endpoints touch it afterwards)::

        q = yield from NotifyQueue.create(ctx, producer=0, consumer=1,
                                          capacity=8, slot_bytes=64)
        if ctx.rank == 0:
            yield from q.push(payload)          # np.uint8[slot_bytes]
        if ctx.rank == 1:
            data = yield from q.pop()

    :meth:`push` watches the consumer and :meth:`pop` watches the
    producer: if the peer dies mid-stream, the blocked side gets a
    structured :class:`~repro.rma.target_mem.RmaError` instead of
    hanging.  Waits are recorded into ``notify.queue.push_wait_us`` /
    ``notify.queue.pop_wait_us`` histograms.
    """

    def __init__(self, ctx, alloc, tmems: List[TargetMem], producer: int,
                 consumer: int, capacity: int, slot_bytes: int,
                 name: str = "spsc") -> None:
        if producer == consumer:
            raise ValueError("producer and consumer must differ")
        self._ctx = ctx
        self._alloc = alloc
        self._tmems = tmems
        self.producer = producer
        self.consumer = consumer
        self.capacity = capacity
        self.slot_bytes = slot_bytes
        self._name = name
        self._cursor = 0              # producer: next slot; consumer: next read
        self._credits = capacity      # producer-side only
        self._scratch = ctx.mem.space.alloc(max(slot_bytes, 1))
        self._credit_scratch = ctx.mem.space.alloc(1)
        ctx.mem.store(self._credit_scratch, 0, np.ones(1, dtype=np.uint8))

    @classmethod
    def create(cls, ctx, producer: int, consumer: int, capacity: int = 8,
               slot_bytes: int = 64, comm=None, name: str = "spsc"):
        """Collectively build the ring window (``yield from``)."""
        comm = comm if comm is not None else ctx.comm
        nbytes = max(1, capacity * slot_bytes)
        alloc, tmems = yield from ctx.rma.expose_collective(nbytes, comm=comm)
        yield from comm.barrier()
        return cls(ctx, alloc, tmems, producer, consumer, capacity,
                   slot_bytes, name=name)

    def _metrics(self):
        world = getattr(self._ctx, "world", None)
        return getattr(world, "metrics", None)

    def push(self, data: np.ndarray):
        """Producer: enqueue one slot (``yield from``); blocks while
        the ring is full.  ``data`` must be ``slot_bytes`` uint8."""
        ctx = self._ctx
        if ctx.rank != self.producer:
            raise RmaError(f"push from rank {ctx.rank}, producer is "
                           f"{self.producer}", op="queue.push")
        if len(data) != self.slot_bytes:
            raise RmaError(f"push payload must be {self.slot_bytes} bytes, "
                           f"got {len(data)}", op="queue.push")
        t0 = ctx.sim.now
        if self._credits == 0:
            yield from ctx.rma.wait_notify(
                self._tmems[self.producer], MATCH_CREDIT,
                watch=[self.consumer],
            )
            self._credits += 1
        self._credits -= 1
        slot = self._cursor % self.capacity
        self._cursor += 1
        ctx.mem.store(self._scratch, 0, np.asarray(data, dtype=np.uint8))
        yield from ctx.rma.put(
            self._scratch, 0, self.slot_bytes, BYTE,
            self._tmems[self.consumer], slot * self.slot_bytes,
            self.slot_bytes, BYTE,
            notify=MATCH_DATA,
        )
        m = self._metrics()
        if m is not None:
            m.counter("notify.queue.pushes", queue=self._name).inc()
            m.histogram("notify.queue.push_wait_us",
                        queue=self._name).observe(ctx.sim.now - t0)

    def pop(self):
        """Consumer: dequeue one slot (``yield from``); returns the
        ``slot_bytes`` payload as a fresh uint8 array."""
        ctx = self._ctx
        if ctx.rank != self.consumer:
            raise RmaError(f"pop from rank {ctx.rank}, consumer is "
                           f"{self.consumer}", op="queue.pop")
        t0 = ctx.sim.now
        yield from ctx.rma.wait_notify(
            self._tmems[self.consumer], MATCH_DATA,
            watch=[self.producer],
        )
        # The notification implies the slot payload is applied; fence
        # the local cache before loading it (runner protocol).
        ctx.rma.engine.materialize_inbound()
        ctx.mem.fence()
        slot = self._cursor % self.capacity
        self._cursor += 1
        data = np.array(
            ctx.mem.load(self._alloc, slot * self.slot_bytes,
                         self.slot_bytes),
            dtype=np.uint8,
        )
        # Free the slot: 1-byte credit notify back to the producer.
        yield from ctx.rma.put(
            self._credit_scratch, 0, 1, BYTE,
            self._tmems[self.producer], 0, 1, BYTE,
            notify=MATCH_CREDIT,
        )
        m = self._metrics()
        if m is not None:
            m.counter("notify.queue.pops", queue=self._name).inc()
            m.histogram("notify.queue.pop_wait_us",
                        queue=self._name).observe(ctx.sim.now - t0)
        return data
