"""Dissemination barrier over notified RMA (DESIGN §15.4).

The dissemination barrier runs ``ceil(log2(P))`` rounds; in round *k*
rank *r* signals rank ``(r + 2**k) mod P`` and waits for the signal
from ``(r - 2**k) mod P``.  After the last round every rank has
(transitively) heard from every other rank, which is the barrier
property.

Signals are 1-byte notified puts with a per-round match value, and
waits are counting (``wait_notify`` consumes one delivery): signals
are *monotone* — a rank sends its round-*k* signal of generation *n+1*
only after finishing generation *n* entirely — so consuming a
fast peer's next-generation signal early is sound (it carries strictly
more information), and no sense-reversal or generation tagging is
needed.  This is the counting-semaphore construction foMPI uses for
its RMA barriers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datatypes import BYTE
from repro.rma.target_mem import TargetMem

__all__ = ["DisseminationBarrier"]

#: Round *k* uses match value ``MATCH_ROUND0 + k``; kept away from the
#: lock/queue matches only for trace readability (each object owns its
#: own window, so boards never collide).
MATCH_ROUND0 = 16


class DisseminationBarrier:
    """A reusable P-rank barrier built purely on notified puts.

    Collective construction and use::

        bar = yield from DisseminationBarrier.create(ctx)
        yield from bar.wait()

    Every :meth:`wait` records its duration into the
    ``notify.barrier.duration_us`` histogram and bumps
    ``notify.barrier.generations``; the round count is published as the
    ``notify.barrier.rounds`` gauge at create time.
    """

    def __init__(self, ctx, alloc, tmems: List[TargetMem],
                 name: str = "dissem") -> None:
        self._ctx = ctx
        self._alloc = alloc
        self._tmems = tmems
        self._name = name
        self._size = len(tmems)
        self._rounds = max(1, (self._size - 1).bit_length())
        self._scratch = ctx.mem.space.alloc(1)
        ctx.mem.store(self._scratch, 0, np.ones(1, dtype=np.uint8))
        self.generation = 0
        m = self._metrics()
        if m is not None:
            m.gauge("notify.barrier.rounds", barrier=name).set(self._rounds)

    @classmethod
    def create(cls, ctx, comm=None, name: str = "dissem"):
        """Collectively build the signal window (``yield from``)."""
        comm = comm if comm is not None else ctx.comm
        alloc, tmems = yield from ctx.rma.expose_collective(
            max(1, max(1, (comm.size - 1).bit_length())), comm=comm
        )
        yield from comm.barrier()
        return cls(ctx, alloc, tmems, name=name)

    def _metrics(self):
        world = getattr(self._ctx, "world", None)
        return getattr(world, "metrics", None)

    @property
    def rounds(self) -> int:
        """Signal rounds per generation (``ceil(log2(P))``)."""
        return self._rounds

    def wait(self):
        """One barrier generation (``yield from``)."""
        ctx = self._ctx
        me = ctx.rank
        t0 = ctx.sim.now
        if self._size > 1:
            for k in range(self._rounds):
                peer = (me + (1 << k)) % self._size
                yield from ctx.rma.put(
                    self._scratch, 0, 1, BYTE,
                    self._tmems[peer], k, 1, BYTE,
                    notify=MATCH_ROUND0 + k,
                )
                yield from ctx.rma.wait_notify(
                    self._tmems[me], MATCH_ROUND0 + k
                )
        self.generation += 1
        m = self._metrics()
        if m is not None:
            m.counter("notify.barrier.generations", barrier=self._name).inc()
            m.histogram(
                "notify.barrier.duration_us", barrier=self._name
            ).observe(ctx.sim.now - t0)
