"""Experiment harness: paper workloads, sweeps, and table formatting.

The benchmarks under ``benchmarks/`` drive these entry points; keeping
the workload logic in the library means examples and tests can reuse it
and the benches stay declarative.
"""

from repro.bench.harness import Series, format_table, run_sweep
from repro.bench.workloads import (
    FIG2_ATTR_MODES,
    fig2_attribute_cost,
    halo_exchange_time,
    latency_once,
    mpi2_sync_mode_time,
)

__all__ = [
    "FIG2_ATTR_MODES",
    "Series",
    "fig2_attribute_cost",
    "format_table",
    "halo_exchange_time",
    "latency_once",
    "mpi2_sync_mode_time",
    "run_sweep",
]
