"""Wall-clock performance harness (``python -m repro.bench.perf``).

Unlike everything else in :mod:`repro.bench` — which reports *simulated*
microseconds — this harness measures how fast the simulator itself runs
on the host machine.  It times three tiers of the stack:

``kernel``
    Raw event-loop throughput (callbacks/sec and process-resume
    events/sec) on synthetic workloads that only touch
    :mod:`repro.sim`.  This is the number every other layer is bounded
    by.

``halo``
    An 8-rank strawman halo exchange — the kernel plus NIC/fabric/RMA
    engine on a small, latency-bound workload.

``fig2``
    The paper's Figure-2 attribute-cost sweep over message sizes — the
    full stack including fragmentation and the datatype engine on a
    bandwidth-bound workload.

Results are written to ``BENCH.json`` by default (atomically, via a
``.tmp`` rename); an existing output file is never overwritten unless
``--force`` is given, so a committed baseline such as ``BENCH_PR1.json``
cannot be clobbered by a stray run.  Pass ``--baseline FILE`` to embed a
previously recorded run under the ``"baseline"`` key so speedups are
tracked in one artifact; future PRs extend the trajectory by pointing
``--baseline`` at the previous PR's file.

``--compare FILE`` is the regression gate: it *recomputes* every
simulated-time observable recorded in ``FILE`` (the halo µs/iter and
each Figure-2 point) with the recorded parameters and exits non-zero
when any drifts beyond ``--tolerance`` (relative; default exact to
float noise).  Wall-clock numbers are machine-dependent and are never
compared — only simulated time, which must be bit-stable.  CI runs
this against ``BENCH_PR1.json`` so a change that silently shifts the
model's timing fails the build.

The harness feature-detects kernel APIs (``Simulator.schedule_call``)
so the *same file* runs against older revisions — that is how the
pre-optimization baseline embedded in ``BENCH_PR1.json`` was produced.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable, Dict, Optional

__all__ = ["run_all", "compare_to_baseline", "main"]


def _best_of(n: int, fn: Callable[[], float]) -> float:
    """Run ``fn`` ``n`` times; return the best (smallest) elapsed value."""
    return min(fn() for _ in range(n))


# ----------------------------------------------------------------------
# Tier 1: kernel microbenches
# ----------------------------------------------------------------------
def bench_kernel_callbacks(n_events: int = 200_000, n_tokens: int = 64) -> float:
    """Callbacks/sec for plain scheduled callbacks.

    ``n_tokens`` self-rescheduling tokens hop through simulated time
    until ``n_events`` callbacks have run — the fabric/NIC usage
    pattern (schedule a delivery, which schedules more work).
    """
    from repro.sim.core import Simulator

    sim = Simulator()
    remaining = [n_events]
    schedule_call = getattr(sim, "schedule_call", None)

    if schedule_call is not None:
        def hop(delay: float) -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                schedule_call(delay, hop, delay)
    else:  # pre-optimization kernels: closure per hop
        def hop(delay: float) -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(delay, lambda: hop(delay))

    for i in range(n_tokens):
        delay = 0.5 + (i % 7) * 0.25
        if schedule_call is not None:
            schedule_call(delay, hop, delay)
        else:
            sim.schedule(delay, lambda d=delay: hop(d))

    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return (n_events - max(0, remaining[0])) / elapsed


def bench_kernel_processes(n_procs: int = 500, n_waits: int = 400) -> float:
    """Process-resume events/sec: coroutines churning through timeouts.

    Exercises Event allocation, triggering, callback processing and
    generator resumption — the path every simulated rank program runs.
    """
    from repro.sim.core import Simulator

    sim = Simulator()

    def worker(i: int):
        for k in range(n_waits):
            yield sim.timeout(0.1 + (i + k) % 5 * 0.01)

    for i in range(n_procs):
        sim.spawn(worker(i))

    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    # Each wait is one Timeout event + one process resume.
    return (n_procs * n_waits) / elapsed


# ----------------------------------------------------------------------
# Tier 2/3: full-stack workloads
# ----------------------------------------------------------------------
def bench_halo(n_ranks: int = 8, halo_bytes: int = 8192,
               iterations: int = 40) -> Dict[str, float]:
    """Wall-clock of the strawman halo exchange (latency-bound stack)."""
    from repro.bench.workloads import halo_exchange_time

    t0 = time.perf_counter()
    sim_us = halo_exchange_time(
        "strawman", n_ranks=n_ranks, halo_bytes=halo_bytes,
        iterations=iterations,
    )
    wall = time.perf_counter() - t0
    return {
        "wall_sec": wall,
        "sim_us_per_iter": sim_us,
        "n_ranks": n_ranks,
        "halo_bytes": halo_bytes,
        "iterations": iterations,
    }


def bench_fig2(sizes=(1024, 16384, 65536),
               modes=("none", "ordering", "remote_complete"),
               puts_per_origin: int = 50) -> Dict[str, Any]:
    """Wall-clock of the Figure-2 attribute-cost sweep (bandwidth-bound
    stack: fragmentation, pack, many in-flight packets)."""
    from repro.bench.workloads import fig2_attribute_cost

    points = {}
    t0 = time.perf_counter()
    for mode in modes:
        for size in sizes:
            t1 = time.perf_counter()
            sim_us = fig2_attribute_cost(
                mode, size, puts_per_origin=puts_per_origin,
            )
            points[f"{mode}/{size}"] = {
                "wall_sec": time.perf_counter() - t1,
                "sim_us": sim_us,
            }
    return {
        "wall_sec_total": time.perf_counter() - t0,
        "puts_per_origin": puts_per_origin,
        "points": points,
    }


def _ir_workload(n_ranks: int = 6, rounds: int = 3,
                 puts_per_round: int = 16, put_bytes: int = 32):
    """The pinned IR-optimization benchmark program: per epoch, every
    rank streams a contiguous run of small same-value scratch puts at
    its right neighbor — each demanding ``remote_completion`` — then
    flushes twice (order, then complete); a final epoch peeks every
    written span so the stores are observable.

    The shape is chosen so each pipeline pass has measurable work: the
    order flush is subsumed by the adjacent complete (coalescing), the
    ``remote_completion`` on a non-blocking put is inert (relaxation —
    and on the InfiniBand-like fabric, which has no hardware delivery
    acks, it is exactly what keeps the run off the op-train), and the
    relaxed run is a gapless same-value interval chain (aggregation
    into one batched put that rides the train)."""
    from repro.check.program import ProgOp, RmaProgram

    ops = []
    for epoch in range(rounds):
        if epoch:
            ops.append(ProgOp(rank=-1, kind="sync"))
        for rank in range(n_ranks):
            tgt = (rank + 1) % n_ranks
            for k in range(puts_per_round):
                ops.append(ProgOp(
                    rank=rank, kind="noise", target=tgt,
                    disp=512 + k * put_bytes, nbytes=put_bytes,
                    value=1 + rank, attrs=("remote_completion",)))
            ops.append(ProgOp(rank=rank, kind="order", target=tgt))
            ops.append(ProgOp(rank=rank, kind="complete", target=tgt))
    ops.append(ProgOp(rank=-1, kind="sync"))
    for rank in range(n_ranks):
        ops.append(ProgOp(
            rank=rank, kind="peek", target=(rank + 1) % n_ranks,
            disp=512, nbytes=puts_per_round * put_bytes,
            attrs=("blocking",)))
    program = RmaProgram(n_ranks=n_ranks, vars=(), ops=tuple(ops),
                         label="ir-opt-bench")
    program.validate()
    return program


def bench_ir_opt(n_ranks: int = 6, rounds: int = 3,
                 puts_per_round: int = 16, repeats: int = 3) -> Dict[str, Any]:
    """Wall-clock + simulated time of the pinned IR workload, original
    vs pipeline-optimized, on the InfiniBand-like fabric (no hardware
    delivery acks — the fabric the relaxation pass targets)."""
    from repro.check.runner import run_program
    from repro.ir.passes import PIPELINE, optimize

    program = _ir_workload(n_ranks=n_ranks, rounds=rounds,
                           puts_per_round=puts_per_round)
    optimized, _, pass_stats = optimize(program, PIPELINE)

    def arm(p) -> Dict[str, Any]:
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_program(p, "infiniband", 0, trace=False)
            wall = time.perf_counter() - t0
            if best is None or wall < best["wall_sec"]:
                best = {
                    "wall_sec": wall,
                    "sim_us": result.sim_time,
                    "ops": len(p.ops),
                    "train_ops": result.stats["train_ops"],
                    "train_bytes": result.stats["train_bytes"],
                }
        return best

    original = arm(program)
    opt = arm(optimized)
    return {
        "fabric": "infiniband",
        "n_ranks": n_ranks,
        "rounds": rounds,
        "puts_per_round": puts_per_round,
        "pass_stats": [s.to_dict() for s in pass_stats],
        "original": original,
        "optimized": opt,
        "wall_speedup": original["wall_sec"] / opt["wall_sec"],
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_all(quick: bool = False) -> Dict[str, Any]:
    """Run every tier; return the results dict (no I/O)."""
    if quick:
        kernel_cb = _best_of(2, lambda: bench_kernel_callbacks(40_000))
        kernel_proc = _best_of(2, lambda: bench_kernel_processes(100, 100))
        halo = bench_halo(iterations=5)
        fig2 = bench_fig2(sizes=(1024, 16384), modes=("none", "ordering"),
                          puts_per_origin=10)
    else:
        kernel_cb = _best_of(3, lambda: bench_kernel_callbacks())
        kernel_proc = _best_of(3, lambda: bench_kernel_processes())
        halo = bench_halo()
        fig2 = bench_fig2()
    return {
        "kernel_callbacks_per_sec": kernel_cb,
        "kernel_process_events_per_sec": kernel_proc,
        "halo": halo,
        "fig2": fig2,
    }


def compare_to_baseline(baseline: Dict[str, Any],
                        tolerance: float = 1e-9,
                        walls: Optional[Dict[str, tuple]] = None) -> list:
    """Recompute the simulated-time observables recorded in ``baseline``
    and return drift messages (empty list = everything matches).

    Only simulated time is compared — the model's output, which must be
    reproducible to the bit on any machine.  ``tolerance`` is relative:
    a value ``v`` matches its recorded counterpart ``b`` when
    ``|v - b| <= tolerance * max(|b|, 1)``.

    ``walls``, when given a dict, is filled with per-observable
    ``(current_wall_sec, recorded_wall_sec_or_None)`` pairs so callers
    can report wall-clock speedups alongside the exactness gate (the
    recomputation runs the identical workload, so its wall time is a
    like-for-like measurement against the baseline's recorded one).
    """
    from repro.bench.workloads import fig2_attribute_cost, halo_exchange_time

    results = baseline.get("results", baseline)
    failures = []

    def check(name: str, current: float, recorded: float) -> None:
        if abs(current - recorded) > tolerance * max(abs(recorded), 1.0):
            failures.append(
                f"{name}: recomputed {current!r} != recorded {recorded!r}"
            )

    halo = results.get("halo") or {}
    if "sim_us_per_iter" in halo:
        t0 = time.perf_counter()
        sim_us = halo_exchange_time(
            "strawman",
            n_ranks=int(halo.get("n_ranks", 8)),
            halo_bytes=int(halo.get("halo_bytes", 8192)),
            iterations=int(halo.get("iterations", 40)),
        )
        if walls is not None:
            walls["halo"] = (time.perf_counter() - t0, halo.get("wall_sec"))
        check("halo.sim_us_per_iter", sim_us, halo["sim_us_per_iter"])

    fig2 = results.get("fig2") or {}
    puts_per_origin = int(fig2.get("puts_per_origin", 100))
    for key in sorted(fig2.get("points", {})):
        point = fig2["points"][key]
        if "sim_us" not in point:
            continue
        mode, _, size = key.rpartition("/")
        t0 = time.perf_counter()
        sim_us = fig2_attribute_cost(
            mode, int(size), puts_per_origin=puts_per_origin,
        )
        if walls is not None:
            walls[f"fig2.{key}"] = (time.perf_counter() - t0,
                                    point.get("wall_sec"))
        check(f"fig2.{key}.sim_us", sim_us, point["sim_us"])

    return failures


def _speedups(current: Dict[str, Any],
              baseline: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key in ("kernel_callbacks_per_sec", "kernel_process_events_per_sec"):
        if baseline.get(key):
            out[key] = current[key] / baseline[key]
    if baseline.get("halo", {}).get("wall_sec"):
        out["halo_wall"] = baseline["halo"]["wall_sec"] / current["halo"]["wall_sec"]
    if baseline.get("fig2", {}).get("wall_sec_total"):
        out["fig2_wall"] = (baseline["fig2"]["wall_sec_total"]
                            / current["fig2"]["wall_sec_total"])
    base_points = baseline.get("fig2", {}).get("points", {})
    cur_points = current.get("fig2", {}).get("points", {})
    for key in sorted(base_points):
        base_wall = base_points[key].get("wall_sec")
        cur_wall = cur_points.get(key, {}).get("wall_sec")
        if base_wall and cur_wall:
            out[f"fig2.{key}"] = base_wall / cur_wall
    return out


def _metadata() -> Dict[str, Any]:
    """Record the fast-path toggles and numpy version alongside the run,
    so a benchmark artifact is self-describing about which optimizations
    were active when it was produced."""
    from repro.mpi.nexus import CollectiveNexus
    from repro.network.nic import Nic
    from repro.rma.engine import RmaEngine

    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "train_enabled": RmaEngine.train_enabled,
        "burst_enabled": Nic.burst_enabled,
        "nexus_enabled": CollectiveNexus.enabled,
        "shared_default": RmaEngine.shared_default,
        "numpy": numpy_version,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Wall-clock performance harness for the repro simulator.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs (~seconds)")
    parser.add_argument("--out", default="BENCH.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite --out if it already exists")
    parser.add_argument("--baseline", default=None,
                        help="embed a previously recorded JSON as the baseline")
    parser.add_argument("--label", default="current",
                        help="label stored with this run (default: %(default)s)")
    parser.add_argument("--compare", default=None, metavar="FILE",
                        help="regression gate: recompute the simulated-time "
                             "observables recorded in FILE and exit non-zero "
                             "on drift (writes nothing)")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="relative sim-time drift tolerance for "
                             "--compare (default: %(default)s)")
    parser.add_argument("--no-train", action="store_true",
                        help="disable the vectorized op-train fast path (the "
                             "collective nexus, which requires it, then "
                             "declines too); CI runs --compare both ways to "
                             "pin that the fast paths never move simulated "
                             "time")
    parser.add_argument("--ir-opt", action="store_true",
                        help="run only the pinned IR-optimization point: "
                             "the same program executed original vs "
                             "pipeline-optimized on the InfiniBand-like "
                             "fabric (prints the point, writes nothing)")
    parser.add_argument("--shared-windows", action="store_true",
                        help="treat every RMA exposure as a shared-memory "
                             "window; the bench machines place one rank per "
                             "node, so the flavor must be inert there — CI "
                             "runs --compare with it on to pin that")
    args = parser.parse_args(argv)

    if args.no_train:
        from repro.rma.engine import RmaEngine
        RmaEngine.train_enabled = False
    if args.shared_windows:
        from repro.rma.engine import RmaEngine
        RmaEngine.shared_default = True

    if args.ir_opt:
        point = bench_ir_opt()
        orig, opt = point["original"], point["optimized"]
        print(f"[perf] ir-opt point ({point['fabric']}, "
              f"{point['n_ranks']} ranks, {point['rounds']} rounds x "
              f"{point['puts_per_round']} puts):")
        print(f"[perf]   original : {orig['ops']:4d} ops, "
              f"{orig['train_ops']:3d} train ops "
              f"({orig['train_bytes']} B), sim {orig['sim_us']:.2f} µs, "
              f"wall {orig['wall_sec']:.4f}s")
        print(f"[perf]   optimized: {opt['ops']:4d} ops, "
              f"{opt['train_ops']:3d} train ops "
              f"({opt['train_bytes']} B), sim {opt['sim_us']:.2f} µs, "
              f"wall {opt['wall_sec']:.4f}s")
        for s in point["pass_stats"]:
            print(f"[perf]   pass {s['name']}: "
                  f"-{s['ops_eliminated']} ops, "
                  f"{s['flushes_removed']} flushes, "
                  f"{s['attrs_dropped']} attrs, "
                  f"{s['bytes_batched']} B batched")
        print(f"[perf]   wall speedup: {point['wall_speedup']:.2f}x")
        return 0

    if args.compare:
        try:
            with open(args.compare) as fh:
                base_doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.compare!r}: {exc}")
        meta = _metadata()
        print(f"[perf] comparing simulated time against {args.compare} "
              f"(tolerance {args.tolerance:g}; train="
              f"{'on' if meta['train_enabled'] else 'off'} burst="
              f"{'on' if meta['burst_enabled'] else 'off'} nexus="
              f"{'on' if meta['nexus_enabled'] else 'off'} shm="
              f"{'on' if meta['shared_default'] else 'off'}) ...", flush=True)
        walls: Dict[str, tuple] = {}
        failures = compare_to_baseline(base_doc, tolerance=args.tolerance,
                                       walls=walls)
        for msg in failures:
            print(f"[perf] DRIFT {msg}")
        if failures:
            print(f"[perf] FAIL: {len(failures)} simulated-time observable(s) "
                  "drifted from the recorded baseline")
            return 1
        # Wall-clock is informational only — never part of the gate — but
        # the recomputation just re-ran the recorded workloads, so report
        # the like-for-like speedup against each recorded wall time.
        for key in sorted(walls):
            cur, recorded = walls[key]
            if recorded:
                print(f"[perf] wall {key}: recorded {recorded:.4f}s -> "
                      f"current {cur:.4f}s ({recorded / cur:.2f}x)")
        print("[perf] OK: all recorded simulated-time observables match")
        return 0

    # Refuse to clobber an existing result file (recorded baselines are
    # checked in); checked before the slow suite runs.
    if os.path.exists(args.out) and not args.force:
        parser.error(f"{args.out!r} already exists; pass --force to "
                     "overwrite or choose another --out")

    base_doc: Optional[Dict[str, Any]] = None
    if args.baseline:
        # Load up front so a bad path fails before the (slow) suite runs.
        try:
            with open(args.baseline) as fh:
                base_doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")

    print(f"[perf] running {'quick' if args.quick else 'full'} suite ...",
          flush=True)
    results = run_all(quick=args.quick)

    doc: Dict[str, Any] = {
        "schema": 1,
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "metadata": _metadata(),
        "results": results,
    }
    if base_doc is not None:
        base_results = base_doc.get("results", base_doc)
        doc["baseline"] = {
            "label": base_doc.get("label", "baseline"),
            "results": base_results,
        }
        doc["speedup"] = _speedups(results, base_results)

    tmp = args.out + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, args.out)

    print(f"[perf] kernel callbacks/sec:       {results['kernel_callbacks_per_sec']:>12,.0f}")
    print(f"[perf] kernel process events/sec:  {results['kernel_process_events_per_sec']:>12,.0f}")
    print(f"[perf] halo wall:  {results['halo']['wall_sec']:.3f}s "
          f"(sim {results['halo']['sim_us_per_iter']:.1f} µs/iter)")
    print(f"[perf] fig2 wall:  {results['fig2']['wall_sec_total']:.3f}s "
          f"({len(results['fig2']['points'])} points)")
    for key, val in doc.get("speedup", {}).items():
        print(f"[perf] speedup {key}: {val:.2f}x")
    print(f"[perf] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
