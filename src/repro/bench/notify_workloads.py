"""Notified-RMA workloads (DESIGN §15.5).

Three scenarios exercise the notification subsystem end-to-end across
the flat, torus and fat-tree fabric personalities:

- :func:`notified_halo_time` — the ring halo exchange of
  :func:`repro.bench.workloads.halo_exchange_time`, but synchronized by
  *notified puts* instead of a flush + barrier: each rank waits exactly
  for its two neighbours' halos, not for global quiescence.  The
  flush-based variant runs under the same geometry for the A/B.
- :func:`pipeline_run` — a rank chain connected by
  :class:`~repro.notify.queue.NotifyQueue` rings (the UNR
  producer/consumer pipeline): items flow through every stage with
  credit-based flow control and zero remote polling.
- :func:`lock_sweep_run` — all ranks hammer one
  :class:`~repro.notify.lock.McsLock` (or the two-level tree lock);
  lock wait/hold distributions come from the ``notify.lock.*``
  histograms the lock records.

:func:`run_notify_report` sweeps fabric x seed and returns one report
document (rendered by ``repro.obs.report --notify``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.bench.store import fabric_network
from repro.datatypes import BYTE
from repro.machine import generic_cluster
from repro.runtime import World

__all__ = [
    "NOTIFY_FABRICS",
    "notified_halo_time",
    "pipeline_run",
    "lock_sweep_run",
    "run_notify_report",
    "format_notify_table",
]

#: Fabric personalities the notify report sweeps (same set as the
#: sharded-store report).
NOTIFY_FABRICS = ("flat", "torus", "fattree")

_MATCH_FROM_LEFT = 1
_MATCH_FROM_RIGHT = 2


def _hist_stats(hist) -> Dict[str, float]:
    if hist is None or not hist.count:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": hist.count,
        "p50": hist.quantile(0.50),
        "p99": hist.quantile(0.99),
        "mean": hist.mean,
        "max": hist.max,
    }


def _merged_hist(world: World, name: str):
    """All same-named histograms in the world registry, merged across
    label sets (exact: fixed log2 buckets)."""
    merged = None
    for h in world.metrics.iter_histograms():
        if h.name != name or not h.count:
            continue
        if merged is None:
            from repro.obs.metrics import Histogram

            merged = Histogram(name)
        merged.merge(h)
    return merged


def notified_halo_time(
    mode: str = "notify",
    fabric: str = "flat",
    n_ranks: int = 16,
    halo_bytes: int = 1024,
    iterations: int = 10,
    seed: int = 0,
    world_out: Optional[list] = None,
) -> Dict[str, Any]:
    """Ring halo exchange; returns µs/iteration plus notify stats.

    ``mode="notify"`` synchronizes each iteration point-to-point: a
    rank proceeds once *its two* halos arrived (two ``wait_notify``
    calls).  ``mode="flush"`` is the strawman baseline — the same puts
    followed by ``complete_collective`` (global flush + barrier).
    """
    if mode not in ("notify", "flush"):
        raise ValueError(f"unknown halo mode {mode!r}")
    machine = generic_cluster(n_nodes=n_ranks)
    network = fabric_network(fabric)
    world = World(machine=machine, network=network, seed=seed)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(2 * halo_bytes)
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        src = ctx.mem.space.alloc(halo_bytes, fill=ctx.rank)
        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        for _ in range(iterations):
            if mode == "notify":
                yield from ctx.rma.put(
                    src, 0, halo_bytes, BYTE,
                    tmems[right], 0, halo_bytes, BYTE,
                    notify=_MATCH_FROM_LEFT,
                )
                yield from ctx.rma.put(
                    src, 0, halo_bytes, BYTE,
                    tmems[left], halo_bytes, halo_bytes, BYTE,
                    notify=_MATCH_FROM_RIGHT,
                )
                yield from ctx.rma.wait_notify(
                    tmems[ctx.rank], _MATCH_FROM_LEFT
                )
                yield from ctx.rma.wait_notify(
                    tmems[ctx.rank], _MATCH_FROM_RIGHT
                )
                ctx.rma.engine.materialize_inbound()
                ctx.mem.fence()
            else:
                yield from ctx.rma.put(
                    src, 0, halo_bytes, BYTE,
                    tmems[right], 0, halo_bytes, BYTE,
                )
                yield from ctx.rma.put(
                    src, 0, halo_bytes, BYTE,
                    tmems[left], halo_bytes, halo_bytes, BYTE,
                )
                yield from ctx.rma.complete_collective(ctx.comm)
        elapsed = (ctx.sim.now - t0) / iterations
        yield from ctx.comm.barrier()
        return elapsed

    out = world.run(program)
    world.collect_metrics()
    if world_out is not None:
        world_out.append(world)
    return {
        "workload": "halo",
        "mode": mode,
        "fabric": fabric,
        "seed": seed,
        "n_ranks": n_ranks,
        "halo_bytes": halo_bytes,
        "us_per_iter": max(out),
        "notify_latency": _hist_stats(_merged_hist(world,
                                                   "notify.latency_us")),
    }


def pipeline_run(
    fabric: str = "flat",
    n_ranks: int = 8,
    items: int = 32,
    capacity: int = 4,
    slot_bytes: int = 64,
    seed: int = 0,
    world_out: Optional[list] = None,
) -> Dict[str, Any]:
    """Producer/consumer chain over NotifyQueues; rank 0 sources
    ``items`` slots, every interior rank relays, the last rank sinks.
    Verifies end-to-end payload integrity and returns throughput plus
    queue wait distributions."""
    machine = generic_cluster(n_nodes=n_ranks)
    network = fabric_network(fabric)
    world = World(machine=machine, network=network, seed=seed)

    from repro.notify import NotifyQueue

    def program(ctx):
        queues = []
        for stage in range(ctx.size - 1):
            q = yield from NotifyQueue.create(
                ctx, producer=stage, consumer=stage + 1,
                capacity=capacity, slot_bytes=slot_bytes,
                name=f"stage{stage}",
            )
            queues.append(q)
        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        checksum = 0
        if ctx.rank == 0:
            for i in range(items):
                payload = np.full(slot_bytes, i % 251, dtype=np.uint8)
                yield from queues[0].push(payload)
        elif ctx.rank < ctx.size - 1:
            for _ in range(items):
                data = yield from queues[ctx.rank - 1].pop()
                yield from queues[ctx.rank].push(data)
        else:
            for i in range(items):
                data = yield from queues[ctx.rank - 1].pop()
                if int(data[0]) != i % 251:
                    raise AssertionError(
                        f"pipeline corrupted: item {i} reads {int(data[0])}"
                    )
                checksum += int(data[0])
        elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed, checksum

    out = world.run(program)
    world.collect_metrics()
    if world_out is not None:
        world_out.append(world)
    makespan = max(o[0] for o in out)
    return {
        "workload": "pipeline",
        "fabric": fabric,
        "seed": seed,
        "n_ranks": n_ranks,
        "items": items,
        "capacity": capacity,
        "makespan_us": makespan,
        "us_per_item": makespan / items,
        "sink_checksum": out[-1][1],
        "push_wait": _hist_stats(_merged_hist(world,
                                              "notify.queue.push_wait_us")),
        "pop_wait": _hist_stats(_merged_hist(world,
                                             "notify.queue.pop_wait_us")),
        "notify_latency": _hist_stats(_merged_hist(world,
                                                   "notify.latency_us")),
    }


def lock_sweep_run(
    fabric: str = "flat",
    n_ranks: int = 8,
    acquires: int = 4,
    hold_us: float = 2.0,
    kind: str = "mcs",
    group_size: int = 4,
    seed: int = 0,
    world_out: Optional[list] = None,
) -> Dict[str, Any]:
    """All ranks contend on one distributed lock; checks mutual
    exclusion from the simulated critical-section spans and reports the
    wait/hold distributions the lock recorded."""
    if kind not in ("mcs", "tree"):
        raise ValueError(f"unknown lock kind {kind!r}")
    machine = generic_cluster(n_nodes=n_ranks)
    network = fabric_network(fabric)
    world = World(machine=machine, network=network, seed=seed)

    from repro.notify import McsLock, McsTreeLock

    def program(ctx):
        if kind == "tree":
            lock = yield from McsTreeLock.create(ctx, group_size=group_size)
        else:
            lock = yield from McsLock.create(ctx)
        spans = []
        for _ in range(acquires):
            yield from lock.acquire()
            t0 = ctx.sim.now
            yield ctx.sim.timeout(hold_us)
            spans.append((t0, ctx.sim.now))
            yield from lock.release()
        yield from ctx.comm.barrier()
        return spans

    out = world.run(program)
    world.collect_metrics()
    if world_out is not None:
        world_out.append(world)
    spans = sorted(s for rank_spans in out for s in rank_spans)
    for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
        if a_end > b_start + 1e-9:
            raise AssertionError(
                f"mutual exclusion violated: sections overlap at {b_start}"
            )
    return {
        "workload": "lock",
        "kind": kind,
        "fabric": fabric,
        "seed": seed,
        "n_ranks": n_ranks,
        "acquires": n_ranks * acquires,
        "makespan_us": world.sim.now,
        "lock_wait": _hist_stats(_merged_hist(world, "notify.lock.wait_us")),
        "lock_hold": _hist_stats(_merged_hist(world, "notify.lock.hold_us")),
    }


def run_notify_report(
    fabrics: Tuple[str, ...] = NOTIFY_FABRICS,
    seeds: Tuple[int, ...] = (0,),
    quick: bool = False,
) -> Dict[str, Any]:
    """The full fabric x seed sweep: halo A/B, pipeline, lock."""
    iterations = 3 if quick else 10
    items = 12 if quick else 32
    acquires = 2 if quick else 4
    rows: List[Dict[str, Any]] = []
    for fabric in fabrics:
        for seed in seeds:
            rows.append(notified_halo_time(
                "notify", fabric=fabric, seed=seed, iterations=iterations))
            rows.append(notified_halo_time(
                "flush", fabric=fabric, seed=seed, iterations=iterations))
            rows.append(pipeline_run(fabric=fabric, seed=seed, items=items))
            rows.append(lock_sweep_run(fabric=fabric, seed=seed,
                                       acquires=acquires))
    return {
        "schema": 1,
        "workload": "notify",
        "fabrics": list(fabrics),
        "seeds": list(seeds),
        "rows": rows,
    }


def format_notify_table(doc: Dict[str, Any]) -> str:
    """The notify report as one aligned table (one row per run)."""
    from repro.obs.report import format_rows

    header = ["workload", "fabric", "seed", "metric", "value_us",
              "notify_p50", "notify_p99", "wait_p50", "wait_p99"]
    rows = [header]
    for r in doc["rows"]:
        lat = r.get("notify_latency", {})
        if r["workload"] == "halo":
            rows.append([
                f"halo/{r['mode']}", r["fabric"], str(r["seed"]),
                "us_per_iter", f"{r['us_per_iter']:.2f}",
                f"{lat.get('p50', 0.0):.2f}", f"{lat.get('p99', 0.0):.2f}",
                "-", "-",
            ])
        elif r["workload"] == "pipeline":
            wait = r["pop_wait"]
            rows.append([
                "pipeline", r["fabric"], str(r["seed"]),
                "us_per_item", f"{r['us_per_item']:.2f}",
                f"{lat.get('p50', 0.0):.2f}", f"{lat.get('p99', 0.0):.2f}",
                f"{wait['p50']:.2f}", f"{wait['p99']:.2f}",
            ])
        else:
            wait = r["lock_wait"]
            hold = r["lock_hold"]
            rows.append([
                f"lock/{r['kind']}", r["fabric"], str(r["seed"]),
                "makespan_us", f"{r['makespan_us']:.2f}",
                f"{hold['p50']:.2f}", f"{hold['p99']:.2f}",
                f"{wait['p50']:.2f}", f"{wait['p99']:.2f}",
            ])
    return format_rows(rows, left_align=(0, 1, 3))
