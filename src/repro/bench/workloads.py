"""Paper workloads.

The central one is :func:`fig2_attribute_cost` — the exact experiment of
the paper's Figure 2:

    "seven MPI processes (one on each of the XT5 nodes) concurrently do
    100 puts to overlapping memory regions on process 0, followed by a
    single RMA Complete call.  The experiment does these puts first with
    no attributes, then with ordering set, followed by remote completion
    set, and finally with atomicity attribute.  The Blocking attribute
    is always set."

Times are *simulated* microseconds (the harness converts to the paper's
milliseconds for display).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.datatypes import BYTE
from repro.machine import (
    MachineConfig,
    cray_xt5_catamount,
    cray_xt5_cnl,
    generic_cluster,
)
from repro.network import NetworkConfig, seastar_portals
from repro.rma import ALL_RANKS, RmaAttrs
from repro.runtime import World

__all__ = [
    "FIG2_ATTR_MODES",
    "fig2_attribute_cost",
    "latency_once",
    "halo_exchange_time",
    "mpi2_sync_mode_time",
    "hotspot_incast",
    "all_to_all_time",
    "torus_halo_time",
]

#: The four measured configurations of Figure 2, in plot order.
FIG2_ATTR_MODES = (
    "none",
    "ordering",
    "remote_complete",
    "atomicity+lock",
    "atomicity+thread",
)


def _fig2_attrs(mode: str) -> RmaAttrs:
    base = RmaAttrs(blocking=True)  # "The Blocking attribute is always set"
    if mode == "none":
        return base
    if mode == "ordering":
        return base.with_(ordering=True)
    if mode == "remote_complete":
        return base.with_(remote_completion=True)
    if mode == "ordering+remote_complete":
        return base.with_(ordering=True, remote_completion=True)
    if mode in ("atomicity+lock", "atomicity+thread"):
        return base.with_(atomicity=True)
    raise ValueError(f"unknown Figure-2 mode {mode!r}")


def fig2_attribute_cost(
    mode: str,
    size: int,
    n_origins: int = 7,
    puts_per_origin: int = 100,
    network: Optional[NetworkConfig] = None,
    machine: Optional[MachineConfig] = None,
    seed: int = 0,
    trace: bool = False,
    fault_plan=None,
    world_out: Optional[list] = None,
) -> float:
    """Run the Figure-2 workload; returns the elapsed simulated µs.

    ``mode`` selects the attribute set *and* the serializer: the paper
    measures atomicity twice, once with the communication-thread
    serializer and once with the coarse-grain process-level lock.
    The time reported is the slowest origin's "100 puts + 1 complete"
    span, matching a per-iteration timing on the real machine.

    ``trace`` enables the world's tracer so the observability layer can
    rebuild per-operation spans (:mod:`repro.obs.spans`) afterwards;
    ``world_out``, when given, receives the (finished) :class:`World`
    so callers can reach ``world.tracer`` / ``world.metrics``.
    """
    n_ranks = n_origins + 1
    attrs = _fig2_attrs(mode)
    if mode == "atomicity+lock":
        serializer = "lock"
        machine = machine or cray_xt5_catamount(n_ranks)
    elif mode == "atomicity+thread":
        serializer = "thread"
        machine = machine or cray_xt5_cnl(n_ranks)
    else:
        serializer = "auto"
        machine = machine or cray_xt5_cnl(n_ranks)
    network = network or seastar_portals()

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(
            max(size + 64, 4096)
        )
        yield from ctx.comm.barrier()
        elapsed = 0.0
        if ctx.rank != 0:
            src = ctx.mem.space.alloc(size, fill=ctx.rank)
            t0 = ctx.sim.now
            for _ in range(puts_per_origin):
                # all origins hit the same (overlapping) region on rank 0
                yield from ctx.rma.put(
                    src, 0, size, BYTE, tmems[0], 0, size, BYTE, attrs=attrs,
                )
            yield from ctx.rma.complete(ctx.comm, 0)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    world = World(machine=machine, network=network, seed=seed,
                  serializer=serializer, trace=trace, fault_plan=fault_plan)
    out = world.run(program)
    if world_out is not None:
        world_out.append(world)
    return max(out)


def latency_once(
    api: str,
    size: int = 8,
    network: Optional[NetworkConfig] = None,
    seed: int = 0,
) -> float:
    """Small-transfer latency of one remotely-complete update through
    different interfaces (ablation A4).

    ``api``: ``"strawman"`` (single blocking call), ``"mpi2_lock"``
    (lock/put/unlock), ``"mpi2_fence"`` (fence/put/fence),
    ``"send_recv"`` (two-sided).
    Returns simulated µs for one update, averaged over 10 repetitions.
    """
    reps = 10
    network = network or seastar_portals()

    def program(ctx):
        import numpy as np

        alloc, tmems = yield from ctx.rma.expose_collective(max(64, size))
        win = yield from ctx.mpi2.win_create(alloc)
        yield from ctx.comm.barrier()
        elapsed = 0.0
        if api == "strawman":
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(size)
                t0 = ctx.sim.now
                for _ in range(reps):
                    yield from ctx.rma.put(
                        src, 0, size, BYTE, tmems[0], 0, size, BYTE,
                        blocking=True, remote_completion=True,
                    )
                elapsed = (ctx.sim.now - t0) / reps
        elif api == "mpi2_lock":
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(size)
                t0 = ctx.sim.now
                for _ in range(reps):
                    yield from win.lock(0, shared=True)
                    yield from win.put(src, 0, size, BYTE, 0, 0)
                    yield from win.unlock(0)
                elapsed = (ctx.sim.now - t0) / reps
        elif api == "mpi2_fence":
            src = ctx.mem.space.alloc(size)
            yield from win.fence()
            t0 = ctx.sim.now
            for _ in range(reps):
                if ctx.rank == 1:
                    yield from win.put(src, 0, size, BYTE, 0, 0)
                yield from win.fence()
            elapsed = (ctx.sim.now - t0) / reps
        elif api == "send_recv":
            import numpy as np

            data = np.zeros(size, dtype=np.uint8)
            t0 = ctx.sim.now
            for _ in range(reps):
                if ctx.rank == 1:
                    yield from ctx.comm.send(data, dest=0)
                    yield from ctx.comm.recv(source=0)  # ack
                elif ctx.rank == 0:
                    yield from ctx.comm.recv(source=1)
                    yield from ctx.comm.send(None, dest=1)
            elapsed = (ctx.sim.now - t0) / reps
        else:
            raise ValueError(f"unknown api {api!r}")
        yield from ctx.comm.barrier()
        return elapsed

    out = World(n_ranks=2, network=network, seed=seed).run(program)
    return max(out)


def halo_exchange_time(
    sync_mode: str,
    n_ranks: int = 8,
    halo_bytes: int = 1024,
    iterations: int = 10,
    network: Optional[NetworkConfig] = None,
    seed: int = 0,
    machine: Optional[MachineConfig] = None,
) -> float:
    """1-D ring halo exchange under each MPI-2 sync mode, or the
    strawman API (ablation A5).  Returns µs per iteration.

    ``machine`` (optional) overrides the default one-rank-per-node
    cluster — e.g. to pin a placement strategy for topology runs.
    """
    network = network or seastar_portals()

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(2 * halo_bytes)
        win = yield from ctx.mpi2.win_create(alloc)
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        src = ctx.mem.space.alloc(halo_bytes, fill=ctx.rank)
        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        for _ in range(iterations):
            if sync_mode == "fence":
                yield from win.fence()
                yield from win.put(src, 0, halo_bytes, BYTE, right, 0)
                yield from win.put(src, 0, halo_bytes, BYTE, left, halo_bytes)
                yield from win.fence()
            elif sync_mode == "pscw":
                yield from win.post([left, right])
                yield from win.start([left, right])
                yield from win.put(src, 0, halo_bytes, BYTE, right, 0)
                yield from win.put(src, 0, halo_bytes, BYTE, left, halo_bytes)
                yield from win.complete()
                yield from win.wait()
            elif sync_mode == "lock":
                yield from win.lock(right, shared=True)
                yield from win.put(src, 0, halo_bytes, BYTE, right, 0)
                yield from win.unlock(right)
                yield from win.lock(left, shared=True)
                yield from win.put(src, 0, halo_bytes, BYTE, left, halo_bytes)
                yield from win.unlock(left)
                yield from ctx.comm.barrier()
            elif sync_mode == "strawman":
                yield from ctx.rma.put(src, 0, halo_bytes, BYTE,
                                       tmems[right], 0, halo_bytes, BYTE,
                                       blocking=True)
                yield from ctx.rma.put(src, 0, halo_bytes, BYTE,
                                       tmems[left], halo_bytes, halo_bytes,
                                       BYTE, blocking=True)
                yield from ctx.rma.complete_collective(ctx.comm)
            else:
                raise ValueError(f"unknown sync mode {sync_mode!r}")
        elapsed = (ctx.sim.now - t0) / iterations
        yield from ctx.comm.barrier()
        return elapsed

    if machine is None:
        out = World(n_ranks=n_ranks, network=network, seed=seed).run(program)
    else:
        out = World(machine=machine, network=network, seed=seed).run(program)
    return max(out)


def mpi2_sync_mode_time(sync_mode: str, **kwargs) -> float:
    """Alias of :func:`halo_exchange_time` named for the Fig. 1 bench."""
    return halo_exchange_time(sync_mode, **kwargs)


# ----------------------------------------------------------------------
# Topology workloads (PR 4)
# ----------------------------------------------------------------------

def _percentile(sorted_vals, pct: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_vals:
        return 0.0
    idx = max(0, int(len(sorted_vals) * pct / 100.0 + 0.5) - 1)
    return sorted_vals[min(idx, len(sorted_vals) - 1)]


def hotspot_incast(
    n_origins: int,
    put_bytes: int = 2048,
    puts_per_origin: int = 30,
    network: Optional[NetworkConfig] = None,
    machine: Optional[MachineConfig] = None,
    seed: int = 0,
    world_out: Optional[list] = None,
) -> Dict[str, float]:
    """Open-loop incast: ``n_origins`` ranks stream non-blocking puts at
    rank 0's memory, then complete.

    Because issue is open-loop (origins do not wait per put), the
    offered load at rank 0's ingress grows with the fan-in while the
    ingress capacity does not — once the fan-in saturates the hot
    link(s), per-put latency grows with the backlog and the tail (p99)
    explodes superlinearly.  On the flat fabric (no topology) there is
    no shared link, so latencies stay flat — the contrast *is* the
    point of the topology model.

    Returns a dict with per-put end-to-end latency percentiles
    (reconstructed from traced spans): ``p50``, ``p90``, ``p99``,
    ``max``, ``mean``, plus ``n_puts`` and ``makespan_us``.
    """
    from repro.obs.spans import build_spans

    n_ranks = n_origins + 1
    network = network or seastar_portals()
    machine = machine or generic_cluster(n_nodes=n_ranks)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(
            max(4096, put_bytes + 64))
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            src = ctx.mem.space.alloc(put_bytes, fill=ctx.rank)
            for _ in range(puts_per_origin):
                yield from ctx.rma.put(
                    src, 0, put_bytes, BYTE, tmems[0], 0, put_bytes, BYTE,
                )
            yield from ctx.rma.complete(ctx.comm, 0)
        yield from ctx.comm.barrier()
        return ctx.sim.now

    world = World(machine=machine, network=network, seed=seed, trace=True)
    t0_out = world.run(program)
    if world_out is not None:
        world_out.append(world)
    lats = sorted(
        s.total for s in build_spans(world.tracer) if s.kind == "put"
    )
    n = len(lats)
    return {
        "n_puts": float(n),
        "p50": _percentile(lats, 50.0),
        "p90": _percentile(lats, 90.0),
        "p99": _percentile(lats, 99.0),
        "max": lats[-1] if lats else 0.0,
        "mean": (sum(lats) / n) if n else 0.0,
        "makespan_us": max(t0_out),
    }


def all_to_all_time(
    n_ranks: int = 8,
    nbytes: int = 1024,
    iterations: int = 5,
    network: Optional[NetworkConfig] = None,
    machine: Optional[MachineConfig] = None,
    seed: int = 0,
) -> float:
    """Personalized all-to-all over strawman puts; µs per iteration.

    The densest traffic pattern: every rank puts to every other rank
    each iteration.  On a routed topology this loads *every* link and
    is the standard bisection-bandwidth stressor.
    """
    network = network or seastar_portals()
    machine = machine or generic_cluster(n_nodes=n_ranks)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(
            max(4096, nbytes * ctx.size))
        src = ctx.mem.space.alloc(nbytes, fill=ctx.rank)
        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        for _ in range(iterations):
            for peer in range(ctx.size):
                if peer == ctx.rank:
                    continue
                yield from ctx.rma.put(
                    src, 0, nbytes, BYTE,
                    tmems[peer], ctx.rank * nbytes, nbytes, BYTE,
                )
            yield from ctx.rma.complete_collective(ctx.comm)
        elapsed = (ctx.sim.now - t0) / iterations
        yield from ctx.comm.barrier()
        return elapsed

    out = World(machine=machine, network=network, seed=seed).run(program)
    return max(out)


def torus_halo_time(
    dims: Tuple[int, int, int] = (4, 4, 4),
    halo_bytes: int = 2048,
    iterations: int = 5,
    placement: str = "block",
    placement_seed: int = 0,
    network: Optional[NetworkConfig] = None,
    seed: int = 0,
    world_out: Optional[list] = None,
) -> float:
    """3-D halo exchange on a torus; µs per iteration.

    Each rank exchanges halos with its six grid neighbours (±x, ±y, ±z,
    periodic).  Under ``"block"`` placement the rank grid coincides with
    the torus coordinates, so every neighbour is one hop away; under
    ``"random"`` placement neighbours scatter across the machine and
    every exchange pays multi-hop routes through shared (contended)
    links — the communication-locality effect
    ``examples/torus_placement.py`` demonstrates.
    """
    from repro.topo.presets import torus_network

    network = network or torus_network(dims)
    n_ranks = dims[0] * dims[1] * dims[2]
    machine = generic_cluster(n_nodes=n_ranks).with_placement(
        placement, placement_seed)

    def coord_of(rank: int) -> Tuple[int, int, int]:
        # Row-major, z fastest — matches Torus3D.hosts enumeration.
        z = rank % dims[2]
        y = (rank // dims[2]) % dims[1]
        x = rank // (dims[1] * dims[2])
        return x, y, z

    def rank_of(coord: Tuple[int, int, int]) -> int:
        return (coord[0] * dims[1] + coord[1]) * dims[2] + coord[2]

    def neighbours(rank: int):
        x, y, z = coord_of(rank)
        for dim, (cx, cy, cz) in enumerate(((1, 0, 0), (0, 1, 0), (0, 0, 1))):
            for sign in (1, -1):
                yield rank_of((
                    (x + sign * cx) % dims[0],
                    (y + sign * cy) % dims[1],
                    (z + sign * cz) % dims[2],
                ))

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(6 * halo_bytes)
        src = ctx.mem.space.alloc(halo_bytes, fill=ctx.rank)
        peers = list(neighbours(ctx.rank))
        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        for _ in range(iterations):
            for slot, peer in enumerate(peers):
                yield from ctx.rma.put(
                    src, 0, halo_bytes, BYTE,
                    tmems[peer], slot * halo_bytes, halo_bytes, BYTE,
                )
            yield from ctx.rma.complete_collective(ctx.comm)
        elapsed = (ctx.sim.now - t0) / iterations
        yield from ctx.comm.barrier()
        return elapsed

    world = World(machine=machine, network=network, seed=seed)
    out = world.run(program)
    if world_out is not None:
        world_out.append(world)
    return max(out)
