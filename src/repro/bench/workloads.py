"""Paper workloads.

The central one is :func:`fig2_attribute_cost` — the exact experiment of
the paper's Figure 2:

    "seven MPI processes (one on each of the XT5 nodes) concurrently do
    100 puts to overlapping memory regions on process 0, followed by a
    single RMA Complete call.  The experiment does these puts first with
    no attributes, then with ordering set, followed by remote completion
    set, and finally with atomicity attribute.  The Blocking attribute
    is always set."

Times are *simulated* microseconds (the harness converts to the paper's
milliseconds for display).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.datatypes import BYTE
from repro.machine import (
    MachineConfig,
    cray_xt5_catamount,
    cray_xt5_cnl,
    generic_cluster,
)
from repro.network import NetworkConfig, seastar_portals
from repro.rma import ALL_RANKS, RmaAttrs
from repro.runtime import World

__all__ = [
    "FIG2_ATTR_MODES",
    "fig2_attribute_cost",
    "latency_once",
    "halo_exchange_time",
    "mpi2_sync_mode_time",
]

#: The four measured configurations of Figure 2, in plot order.
FIG2_ATTR_MODES = (
    "none",
    "ordering",
    "remote_complete",
    "atomicity+lock",
    "atomicity+thread",
)


def _fig2_attrs(mode: str) -> RmaAttrs:
    base = RmaAttrs(blocking=True)  # "The Blocking attribute is always set"
    if mode == "none":
        return base
    if mode == "ordering":
        return base.with_(ordering=True)
    if mode == "remote_complete":
        return base.with_(remote_completion=True)
    if mode == "ordering+remote_complete":
        return base.with_(ordering=True, remote_completion=True)
    if mode in ("atomicity+lock", "atomicity+thread"):
        return base.with_(atomicity=True)
    raise ValueError(f"unknown Figure-2 mode {mode!r}")


def fig2_attribute_cost(
    mode: str,
    size: int,
    n_origins: int = 7,
    puts_per_origin: int = 100,
    network: Optional[NetworkConfig] = None,
    machine: Optional[MachineConfig] = None,
    seed: int = 0,
    trace: bool = False,
    fault_plan=None,
    world_out: Optional[list] = None,
) -> float:
    """Run the Figure-2 workload; returns the elapsed simulated µs.

    ``mode`` selects the attribute set *and* the serializer: the paper
    measures atomicity twice, once with the communication-thread
    serializer and once with the coarse-grain process-level lock.
    The time reported is the slowest origin's "100 puts + 1 complete"
    span, matching a per-iteration timing on the real machine.

    ``trace`` enables the world's tracer so the observability layer can
    rebuild per-operation spans (:mod:`repro.obs.spans`) afterwards;
    ``world_out``, when given, receives the (finished) :class:`World`
    so callers can reach ``world.tracer`` / ``world.metrics``.
    """
    n_ranks = n_origins + 1
    attrs = _fig2_attrs(mode)
    if mode == "atomicity+lock":
        serializer = "lock"
        machine = machine or cray_xt5_catamount(n_ranks)
    elif mode == "atomicity+thread":
        serializer = "thread"
        machine = machine or cray_xt5_cnl(n_ranks)
    else:
        serializer = "auto"
        machine = machine or cray_xt5_cnl(n_ranks)
    network = network or seastar_portals()

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(
            max(size + 64, 4096)
        )
        yield from ctx.comm.barrier()
        elapsed = 0.0
        if ctx.rank != 0:
            src = ctx.mem.space.alloc(size, fill=ctx.rank)
            t0 = ctx.sim.now
            for _ in range(puts_per_origin):
                # all origins hit the same (overlapping) region on rank 0
                yield from ctx.rma.put(
                    src, 0, size, BYTE, tmems[0], 0, size, BYTE, attrs=attrs,
                )
            yield from ctx.rma.complete(ctx.comm, 0)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    world = World(machine=machine, network=network, seed=seed,
                  serializer=serializer, trace=trace, fault_plan=fault_plan)
    out = world.run(program)
    if world_out is not None:
        world_out.append(world)
    return max(out)


def latency_once(
    api: str,
    size: int = 8,
    network: Optional[NetworkConfig] = None,
    seed: int = 0,
) -> float:
    """Small-transfer latency of one remotely-complete update through
    different interfaces (ablation A4).

    ``api``: ``"strawman"`` (single blocking call), ``"mpi2_lock"``
    (lock/put/unlock), ``"mpi2_fence"`` (fence/put/fence),
    ``"send_recv"`` (two-sided).
    Returns simulated µs for one update, averaged over 10 repetitions.
    """
    reps = 10
    network = network or seastar_portals()

    def program(ctx):
        import numpy as np

        alloc, tmems = yield from ctx.rma.expose_collective(max(64, size))
        win = yield from ctx.mpi2.win_create(alloc)
        yield from ctx.comm.barrier()
        elapsed = 0.0
        if api == "strawman":
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(size)
                t0 = ctx.sim.now
                for _ in range(reps):
                    yield from ctx.rma.put(
                        src, 0, size, BYTE, tmems[0], 0, size, BYTE,
                        blocking=True, remote_completion=True,
                    )
                elapsed = (ctx.sim.now - t0) / reps
        elif api == "mpi2_lock":
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(size)
                t0 = ctx.sim.now
                for _ in range(reps):
                    yield from win.lock(0, shared=True)
                    yield from win.put(src, 0, size, BYTE, 0, 0)
                    yield from win.unlock(0)
                elapsed = (ctx.sim.now - t0) / reps
        elif api == "mpi2_fence":
            src = ctx.mem.space.alloc(size)
            yield from win.fence()
            t0 = ctx.sim.now
            for _ in range(reps):
                if ctx.rank == 1:
                    yield from win.put(src, 0, size, BYTE, 0, 0)
                yield from win.fence()
            elapsed = (ctx.sim.now - t0) / reps
        elif api == "send_recv":
            import numpy as np

            data = np.zeros(size, dtype=np.uint8)
            t0 = ctx.sim.now
            for _ in range(reps):
                if ctx.rank == 1:
                    yield from ctx.comm.send(data, dest=0)
                    yield from ctx.comm.recv(source=0)  # ack
                elif ctx.rank == 0:
                    yield from ctx.comm.recv(source=1)
                    yield from ctx.comm.send(None, dest=1)
            elapsed = (ctx.sim.now - t0) / reps
        else:
            raise ValueError(f"unknown api {api!r}")
        yield from ctx.comm.barrier()
        return elapsed

    out = World(n_ranks=2, network=network, seed=seed).run(program)
    return max(out)


def halo_exchange_time(
    sync_mode: str,
    n_ranks: int = 8,
    halo_bytes: int = 1024,
    iterations: int = 10,
    network: Optional[NetworkConfig] = None,
    seed: int = 0,
) -> float:
    """1-D ring halo exchange under each MPI-2 sync mode, or the
    strawman API (ablation A5).  Returns µs per iteration."""
    network = network or seastar_portals()

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(2 * halo_bytes)
        win = yield from ctx.mpi2.win_create(alloc)
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        src = ctx.mem.space.alloc(halo_bytes, fill=ctx.rank)
        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        for _ in range(iterations):
            if sync_mode == "fence":
                yield from win.fence()
                yield from win.put(src, 0, halo_bytes, BYTE, right, 0)
                yield from win.put(src, 0, halo_bytes, BYTE, left, halo_bytes)
                yield from win.fence()
            elif sync_mode == "pscw":
                yield from win.post([left, right])
                yield from win.start([left, right])
                yield from win.put(src, 0, halo_bytes, BYTE, right, 0)
                yield from win.put(src, 0, halo_bytes, BYTE, left, halo_bytes)
                yield from win.complete()
                yield from win.wait()
            elif sync_mode == "lock":
                yield from win.lock(right, shared=True)
                yield from win.put(src, 0, halo_bytes, BYTE, right, 0)
                yield from win.unlock(right)
                yield from win.lock(left, shared=True)
                yield from win.put(src, 0, halo_bytes, BYTE, left, halo_bytes)
                yield from win.unlock(left)
                yield from ctx.comm.barrier()
            elif sync_mode == "strawman":
                yield from ctx.rma.put(src, 0, halo_bytes, BYTE,
                                       tmems[right], 0, halo_bytes, BYTE,
                                       blocking=True)
                yield from ctx.rma.put(src, 0, halo_bytes, BYTE,
                                       tmems[left], halo_bytes, halo_bytes,
                                       BYTE, blocking=True)
                yield from ctx.rma.complete_collective(ctx.comm)
            else:
                raise ValueError(f"unknown sync mode {sync_mode!r}")
        elapsed = (ctx.sim.now - t0) / iterations
        yield from ctx.comm.barrier()
        return elapsed

    out = World(n_ranks=n_ranks, network=network, seed=seed).run(program)
    return max(out)


def mpi2_sync_mode_time(sync_mode: str, **kwargs) -> float:
    """Alias of :func:`halo_exchange_time` named for the Fig. 1 bench."""
    return halo_exchange_time(sync_mode, **kwargs)
