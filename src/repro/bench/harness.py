"""Sweep running and paper-style table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

__all__ = ["Series", "run_sweep", "format_table"]


@dataclass
class Series:
    """One plotted line: a label and y-values over the shared x-axis."""

    label: str
    values: List[float] = field(default_factory=list)


def run_sweep(
    fn: Callable[..., float],
    x_values: Sequence,
    series_params: Dict[str, dict],
    **common,
) -> Dict[str, Series]:
    """Evaluate ``fn`` over the cross product of series and x-values.

    ``series_params`` maps each series label to the keyword arguments
    that distinguish that series.  For every ``x`` in ``x_values``, the
    call is ``fn(**common, **params, <x_key>=x)`` — everything is passed
    by keyword.  The x-value's keyword name defaults to ``"size"``;
    pass ``x_key="..."`` (consumed here, not forwarded to ``fn``) to
    sweep a differently-named parameter.  Returns ``{label: Series}``
    with one y-value per x, in order.
    """
    x_key = common.pop("x_key", "size")
    out: Dict[str, Series] = {}
    for label, params in series_params.items():
        series = Series(label=label)
        for x in x_values:
            kwargs = dict(common)
            kwargs.update(params)
            kwargs[x_key] = x
            series.values.append(fn(**kwargs))
        out[label] = series
    return out


def format_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Series],
    unit: str = "µs",
    scale: float = 1.0,
    floatfmt: str = "10.3f",
) -> str:
    """Render sweep results as an aligned text table (one row per x)."""
    labels = list(series)
    widths = [max(12, len(l) + 2) for l in labels]
    lines = [title, "=" * len(title)]
    header = f"{x_label:>12} | " + " | ".join(
        f"{l:>{w}}" for l, w in zip(labels, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_values):
        row = f"{str(x):>12} | " + " | ".join(
            f"{series[l].values[i] * scale:>{w}{floatfmt[2:]}}"
            for l, w in zip(labels, widths)
        )
        lines.append(row)
    lines.append(f"(values in {unit})")
    return "\n".join(lines)
