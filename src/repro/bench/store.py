"""Serving benchmark: the sharded store under open-loop client load.

The "million-client" scenario: every rank plays front-end for a slice
of a large client population, issuing an *open-loop* stream of
get/put/accumulate requests against a :class:`repro.ga.ShardedStore`
sharded over all ranks.  Keys are drawn from a seeded Zipf
distribution (a few hot keys absorb most of the traffic, like any real
cache/serving keyspace); request classes follow a fixed read-heavy mix
(60 % get / 30 % put / 10 % atomic add).  Open-loop means issue never
waits for completion — each request's end-to-end latency is harvested
from its completion event into per-class histograms
(``store.latency_us{op=...,loc=...}`` in the world's metrics
registry).

Because the store's segment is allocated as *shared-memory windows*,
requests whose key lives on a co-located rank move by load/store and
never touch the NIC; the run self-checks that identity
(``shm_ops == local op count``).  Cross-node requests ride the normal
RMA path, so the same workload contrasts cleanly across fabrics: the
flat (non-routed) personality, a 3-D torus, and a leaf/spine fat-tree
(``repro.obs.report --store`` prints the comparison table).
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.machine import generic_cluster
from repro.network import NetworkConfig, seastar_portals
from repro.obs.metrics import Histogram
from repro.runtime import World

__all__ = ["STORE_FABRICS", "OP_CLASSES", "sharded_store_run",
           "run_store_report", "format_store_table"]

#: Fabric personalities the serving report sweeps.
STORE_FABRICS = ("flat", "torus", "fattree")

#: Request classes in mix order.
OP_CLASSES = ("get", "put", "add")


def fabric_network(fabric: str) -> NetworkConfig:
    """The network personality for a named fabric."""
    if fabric == "flat":
        return seastar_portals()
    from repro.topo import fattree_network, torus_network

    if fabric == "torus":
        return torus_network((4, 4, 4))
    if fabric == "fattree":
        return fattree_network()
    raise ValueError(
        f"unknown fabric {fabric!r}; choose from {STORE_FABRICS}")


def _zipf_cdf(n_keys: int, s: float) -> List[float]:
    """Cumulative (unnormalized) Zipf weights: key ``k`` has weight
    ``1/(k+1)**s``, so low-numbered keys are the hot ones."""
    cdf: List[float] = []
    total = 0.0
    for k in range(n_keys):
        total += 1.0 / float(k + 1) ** s
        cdf.append(total)
    return cdf


def sharded_store_run(
    fabric: str = "flat",
    n_nodes: int = 8,
    ranks_per_node: int = 2,
    ops_per_rank: int = 150,
    n_keys: int = 512,
    zipf_s: float = 1.2,
    placement="hashed",
    mean_gap_us: float = 0.2,
    seed: int = 0,
    network: Optional[NetworkConfig] = None,
    world_out: Optional[list] = None,
) -> Dict[str, Any]:
    """Run the open-loop serving scenario; returns the result document.

    The document carries per-class latency distributions (p50/p99 from
    the exact log2-bucket histograms), the local/remote split, the
    shared-window op count, and NIC/fabric packet totals.  Two
    identities are self-checked: every issued request completed, and
    every key-local request moved by load/store (``shm_ops`` equals the
    local op count — co-located pairs cost zero NIC packets).
    """
    from repro.ga import ShardedStore
    from repro.pgas import Team

    machine = generic_cluster(n_nodes=n_nodes, ranks_per_node=ranks_per_node)
    network = network if network is not None else fabric_network(fabric)
    world = World(machine=machine, network=network, seed=seed)
    metrics = world.metrics
    cdf = _zipf_cdf(n_keys, zipf_s)

    def program(ctx):
        team = Team.world(ctx)
        store = yield from ShardedStore.create(team, n_keys,
                                               placement=placement)
        yield from ctx.comm.barrier()
        rng = random.Random(
            (seed * 1_000_003 + ctx.rank) * 2654435761 % (2 ** 31))
        counts = {cls: 0 for cls in OP_CLASSES}
        locality = {"local": 0, "remote": 0}
        pending = []
        for i in range(ops_per_rank):
            if mean_gap_us > 0.0:
                # open-loop arrivals: the client population offers load
                # independent of completions
                yield ctx.sim.timeout(rng.expovariate(1.0 / mean_gap_us))
            key = bisect.bisect_left(cdf, rng.random() * cdf[-1])
            draw = rng.random()
            cls = ("get" if draw < 0.6 else
                   "put" if draw < 0.9 else "add")
            loc = "local" if store.is_local(key) else "remote"
            hist = metrics.histogram("store.latency_us", op=cls, loc=loc)
            t0 = ctx.sim.now
            if cls == "get":
                req = yield from store.get_nb(key)
            elif cls == "put":
                req = yield from store.put_nb(key, ctx.rank * 10_000 + i)
            else:
                req = yield from store.add_nb(key, 1)
            req.event.add_callback(
                lambda _ev, h=hist, t0=t0, sim=ctx.sim:
                h.observe(sim.now - t0))
            pending.append(req)
            counts[cls] += 1
            locality[loc] += 1
        yield from store.destroy()
        if not all(r.complete for r in pending):
            raise AssertionError(
                f"rank {ctx.rank}: requests still pending after the "
                "collective completion")
        return counts, locality

    out = world.run(program)
    if world_out is not None:
        world_out.append(world)

    totals = {cls: 0 for cls in OP_CLASSES}
    locality = {"local": 0, "remote": 0}
    for counts, loc in out:
        for cls in OP_CLASSES:
            totals[cls] += counts[cls]
        for k in locality:
            locality[k] += loc[k]

    classes: Dict[str, Any] = {}
    observed = 0
    for cls in OP_CLASSES:
        agg = Histogram(f"store.{cls}")
        for loc in ("local", "remote"):
            agg.merge(metrics.histogram("store.latency_us", op=cls, loc=loc))
        observed += agg.count
        classes[cls] = {
            "count": agg.count,
            "mean": agg.mean,
            "p50": agg.quantile(0.50),
            "p99": agg.quantile(0.99),
            "max": agg.max or 0.0,
        }
    n_ops = sum(totals.values())
    if observed != n_ops:
        raise AssertionError(
            f"latency accounting broke: issued {n_ops} requests but "
            f"observed {observed} completions")
    shm_ops = sum(world.contexts[r].rma.engine.stats["shm_ops"]
                  for r in range(world.n_ranks))
    if shm_ops != locality["local"]:
        raise AssertionError(
            f"shared-window accounting broke: {locality['local']} "
            f"key-local requests but {shm_ops} load/store ops — "
            "a co-located pair paid NIC packets")
    return {
        "schema": 1,
        "workload": "sharded_store",
        "fabric": fabric,
        "network": network.name,
        "seed": seed,
        "n_ranks": world.n_ranks,
        "n_nodes": n_nodes,
        "ranks_per_node": ranks_per_node,
        "n_keys": n_keys,
        "zipf_s": zipf_s,
        "placement": placement,
        "ops": n_ops,
        "per_class": totals,
        "classes": classes,
        "local_ops": locality["local"],
        "remote_ops": locality["remote"],
        "shm_ops": shm_ops,
        "nic_packets": sum(n.packets_sent for n in world.nics.values()),
        "intra_node_packets": world.fabric.intra_node_packets,
        "makespan_us": world.sim.now,
    }


def run_store_report(
    fabrics: Tuple[str, ...] = STORE_FABRICS,
    seeds: Tuple[int, ...] = (0,),
    ops_per_rank: int = 150,
    n_keys: int = 512,
    placement="hashed",
) -> Dict[str, Any]:
    """Run the serving scenario per fabric x seed; return the report
    document with one row per run plus per-fabric aggregates."""
    rows: List[Dict[str, Any]] = []
    for fabric in fabrics:
        for seed in seeds:
            rows.append(sharded_store_run(
                fabric=fabric, seed=seed, ops_per_rank=ops_per_rank,
                n_keys=n_keys, placement=placement))
    return {
        "schema": 1,
        "workload": "sharded_store",
        "fabrics": list(fabrics),
        "seeds": list(seeds),
        "ops_per_rank": ops_per_rank,
        "n_keys": n_keys,
        "placement": rows[0]["placement"] if rows else str(placement),
        "rows": rows,
    }


def format_store_table(doc: Dict[str, Any]) -> str:
    """Per-run, per-class latency table as aligned text."""
    from repro.obs.report import format_rows

    header = ["fabric", "seed", "op", "count", "p50_us", "p99_us",
              "mean_us", "max_us", "local", "remote", "shm_ops",
              "nic_pkts"]
    rows = [header]
    for r in doc["rows"]:
        for cls in OP_CLASSES:
            c = r["classes"][cls]
            rows.append([
                r["fabric"], str(r["seed"]), cls, str(c["count"]),
                f"{c['p50']:.2f}", f"{c['p99']:.2f}", f"{c['mean']:.2f}",
                f"{c['max']:.2f}", str(r["local_ops"]),
                str(r["remote_ops"]), str(r["shm_ops"]),
                str(r["nic_packets"]),
            ])
    return format_rows(rows, left_align=(0, 2))
