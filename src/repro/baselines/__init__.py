"""Related-work RMA interfaces (paper §VI).

Faithful-to-the-comparison models of the two communication subsystems the
paper contrasts the strawman against:

- :mod:`repro.baselines.armci` — ARMCI: contiguous/vector/strided
  put/get, daxpy-only accumulate (always serialized), blocking ops
  ordered / nonblocking ops unordered, and **no way to complete a
  subset** of operations (only per-op local waits and whole-target /
  global fences).
- :mod:`repro.baselines.gasnet` — GASNet: a core API of short, medium,
  and long active messages (no ordering, none specifiable) plus an
  extended API with put/get only — **no accumulate and no
  noncontiguous data**.
- :mod:`repro.baselines.shmem` — Cray-SHMEM-style: symmetric-heap
  allocation (the constraint §IV requirement 1 removes), blocking
  put/get, fence/quiet/barrier_all, and symmetric atomics.
"""

from repro.baselines.armci import ArmciError, ArmciInterface, build_armci
from repro.baselines.gasnet import GasnetError, GasnetInterface, build_gasnet
from repro.baselines.shmem import ShmemError, ShmemInterface, build_shmem

__all__ = [
    "ArmciError",
    "ArmciInterface",
    "GasnetError",
    "GasnetInterface",
    "ShmemError",
    "ShmemInterface",
    "build_armci",
    "build_gasnet",
    "build_shmem",
]
