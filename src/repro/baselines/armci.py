"""An ARMCI-style RMA interface (paper §VI).

Semantics modeled from the paper's comparison:

- contiguous, **vector** and **strided** Put/Get/Accumulate;
- blocking and non-blocking variants; *all blocking operations are
  ordered by the library and all non-blocking operations have no
  ordering guarantee*;
- Accumulate is always **serialized** and supports only a daxpy-style
  update (``y += a * x``);
- completion granularity is coarse: per-handle local waits
  (:meth:`ArmciInterface.wait`), a per-target fence
  (:meth:`ArmciInterface.fence`) and a global
  :meth:`ArmciInterface.all_fence` — it is *not* possible to check
  local or remote completion of an arbitrary subset, nor to issue a
  blocking-unordered operation (both possible with the strawman API).

Memory comes from the collective :meth:`ArmciInterface.malloc`, which
mirrors ``ARMCI_Malloc`` returning every rank's base pointer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.datatypes import BYTE, FLOAT64, contiguous, hindexed, hvector
from repro.machine.address_space import Allocation
from repro.mpi.request import Request
from repro.rma.attributes import RmaAttrs
from repro.rma.engine import RmaEngine
from repro.rma.target_mem import TargetMem

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm
    from repro.runtime import World

__all__ = ["ArmciError", "ArmciInterface", "build_armci"]

#: Blocking ARMCI calls are ordered by the library.
_BLOCKING = RmaAttrs(ordering=True, blocking=True)
#: Non-blocking ARMCI calls carry no guarantees at all.
_NONBLOCKING = RmaAttrs()
#: Accumulates are serialized (atomic) and ordered like other blocking ops.
_ACC = RmaAttrs(ordering=True, blocking=True, atomicity=True,
                remote_completion=True)


class ArmciError(RuntimeError):
    """ARMCI usage error."""


def _strided_type(stride: int, block: int, count: int):
    """count blocks of `block` bytes spaced `stride` bytes apart."""
    return hvector(count, block, stride, BYTE)


def _vector_type(chunks: Sequence[Tuple[int, int]]):
    """Explicit (offset, length) byte chunks."""
    return hindexed([l for _, l in chunks], [o for o, _ in chunks], BYTE)


class ArmciInterface:
    """Per-rank ARMCI frontend (``ctx.armci``)."""

    def __init__(self, engine: RmaEngine, comm_world: "Comm") -> None:
        self.engine = engine
        self.comm = comm_world

    # ------------------------------------------------------------------
    def malloc(self, nbytes: int):
        """Collective allocation: every rank allocates ``nbytes``;
        returns ``(local_alloc, [TargetMem per rank])`` (``yield from``)."""
        alloc = self.engine.mem.space.alloc(nbytes)
        yield self.engine.sim.timeout(self.engine.registration_cost(nbytes))
        tmem = self.engine.expose(alloc)
        tmems = yield from self.comm.allgather(tmem)
        return alloc, tmems

    # -- completion plumbing ----------------------------------------------
    def _wait_local(self, rec):
        """Blocking ARMCI semantics: wait local completion."""
        if not rec.ev_local.triggered:
            yield rec.ev_local

    def _wait_remote(self, rec):
        if rec.ev_remote is not None and not rec.ev_remote.triggered:
            yield rec.ev_remote

    # -- contiguous -------------------------------------------------------
    def put(self, src: Allocation, src_off: int, tmem: TargetMem,
            dst_off: int, nbytes: int):
        """Blocking contiguous put (ordered)."""
        rec = yield from self.engine.issue_put(
            src, src_off, nbytes, BYTE, tmem, dst_off, nbytes, BYTE, _BLOCKING,
        )
        yield from self._wait_local(rec)

    def get(self, dst: Allocation, dst_off: int, tmem: TargetMem,
            src_off: int, nbytes: int):
        """Blocking contiguous get."""
        ev = yield from self.engine.issue_get(
            dst, dst_off, nbytes, BYTE, tmem, src_off, nbytes, BYTE, _BLOCKING,
        )
        if not ev.triggered:
            yield ev

    def nb_put(self, src: Allocation, src_off: int, tmem: TargetMem,
               dst_off: int, nbytes: int):
        """Non-blocking put; returns a handle (no ordering guarantee)."""
        rec = yield from self.engine.issue_put(
            src, src_off, nbytes, BYTE, tmem, dst_off, nbytes, BYTE,
            _NONBLOCKING,
        )
        return Request(self.engine.sim, event=rec.ev_local, kind="armci_nbput")

    def nb_get(self, dst: Allocation, dst_off: int, tmem: TargetMem,
               src_off: int, nbytes: int):
        """Non-blocking get; returns a handle."""
        ev = yield from self.engine.issue_get(
            dst, dst_off, nbytes, BYTE, tmem, src_off, nbytes, BYTE,
            _NONBLOCKING,
        )
        return Request(self.engine.sim, event=ev, kind="armci_nbget")

    # -- strided ----------------------------------------------------------
    def put_strided(self, src: Allocation, src_off: int, src_stride: int,
                    tmem: TargetMem, dst_off: int, dst_stride: int,
                    block: int, count: int):
        """Blocking strided put: ``count`` blocks of ``block`` bytes."""
        rec = yield from self.engine.issue_put(
            src, src_off, 1, _strided_type(src_stride, block, count),
            tmem, dst_off, 1, _strided_type(dst_stride, block, count),
            _BLOCKING,
        )
        yield from self._wait_local(rec)

    def get_strided(self, dst: Allocation, dst_off: int, dst_stride: int,
                    tmem: TargetMem, src_off: int, src_stride: int,
                    block: int, count: int):
        """Blocking strided get."""
        ev = yield from self.engine.issue_get(
            dst, dst_off, 1, _strided_type(dst_stride, block, count),
            tmem, src_off, 1, _strided_type(src_stride, block, count),
            _BLOCKING,
        )
        if not ev.triggered:
            yield ev

    # -- vector (explicit chunk lists) --------------------------------------
    def put_vector(self, src: Allocation,
                   src_chunks: Sequence[Tuple[int, int]], tmem: TargetMem,
                   dst_chunks: Sequence[Tuple[int, int]]):
        """Blocking vector put: explicit (offset, len) chunk lists."""
        if sum(l for _, l in src_chunks) != sum(l for _, l in dst_chunks):
            raise ArmciError("vector src/dst total lengths differ")
        rec = yield from self.engine.issue_put(
            src, 0, 1, _vector_type(src_chunks),
            tmem, 0, 1, _vector_type(dst_chunks), _BLOCKING,
        )
        yield from self._wait_local(rec)

    def get_vector(self, dst: Allocation,
                   dst_chunks: Sequence[Tuple[int, int]], tmem: TargetMem,
                   src_chunks: Sequence[Tuple[int, int]]):
        """Blocking vector get."""
        if sum(l for _, l in src_chunks) != sum(l for _, l in dst_chunks):
            raise ArmciError("vector src/dst total lengths differ")
        ev = yield from self.engine.issue_get(
            dst, 0, 1, _vector_type(dst_chunks),
            tmem, 0, 1, _vector_type(src_chunks), _BLOCKING,
        )
        if not ev.triggered:
            yield ev

    # -- accumulate ---------------------------------------------------------
    def acc(self, src: Allocation, src_off: int, tmem: TargetMem,
            dst_off: int, count: int, scale: float = 1.0):
        """ARMCI accumulate: ``y += scale * x`` over float64 elements —
        the only reduction ARMCI offers (§VI), always serialized; the
        call returns once the update has been applied remotely."""
        rec = yield from self.engine.issue_accumulate(
            src, src_off, count, FLOAT64, tmem, dst_off, count, FLOAT64,
            _ACC, op="daxpy", scale=scale,
        )
        yield from self._wait_remote(rec)

    # -- completion -----------------------------------------------------------
    def wait(self, handle: Request):
        """Wait local completion of one non-blocking handle."""
        yield from handle.wait()

    def wait_all(self, handles: Sequence[Request]):
        """Wait local completion of all given handles."""
        yield from Request.waitall(list(handles))

    def fence(self, tmem_or_rank):
        """ARMCI_Fence: remote-complete ALL prior ops to one target.

        Note the granularity: everything to that target, never a subset
        (the limitation §VI contrasts with the strawman)."""
        rank = (
            tmem_or_rank.rank
            if isinstance(tmem_or_rank, TargetMem)
            else int(tmem_or_rank)
        )
        yield from self.engine.complete_one(rank)

    def all_fence(self):
        """ARMCI_AllFence: remote-complete everything to everyone."""
        yield from self.engine.complete_all()


def build_armci(world: "World") -> None:
    """Attach an :class:`ArmciInterface` to every rank context."""
    for rank, ctx in world.contexts.items():
        ctx.armci = ArmciInterface(ctx.rma.engine, ctx.comm)
