"""A SHMEM-style interface (Cray SHMEM — the paper's [16]).

The third RMA library the paper's §II names as an established
one-sided programming model.  Its distinguishing constraint is the one
the strawman's requirement 1 removes: **symmetric allocation** — every
remotely accessible object must be allocated collectively at the same
time on every PE, and remote addresses are implied by one's own
(`shmem_malloc`).  The strawman's `target_mem` descriptors need no such
symmetry.

Semantics modeled:

- ``shmem_malloc`` — collective symmetric-heap allocation;
- ``put``/``get`` (blocking: put is locally complete, get returns data)
  and typed single-element ``p``/``g``;
- ``fence`` — orders my puts per target (maps to the ordering barrier);
- ``quiet`` — remote-completes all my puts everywhere;
- ``barrier_all`` — quiet + barrier;
- atomics: ``atomic_fetch_inc`` / ``atomic_cswap`` on symmetric
  addresses;
- ``wait_until`` — spin on a local symmetric variable (the classic
  SHMEM flag-synchronization idiom).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.datatypes import BYTE, PREDEFINED
from repro.machine.address_space import Allocation
from repro.rma.attributes import ALL_RANKS, RmaAttrs
from repro.rma.engine import RmaEngine
from repro.rma.target_mem import TargetMem

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm
    from repro.runtime import World

__all__ = ["ShmemError", "ShmemInterface", "build_shmem"]

_PUT = RmaAttrs(blocking=True)           # local completion, like shmem_put
_GET = RmaAttrs(blocking=True)


class ShmemError(RuntimeError):
    """SHMEM usage error."""


class _SymmetricObject:
    """One symmetric allocation: my block + everyone's descriptors."""

    __slots__ = ("alloc", "tmems", "nbytes")

    def __init__(self, alloc: Allocation, tmems: List[TargetMem],
                 nbytes: int) -> None:
        self.alloc = alloc
        self.tmems = tmems
        self.nbytes = nbytes


class ShmemInterface:
    """Per-rank SHMEM frontend (``ctx.shmem``)."""

    def __init__(self, engine: RmaEngine, comm_world: "Comm") -> None:
        self.engine = engine
        self.comm = comm_world
        self._heap: Dict[int, _SymmetricObject] = {}
        self._next_sym = 1

    # ------------------------------------------------------------------
    @property
    def my_pe(self) -> int:
        return self.comm.rank

    @property
    def n_pes(self) -> int:
        return self.comm.size

    def shmem_malloc(self, nbytes: int):
        """Collective symmetric allocation; returns a symmetric handle
        usable as the remote address on every PE (``yield from``)."""
        alloc = self.engine.mem.space.alloc(nbytes)
        yield self.engine.sim.timeout(self.engine.registration_cost(nbytes))
        tmem = self.engine.expose(alloc)
        tmems = yield from self.comm.allgather(tmem)
        sym = self._next_sym
        self._next_sym += 1
        self._heap[sym] = _SymmetricObject(alloc, tmems, nbytes)
        return sym

    def shmem_free(self, sym: int):
        """Collective symmetric free."""
        obj = self._obj(sym)
        yield from self.quiet()
        yield from self.comm.barrier()
        self.engine.withdraw(obj.tmems[self.my_pe])
        self.engine.mem.space.free(obj.alloc)
        del self._heap[sym]

    def _obj(self, sym: int) -> _SymmetricObject:
        obj = self._heap.get(sym)
        if obj is None:
            raise ShmemError(f"not a live symmetric allocation: {sym}")
        return obj

    def local_view(self, sym: int, dtype: str = "uint8") -> np.ndarray:
        """NumPy view of my block of a symmetric object."""
        obj = self._obj(sym)
        return self.engine.mem.space.view(obj.alloc, dtype)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def put(self, sym: int, offset: int, data: np.ndarray, pe: int):
        """shmem_putmem: blocking put of raw bytes (locally complete)."""
        obj = self._obj(sym)
        data = np.asarray(data, dtype=np.uint8)
        scratch = self.engine.mem.space.alloc(max(data.size, 1))
        self.engine.mem.space.buffer(scratch)[: data.size] = data
        rec = yield from self.engine.issue_put(
            scratch, 0, data.size, BYTE, obj.tmems[pe], offset, data.size,
            BYTE, _PUT,
        )
        if not rec.ev_local.triggered:
            yield rec.ev_local
        self.engine.mem.space.free(scratch)

    def get(self, sym: int, offset: int, nbytes: int, pe: int):
        """shmem_getmem: blocking get; returns the bytes."""
        obj = self._obj(sym)
        scratch = self.engine.mem.space.alloc(max(nbytes, 1))
        ev = yield from self.engine.issue_get(
            scratch, 0, nbytes, BYTE, obj.tmems[pe], offset, nbytes, BYTE,
            _GET,
        )
        if not ev.triggered:
            yield ev
        out = self.engine.mem.space.read(scratch, 0, nbytes)
        self.engine.mem.space.free(scratch)
        return out

    def _target_dt(self, sym: int, pe: int, dtype: str) -> np.dtype:
        """The element dtype in the *target's* byte order (typed SHMEM
        accesses store values the owner can read natively — needed on
        heterogeneous machines)."""
        endian = self._obj(sym).tmems[pe].endianness
        return np.dtype(dtype).newbyteorder(
            "<" if endian == "little" else ">"
        )

    def p(self, sym: int, index: int, value, pe: int, dtype: str = "int64"):
        """shmem_p: put one typed element."""
        np_dt = self._target_dt(sym, pe, dtype)
        data = np.array([value], dtype=np_dt).view(np.uint8)
        yield from self.put(sym, index * np_dt.itemsize, data, pe)

    def g(self, sym: int, index: int, pe: int, dtype: str = "int64"):
        """shmem_g: get one typed element."""
        np_dt = self._target_dt(sym, pe, dtype)
        raw = yield from self.get(sym, index * np_dt.itemsize,
                                  np_dt.itemsize, pe)
        return raw.view(np_dt)[0].item()

    # ------------------------------------------------------------------
    # Ordering / completion (the shmem_fence / shmem_quiet pair the
    # paper's MPI_RMA_order discussion is modeled on)
    # ------------------------------------------------------------------
    def fence(self):
        """shmem_fence: order my prior puts before my later ones, per
        target — exactly MPI_RMA_order(ALL_RANKS)."""
        yield self.engine.sim.timeout(self.engine.timings.call_overhead)
        self.engine.order_all()

    def quiet(self):
        """shmem_quiet: remote-complete all my puts everywhere."""
        yield from self.engine.complete_all()

    def barrier_all(self):
        """shmem_barrier_all: quiet + barrier."""
        yield from self.quiet()
        yield from self.comm.barrier()

    # ------------------------------------------------------------------
    # Atomics
    # ------------------------------------------------------------------
    def atomic_fetch_inc(self, sym: int, index: int, pe: int,
                         dtype: str = "int64"):
        """shmem_atomic_fetch_inc on a symmetric element."""
        obj = self._obj(sym)
        np_dt = np.dtype(dtype)
        old = yield from self.engine.issue_rmw(
            obj.tmems[pe], index * np_dt.itemsize, dtype, "fetch_add", 1,
        )
        if not old.triggered:
            value = yield old
        else:
            value = old.value
        return value

    def atomic_cswap(self, sym: int, index: int, cond, value, pe: int,
                     dtype: str = "int64"):
        """shmem_atomic_compare_swap; returns the old value."""
        obj = self._obj(sym)
        np_dt = np.dtype(dtype)
        ev = yield from self.engine.issue_rmw(
            obj.tmems[pe], index * np_dt.itemsize, dtype, "cas", value,
            compare=cond,
        )
        if not ev.triggered:
            out = yield ev
        else:
            out = ev.value
        return out

    # ------------------------------------------------------------------
    def wait_until(self, sym: int, index: int, value, dtype: str = "int64",
                   poll: float = 1.0):
        """shmem_wait_until(==): spin until my local symmetric element
        equals ``value`` (flag synchronization)."""
        view = self.local_view(sym, dtype)
        while view[index] != value:
            yield self.engine.sim.timeout(poll)


def build_shmem(world: "World") -> None:
    """Attach a :class:`ShmemInterface` to every rank context."""
    for rank, ctx in world.contexts.items():
        ctx.shmem = ShmemInterface(ctx.rma.engine, ctx.comm)
