"""A GASNet-style communication subsystem (paper §VI).

Two layers, as in the spec the paper cites (v1.8):

- **core API**: active messages in three flavours — *short* (arguments
  only), *medium* (payload delivered into a temporary buffer at the
  target), *long* (payload deposited at a caller-chosen address in the
  target's segment, then the handler runs).  Handlers are registered by
  index and may send a single reply.  "No particular ordering is
  guaranteed for these operations nor is it possible to specify any."
- **extended API**: ``put``/``get`` (blocking, explicit-handle ``_nb``,
  implicit-handle ``_nbi``) into/out of the attached segment.  There is
  **no accumulate** and **no noncontiguous transfer** — the two gaps §VI
  contrasts with the strawman API.

Requires a fabric with active-message support; constructing the
interface on (e.g.) Portals-without-AM raises, matching §III-B1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.datatypes import BYTE
from repro.machine.address_space import Allocation
from repro.mpi.request import Request
from repro.network.packet import Packet
from repro.rma.attributes import RmaAttrs
from repro.rma.engine import RmaEngine
from repro.rma.target_mem import TargetMem

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm
    from repro.runtime import World

__all__ = ["GasnetError", "GasnetInterface", "build_gasnet"]

#: GASNet never orders anything; blocking ops just wait locally.
_NO_ATTRS = RmaAttrs()

#: Medium AM payload cap (bytes), after the spec's gasnet_AMMaxMedium.
MAX_MEDIUM = 512


class GasnetError(RuntimeError):
    """GASNet usage error."""


class GasnetInterface:
    """Per-rank GASNet frontend (``ctx.gasnet``)."""

    def __init__(self, engine: RmaEngine, comm_world: "Comm") -> None:
        if not engine.network.active_messages:
            raise GasnetError(
                f"network {engine.network.name!r} has no active-message "
                "support; GASNet cannot run here (paper §III-B1)"
            )
        self.engine = engine
        self.comm = comm_world
        self._handlers: Dict[int, Callable[..., Any]] = {}
        self._reply_events: Dict[int, Any] = {}
        self._reply_seq = 0
        self._segment: Optional[Allocation] = None
        self._seg_tmems: Optional[List[TargetMem]] = None
        self._nbi_handles: List[Request] = []
        nic = engine.nic
        nic.register_handler("gasnet.am", self._on_am)
        nic.register_handler("gasnet.am_reply", self._on_reply)
        self.am_handled = 0

    # ------------------------------------------------------------------
    # Segment attach (collective)
    # ------------------------------------------------------------------
    def attach(self, segment_bytes: int):
        """Collectively attach a segment; extended-API transfers must
        stay inside it (``yield from``)."""
        if self._segment is not None:
            raise GasnetError("segment already attached")
        self._segment = self.engine.mem.space.alloc(segment_bytes)
        yield self.engine.sim.timeout(
            self.engine.registration_cost(segment_bytes)
        )
        tmem = self.engine.expose(self._segment)
        self._seg_tmems = yield from self.comm.allgather(tmem)
        return self._segment

    @property
    def segment(self) -> Allocation:
        if self._segment is None:
            raise GasnetError("gasnet_attach has not been called")
        return self._segment

    def _seg(self, rank: int) -> TargetMem:
        if self._seg_tmems is None:
            raise GasnetError("gasnet_attach has not been called")
        return self._seg_tmems[rank]

    # ------------------------------------------------------------------
    # Core API: active messages
    # ------------------------------------------------------------------
    def register_handler(self, index: int, fn: Callable[..., Any]) -> None:
        """Register AM handler ``index`` (signature ``fn(src, *args)`` for
        short, ``fn(src, data, *args)`` for medium/long)."""
        if index in self._handlers:
            raise GasnetError(f"AM handler {index} already registered")
        self._handlers[index] = fn

    def _am_common(self, dst, handler, args, data, dest_off, flavor,
                   want_reply):
        reply_ev = None
        reply_id = None
        if want_reply:
            self._reply_seq += 1
            reply_id = (self.engine.rank, self._reply_seq)
            reply_ev = self.engine.sim.event()
            self._reply_events[reply_id] = reply_ev
        nbytes = 0 if data is None else int(np.asarray(data).nbytes)
        pkt = Packet(
            src=self.engine.rank, dst=dst, kind="gasnet.am",
            payload={
                "handler": handler, "args": args, "data": data,
                "dest_off": dest_off, "flavor": flavor,
                "reply_id": reply_id,
            },
            data_bytes=nbytes,
        )
        self.engine.nic.send(pkt)
        return reply_ev

    def am_short(self, dst: int, handler: int, *args, want_reply=False):
        """Short AM: a few integer arguments, no payload."""
        yield self.engine.sim.timeout(
            self.engine.timings.call_overhead
            + self.engine.network.overhead_send
        )
        ev = self._am_common(dst, handler, args, None, None, "short",
                             want_reply)
        if ev is not None:
            reply = yield ev
            return reply

    def am_medium(self, dst: int, handler: int, data: np.ndarray, *args,
                  want_reply=False):
        """Medium AM: payload (≤ :data:`MAX_MEDIUM`) lands in a temporary
        buffer passed to the handler."""
        data = np.asarray(data, dtype=np.uint8)
        if data.nbytes > MAX_MEDIUM:
            raise GasnetError(
                f"medium AM payload {data.nbytes} exceeds MAX_MEDIUM "
                f"({MAX_MEDIUM}); use a long AM"
            )
        yield self.engine.sim.timeout(
            self.engine.timings.call_overhead
            + self.engine.network.overhead_send
        )
        ev = self._am_common(dst, handler, args, data.copy(), None, "medium",
                             want_reply)
        if ev is not None:
            reply = yield ev
            return reply

    def am_long(self, dst: int, handler: int, data: np.ndarray,
                dest_off: int, *args, want_reply=False):
        """Long AM: payload is deposited at ``dest_off`` in the target's
        segment, then the handler runs."""
        data = np.asarray(data, dtype=np.uint8)
        seg = self._seg(dst)
        if dest_off < 0 or dest_off + data.nbytes > seg.size:
            raise GasnetError("long AM payload outside the target segment")
        yield self.engine.sim.timeout(
            self.engine.timings.call_overhead
            + self.engine.network.overhead_send
        )
        ev = self._am_common(dst, handler, args, data.copy(), dest_off,
                             "long", want_reply)
        if ev is not None:
            reply = yield ev
            return reply

    def _on_am(self, packet: Packet) -> None:
        p = packet.payload

        def handler_job():
            # NIC-side handler activation cost
            yield self.engine.sim.timeout(self.engine.timings.am_handler)
            fn = self._handlers.get(p["handler"])
            if fn is None:
                raise GasnetError(
                    f"rank {self.engine.rank}: no AM handler {p['handler']}"
                )
            if p["flavor"] == "short":
                result = fn(packet.src, *p["args"])
            elif p["flavor"] == "medium":
                result = fn(packet.src, p["data"], *p["args"])
            else:  # long: deposit into the segment first
                seg = self.segment
                self.engine.mem.nic_write(seg, p["dest_off"], p["data"])
                result = fn(packet.src, p["data"], *p["args"])
            self.am_handled += 1
            if p["reply_id"] is not None:
                self.engine.send_control(
                    packet.src, "gasnet.am_reply",
                    {"reply_id": p["reply_id"], "value": result},
                )

        self.engine.sim.spawn(handler_job(), name=f"am-{self.engine.rank}")

    def _on_reply(self, packet: Packet) -> None:
        ev = self._reply_events.pop(packet.payload["reply_id"], None)
        if ev is not None:
            ev.succeed(packet.payload["value"])

    # ------------------------------------------------------------------
    # Extended API: put/get (contiguous only, into/out of segments)
    # ------------------------------------------------------------------
    def put(self, dst: int, dest_off: int, src: Allocation, src_off: int,
            nbytes: int):
        """Blocking put (waits local completion; unordered)."""
        rec = yield from self.engine.issue_put(
            src, src_off, nbytes, BYTE, self._seg(dst), dest_off, nbytes,
            BYTE, _NO_ATTRS,
        )
        if not rec.ev_local.triggered:
            yield rec.ev_local

    def get(self, dst: int, src_off: int, dest: Allocation, dest_off: int,
            nbytes: int):
        """Blocking get from ``dst``'s segment."""
        ev = yield from self.engine.issue_get(
            dest, dest_off, nbytes, BYTE, self._seg(dst), src_off, nbytes,
            BYTE, _NO_ATTRS,
        )
        if not ev.triggered:
            yield ev

    def put_nb(self, dst: int, dest_off: int, src: Allocation, src_off: int,
               nbytes: int):
        """Explicit-handle nonblocking put."""
        rec = yield from self.engine.issue_put(
            src, src_off, nbytes, BYTE, self._seg(dst), dest_off, nbytes,
            BYTE, _NO_ATTRS,
        )
        return Request(self.engine.sim, event=rec.ev_local, kind="gasnet_nb")

    def get_nb(self, dst: int, src_off: int, dest: Allocation, dest_off: int,
               nbytes: int):
        """Explicit-handle nonblocking get."""
        ev = yield from self.engine.issue_get(
            dest, dest_off, nbytes, BYTE, self._seg(dst), src_off, nbytes,
            BYTE, _NO_ATTRS,
        )
        return Request(self.engine.sim, event=ev, kind="gasnet_nb")

    def wait_syncnb(self, handle: Request):
        """Sync one explicit handle."""
        yield from handle.wait()

    def put_nbi(self, dst: int, dest_off: int, src: Allocation, src_off: int,
                nbytes: int):
        """Implicit-handle nonblocking put (synced by wait_syncnbi)."""
        h = yield from self.put_nb(dst, dest_off, src, src_off, nbytes)
        self._nbi_handles.append(h)

    def get_nbi(self, dst: int, src_off: int, dest: Allocation,
                dest_off: int, nbytes: int):
        """Implicit-handle nonblocking get."""
        h = yield from self.get_nb(dst, src_off, dest, dest_off, nbytes)
        self._nbi_handles.append(h)

    def wait_syncnbi(self):
        """Sync every outstanding implicit-handle operation."""
        handles, self._nbi_handles = self._nbi_handles, []
        yield from Request.waitall(handles)


def build_gasnet(world: "World") -> None:
    """Attach a :class:`GasnetInterface` where the fabric supports AMs."""
    if not world.network.active_messages:
        return  # GASNet simply is not available on this fabric
    for rank, ctx in world.contexts.items():
        ctx.gasnet = GasnetInterface(ctx.rma.engine, ctx.comm)
