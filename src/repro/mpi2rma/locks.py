"""Passive-target window locks (MPI_Win_lock / MPI_Win_unlock).

One :class:`WindowLockManager` per rank arbitrates the locks of every
window whose memory that rank exposes.  Lock traffic is NIC-level
control packets, so the target application never calls anything —
faithful to passive-target semantics.

Grant policy: FIFO with reader sharing — a shared request joins current
shared holders only if no exclusive request is queued ahead of it, so
writers cannot starve.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Set, Tuple

from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.nic import Nic
    from repro.sim.core import Simulator

__all__ = ["WindowLockManager"]


class _LockState:
    __slots__ = ("holders", "exclusive", "queue")

    def __init__(self) -> None:
        self.holders: Set[int] = set()
        self.exclusive = False
        self.queue: Deque[Tuple[int, bool]] = deque()  # (rank, shared)


class WindowLockManager:
    """Target-side lock tables plus origin-side grant plumbing."""

    def __init__(self, sim: "Simulator", rank: int, nic: "Nic") -> None:
        self.sim = sim
        self.rank = rank
        self.nic = nic
        self._states: Dict[object, _LockState] = {}
        self._grant_events: Dict[object, object] = {}  # (win_id, target) -> Event
        nic.register_handler("mpi2.lock_req", self._on_lock_req)
        nic.register_handler("mpi2.lock_grant", self._on_grant)
        nic.register_handler("mpi2.unlock", self._on_unlock)

    # -- origin side -----------------------------------------------------
    def request(self, win_id: object, target: int, shared: bool):
        """Acquire the window lock at ``target`` (``yield from``)."""
        key = (win_id, target)
        if key in self._grant_events:
            raise RuntimeError(
                f"rank {self.rank}: window lock for {key} already requested"
            )
        ev = self.sim.event()
        self._grant_events[key] = ev
        pkt = Packet(
            src=self.rank, dst=target, kind="mpi2.lock_req",
            payload={"win_id": win_id, "shared": shared},
        )
        self.nic.send(pkt)
        yield ev
        del self._grant_events[key]

    def release(self, win_id: object, target: int) -> None:
        """Send the unlock (fire-and-forget)."""
        pkt = Packet(
            src=self.rank, dst=target, kind="mpi2.unlock",
            payload={"win_id": win_id},
        )
        self.nic.send(pkt)

    def _on_grant(self, packet: Packet) -> None:
        key = (packet.payload["win_id"], packet.src)
        ev = self._grant_events.get(key)
        if ev is None:
            raise RuntimeError(
                f"rank {self.rank}: unexpected window-lock grant {key}"
            )
        ev.succeed()

    # -- target side -----------------------------------------------------
    def _state(self, win_id: object) -> _LockState:
        st = self._states.get(win_id)
        if st is None:
            st = self._states[win_id] = _LockState()
        return st

    def _grant(self, win_id: object, rank: int) -> None:
        pkt = Packet(
            src=self.rank, dst=rank, kind="mpi2.lock_grant",
            payload={"win_id": win_id},
        )
        self.nic.send(pkt)

    def _on_lock_req(self, packet: Packet) -> None:
        win_id = packet.payload["win_id"]
        shared = packet.payload["shared"]
        st = self._state(win_id)
        if self._can_grant(st, shared):
            st.holders.add(packet.src)
            st.exclusive = not shared
            self._grant(win_id, packet.src)
        else:
            st.queue.append((packet.src, shared))

    @staticmethod
    def _can_grant(st: _LockState, shared: bool) -> bool:
        if not st.holders:
            return not st.queue  # empty queue: grant immediately
        if st.exclusive:
            return False
        # shared holders present: more readers may join only if no
        # writer is waiting (no-starvation)
        return shared and not st.queue

    def _on_unlock(self, packet: Packet) -> None:
        win_id = packet.payload["win_id"]
        st = self._state(win_id)
        if packet.src not in st.holders:
            raise RuntimeError(
                f"rank {self.rank}: unlock from {packet.src} which does not "
                f"hold the lock on window {win_id}"
            )
        st.holders.discard(packet.src)
        if st.holders:
            return
        st.exclusive = False
        self._drain_queue(win_id, st)

    def _drain_queue(self, win_id: object, st: _LockState) -> None:
        if not st.queue:
            return
        rank, shared = st.queue.popleft()
        st.holders.add(rank)
        st.exclusive = not shared
        self._grant(win_id, rank)
        if shared:
            # admit the contiguous run of shared requests behind it
            while st.queue and st.queue[0][1]:
                nxt, _ = st.queue.popleft()
                st.holders.add(nxt)
                self._grant(win_id, nxt)
