"""Epoch state and the MPI-2 overlapping-access correctness rules.

MPI-2 defines precise (and restrictive) correctness conditions inside an
access epoch; the paper's §II-A lists them among the reasons the model is
a poor PGAS target.  :class:`AccessTracker` enforces the core rule: in
one epoch, a location may be the target of multiple *accumulates with
the same operation*, but any other overlap involving a Put or Get is
erroneous.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Mpi2Error", "AccessTracker"]


class Mpi2Error(RuntimeError):
    """An MPI-2 RMA usage error (wrong epoch, overlapping access, …)."""


class AccessTracker:
    """Records (target, byte-interval, kind) accesses within one epoch.

    ``kind`` is ``"put"``, ``"get"``, or ``("acc", op)``.
    """

    def __init__(self) -> None:
        #: per target rank: list of (lo, hi, kind)
        self._accesses: Dict[int, List[Tuple[int, int, object]]] = {}

    @staticmethod
    def _conflicts(a: object, b: object) -> bool:
        # acc+acc with the same reduction op is the one permitted overlap
        if isinstance(a, tuple) and isinstance(b, tuple) and a == b:
            return False
        return True

    def check_and_record(
        self, target: int, lo: int, hi: int, kind: object
    ) -> None:
        """Validate an access against the epoch history, then record it.

        Raises :class:`Mpi2Error` on an erroneous overlap.
        """
        if hi <= lo:
            return
        entries = self._accesses.setdefault(target, [])
        for (elo, ehi, ekind) in entries:
            if lo < ehi and elo < hi and self._conflicts(kind, ekind):
                raise Mpi2Error(
                    f"overlapping RMA access [{lo}, {hi}) as {kind!r} "
                    f"conflicts with earlier [{elo}, {ehi}) as {ekind!r} "
                    f"on target {target} within one epoch (erroneous in "
                    "MPI-2; the strawman API permits it as undefined)"
                )
        entries.append((lo, hi, kind))

    def reset(self) -> None:
        """Start a new epoch."""
        self._accesses.clear()

    def targets(self) -> List[int]:
        """Targets touched in the current epoch."""
        return sorted(self._accesses)


class EpochState:
    """Which epochs this rank currently has open on a window."""

    def __init__(self) -> None:
        self.fence_active = False
        self.start_group: Optional[List[int]] = None
        self.post_group: Optional[List[int]] = None
        self.locked_target: Optional[int] = None
        self.lock_shared = False

    @property
    def access_open(self) -> bool:
        """May this rank issue RMA operations right now?"""
        return (
            self.fence_active
            or self.start_group is not None
            or self.locked_target is not None
        )

    def allowed_target(self, target: int) -> bool:
        """Is ``target`` reachable in the current access epoch?"""
        if self.fence_active:
            return True
        if self.start_group is not None:
            return target in self.start_group
        if self.locked_target is not None:
            return target == self.locked_target
        return False
