"""The MPI-2 one-sided interface — the baseline the paper criticises.

Implements windows and the three synchronization methods of Figure 1:

- **fence** (active target, collective);
- **post/start/complete/wait** (active target, group-scoped);
- **lock/unlock** (passive target, shared or exclusive).

Faithfully enforces the MPI-2 restrictions the paper calls out (§II-A):

- windows are created **collectively** (``win_create``), unlike the
  strawman's non-collective ``target_mem``;
- all communication must happen inside an epoch;
- concurrent/overlapping Put/Get accesses to the same target region in
  one epoch are **erroneous** and raise :class:`Mpi2Error`
  ("MPI-2 RMA makes overlapping RMA operations with Get and/or Put
  erroneous; PGAS languages make overlapping operations valid but
  undefined").
"""

from repro.mpi2rma.epoch import AccessTracker, Mpi2Error
from repro.mpi2rma.locks import WindowLockManager
from repro.mpi2rma.window import Mpi2Interface, Win, build_mpi2

__all__ = [
    "AccessTracker",
    "Mpi2Error",
    "Mpi2Interface",
    "Win",
    "WindowLockManager",
    "build_mpi2",
]
