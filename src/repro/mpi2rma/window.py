"""MPI-2 windows and the three synchronization methods (paper Fig. 1).

A :class:`Win` is created **collectively** (the restriction the strawman
drops) and supports ``put``/``get``/``accumulate`` plus:

- :meth:`Win.fence` — Figure 1a;
- :meth:`Win.post` / :meth:`Win.start` / :meth:`Win.complete` /
  :meth:`Win.wait` — Figure 1b;
- :meth:`Win.lock` / :meth:`Win.unlock` — Figure 1c.

Data movement reuses the strawman engine with no attributes (pure RDMA),
which mirrors how an MPI implementation would sit on a native RMA layer;
the MPI-2 semantics — epochs, collective windows, erroneous overlaps —
live entirely in this module.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.datatypes.base import Datatype
from repro.machine.address_space import Allocation
from repro.mpi.comm import Comm
from repro.mpi2rma.epoch import AccessTracker, EpochState, Mpi2Error
from repro.mpi2rma.locks import WindowLockManager
from repro.network.packet import Packet
from repro.resil.errors import WindowRevoked
from repro.rma.attributes import RmaAttrs
from repro.rma.target_mem import TargetMem

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime import World

__all__ = ["Win", "Mpi2Interface", "build_mpi2"]

_NO_ATTRS = RmaAttrs()
_POST_TAG = 1
_COMPLETE_TAG = 2
#: Packet kind of a ULFM-style revoke notice (fire-and-forget fan-out).
_REVOKE_KIND = "mpi2.revoke"


class Win:
    """One rank's handle on a collectively created window."""

    def __init__(
        self,
        iface: "Mpi2Interface",
        win_id: object,
        comm: Comm,
        alloc: Allocation,
        tmems: List[TargetMem],
    ) -> None:
        self._iface = iface
        self.win_id = win_id
        self.comm = comm
        self.alloc = alloc
        self._tmems = tmems
        self._epoch = EpochState()
        self._tracker = AccessTracker()
        self._freed = False
        self._revoked = False
        self._revoke_cause: Any = None

    # -- helpers ---------------------------------------------------------
    @property
    def _engine(self):
        return self._iface.engine

    @property
    def revoked(self) -> bool:
        """Whether this rank's handle has seen the window revoked."""
        return self._revoked

    def revoke(self, cause: Any = None) -> None:
        """ULFM ``MPI_Win_revoke``: poison the window everywhere.

        Local, non-blocking.  Marks this handle revoked and fans a
        revoke notice out to every other comm member (fire-and-forget
        packets; notices to dead ranks are simply dropped).  From the
        moment a rank's handle is revoked, its new operations and its
        synchronization calls raise :class:`WindowRevoked` instead of
        blocking inside collectives that surviving ranks can never
        finish.  Also fired automatically by the failure detector when
        a member of the window's communicator is declared failed (see
        :meth:`Mpi2Interface.win_create`).
        """
        if self._revoked or self._freed:
            return
        self._revoked = True
        self._revoke_cause = cause
        self._iface._broadcast_revoke(self)

    def _check_revoked(self, doing: str) -> None:
        if self._revoked:
            raise WindowRevoked(
                f"{doing} on revoked window {self.win_id!r}",
                win_id=self.win_id,
                failed_rank=getattr(self._revoke_cause, "rank", None),
                src=self.comm.rank,
            )

    def _check_open(self, target: int) -> None:
        if self._freed:
            raise Mpi2Error("operation on a freed window")
        self._check_revoked("RMA operation")
        if not self._epoch.access_open:
            raise Mpi2Error(
                "RMA operation outside an access epoch (MPI-2 requires "
                "fence, start, or lock first)"
            )
        if not self._epoch.allowed_target(target):
            raise Mpi2Error(
                f"target {target} is not part of the current access epoch"
            )

    def _record(self, target: int, disp: int, dtype: Datatype, count: int,
                kind: object) -> None:
        lo, hi = dtype.byte_range(count)
        self._tracker.check_and_record(target, disp + lo, disp + hi, kind)

    # -- data movement -----------------------------------------------------
    def put(self, origin_alloc: Allocation, origin_offset: int, count: int,
            dtype: Datatype, target: int, target_disp: int,
            target_count: Optional[int] = None,
            target_dtype: Optional[Datatype] = None,
            notify: Optional[int] = None):
        """MPI_Put (``yield from``; completes at epoch close).

        ``notify=match`` makes it a *notified* put (foMPI/UNR style):
        once the payload is applied, the target's notification board
        slot ``match`` counts one delivery, observable there through
        :meth:`wait_notify` / :meth:`test_notify`.
        """
        self._check_open(target)
        t_count = count if target_count is None else target_count
        t_dtype = dtype if target_dtype is None else target_dtype
        self._record(target, target_disp, t_dtype, t_count, "put")
        attrs = _NO_ATTRS if notify is None else _NO_ATTRS.with_(notify=notify)
        yield from self._engine.issue_put(
            origin_alloc, origin_offset, count, dtype,
            self._tmems[target], target_disp, t_count, t_dtype, attrs,
        )

    def get(self, origin_alloc: Allocation, origin_offset: int, count: int,
            dtype: Datatype, target: int, target_disp: int,
            target_count: Optional[int] = None,
            target_dtype: Optional[Datatype] = None):
        """MPI_Get (``yield from``; data valid after epoch close)."""
        self._check_open(target)
        t_count = count if target_count is None else target_count
        t_dtype = dtype if target_dtype is None else target_dtype
        self._record(target, target_disp, t_dtype, t_count, "get")
        ev = yield from self._engine.issue_get(
            origin_alloc, origin_offset, count, dtype,
            self._tmems[target], target_disp, t_count, t_dtype, _NO_ATTRS,
        )
        self._iface._pending_gets.append(ev)

    def accumulate(self, origin_alloc: Allocation, origin_offset: int,
                   count: int, dtype: Datatype, target: int,
                   target_disp: int, op: str = "sum",
                   notify: Optional[int] = None):
        """MPI_Accumulate: MPI-2 allows any reduce op; same-op overlaps
        are legal, anything else is erroneous.  ``notify=match`` makes
        it a notified accumulate (delivered after application)."""
        self._check_open(target)
        self._record(target, target_disp, dtype, count, ("acc", op))
        yield from self._engine.issue_accumulate(
            origin_alloc, origin_offset, count, dtype,
            self._tmems[target], target_disp, count, dtype,
            _NO_ATTRS.with_(atomicity=True, notify=notify), op=op,
        )

    # -- notified-RMA board (DESIGN §15) -----------------------------------
    def wait_notify(self, match: int, count: int = 1, watch=()):
        """Block until ``count`` notifications with ``match`` landed on
        this rank's slice of the window (``yield from``).  Returning
        implies the carrying payloads are applied locally.  ``watch``
        optionally names producer ranks whose death turns the wait into
        a structured :class:`~repro.rma.target_mem.RmaError`."""
        if self._freed:
            raise Mpi2Error("wait_notify on a freed window")
        self._check_revoked("wait_notify")
        world_watch = [self.comm.group.world_rank(r) for r in watch]
        err = yield from self._engine.wait_notify(
            self._tmems[self.comm.rank], match, count=count,
            watch=world_watch,
        )
        if err is not None:
            raise err
        return None

    def test_notify(self, match: int, count: int = 1):
        """Non-blocking probe of this rank's notification slot
        (``yield from``); consumes and returns True when satisfied."""
        if self._freed:
            raise Mpi2Error("test_notify on a freed window")
        self._check_revoked("test_notify")
        yield self._engine.sim.timeout(self._engine.timings.call_overhead)
        return self._engine.test_notify(
            self._tmems[self.comm.rank], match, count=count
        )

    def notify_all(self, match: int):
        """Release every local waiter parked on ``match`` without
        consuming board counts (``yield from``); returns the number
        released."""
        if self._freed:
            raise Mpi2Error("notify_all on a freed window")
        yield self._engine.sim.timeout(self._engine.timings.call_overhead)
        return self._engine.notify_all(self._tmems[self.comm.rank], match)

    # -- fence (Fig. 1a) ---------------------------------------------------
    def fence(self):
        """Collective: closes the previous fence epoch and opens a new one."""
        if self._freed:
            raise Mpi2Error("fence on a freed window")
        self._check_revoked("fence")
        if self._epoch.start_group is not None or self._epoch.locked_target is not None:
            raise Mpi2Error("fence while a start/lock epoch is open")
        yield from self._drain_local_completion()
        yield from self._engine.complete_all()
        yield from self.comm.barrier()
        self._tracker.reset()
        self._epoch.fence_active = True

    # -- post/start/complete/wait (Fig. 1b) ---------------------------------
    def post(self, origin_ranks: Sequence[int]):
        """Expose local memory to ``origin_ranks`` (target side)."""
        self._check_revoked("post")
        if self._epoch.post_group is not None:
            raise Mpi2Error("post while an exposure epoch is already open")
        self._epoch.post_group = list(origin_ranks)
        for origin in self._epoch.post_group:
            yield from self._iface._win_comm(self).send(
                None, origin, _POST_TAG
            )

    def start(self, target_ranks: Sequence[int]):
        """Open an access epoch toward ``target_ranks`` (origin side);
        waits for each target's matching post."""
        self._check_revoked("start")
        if self._epoch.start_group is not None:
            raise Mpi2Error("start while an access epoch is already open")
        if self._epoch.fence_active:
            raise Mpi2Error("start inside a fence epoch")
        for target in target_ranks:
            yield from self._iface._win_comm(self).recv(target, _POST_TAG)
        self._epoch.start_group = list(target_ranks)
        self._tracker.reset()

    def complete(self):
        """Close the start epoch: force remote completion at each target
        and notify it."""
        self._check_revoked("complete")
        if self._epoch.start_group is None:
            raise Mpi2Error("complete without a matching start")
        yield from self._drain_local_completion()
        for target in self._epoch.start_group:
            yield from self._engine.complete_one(
                self.comm.group.world_rank(target)
            )
            yield from self._iface._win_comm(self).send(
                None, target, _COMPLETE_TAG
            )
        self._epoch.start_group = None
        self._tracker.reset()

    def wait(self):
        """Close the post epoch: wait for every origin's complete."""
        self._check_revoked("wait")
        if self._epoch.post_group is None:
            raise Mpi2Error("wait without a matching post")
        for origin in self._epoch.post_group:
            yield from self._iface._win_comm(self).recv(origin, _COMPLETE_TAG)
        self._epoch.post_group = None

    # -- lock/unlock (Fig. 1c) ----------------------------------------------
    def lock(self, target: int, shared: bool = True):
        """Open a passive-target epoch toward ``target``."""
        self._check_revoked("lock")
        if self._epoch.access_open:
            raise Mpi2Error("lock while another access epoch is open")
        world_target = self.comm.group.world_rank(target)
        yield self._engine.sim.timeout(self._engine.timings.lock_op)
        yield from self._iface.lock_mgr.request(
            self.win_id, world_target, shared
        )
        self._epoch.locked_target = target
        self._epoch.lock_shared = shared
        self._tracker.reset()

    def unlock(self, target: int):
        """Close the passive-target epoch; all ops are remotely complete
        when unlock returns."""
        self._check_revoked("unlock")
        if self._epoch.locked_target != target:
            raise Mpi2Error(f"unlock({target}) without a matching lock")
        world_target = self.comm.group.world_rank(target)
        yield from self._drain_local_completion()
        yield from self._engine.complete_one(world_target)
        self._iface.lock_mgr.release(self.win_id, world_target)
        self._epoch.locked_target = None
        self._tracker.reset()

    # -- lifecycle -----------------------------------------------------------
    def free(self):
        """Collective window destruction (local-only once revoked)."""
        if self._freed:
            raise Mpi2Error("double free of window")
        if self._revoked:
            # ULFM semantics: a revoked window frees locally — the
            # collective drain/barrier could never complete with failed
            # members in the communicator.
            self._engine.withdraw(self._tmems[self.comm.rank])
            self._freed = True
            return
        yield from self._drain_local_completion()
        yield from self._engine.complete_all()
        yield from self.comm.barrier()
        self._engine.withdraw(self._tmems[self.comm.rank])
        self._freed = True

    def _drain_local_completion(self):
        """Wait for this rank's outstanding gets (their data must be in
        origin buffers before the epoch close returns)."""
        pending = self._iface._pending_gets
        if pending:
            from repro.sim.events import AllOf

            not_done = [ev for ev in pending if not ev.triggered]
            if not_done:
                yield AllOf(self._engine.sim, not_done)
            pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Win {self.win_id} rank={self.comm.rank}/{self.comm.size}>"


class Mpi2Interface:
    """Per-rank frontend (``ctx.mpi2``)."""

    def __init__(self, engine, comm_world: Comm,
                 lock_mgr: WindowLockManager, world: Any = None) -> None:
        self.engine = engine
        self.comm_world = comm_world
        self.lock_mgr = lock_mgr
        self.world = world
        self._win_seq = itertools.count()
        self._win_comms: Dict[object, Comm] = {}
        self._wins: Dict[object, Win] = {}
        self._pending_gets: List[Any] = []

    def win_create(self, alloc: Allocation, comm: Optional[Comm] = None,
                   shared: bool = False):
        """Collective window creation (``yield from``) — the MPI-2
        requirement the strawman API removes (§IV req. 1).
        ``shared=True`` exposes the window as a shared-memory window:
        co-located ranks then access it by direct load/store (the
        ``MPI_Win_allocate_shared`` flavor MPI-3 standardized)."""
        comm = comm if comm is not None else self.comm_world
        yield self.engine.sim.timeout(self.engine.registration_cost(alloc.size))
        tmem = self.engine.expose(alloc, shared=shared)
        tmems = yield from comm.allgather(tmem)
        win_comm = yield from comm.dup()
        win_id = ("win",) + comm.context + (next(self._win_seq),)
        win = Win(self, win_id, comm, alloc, tmems)
        self._win_comms[win_id] = win_comm
        self._wins[win_id] = win
        resil = getattr(self.world, "resil", None)
        if resil is not None:
            # Auto-revocation: a member of the window's communicator
            # declared failed by this rank's detector poisons the local
            # handle (and fans the notice out to survivors).
            me = self.engine.rank

            def on_rank_failed(notice, win=win):
                if not win._freed and notice.rank in win.comm.group:
                    win.revoke(cause=notice)

            resil.subscribe(me, on_rank_failed)
        return win

    def win_allocate_shared(self, nbytes: int, comm: Optional[Comm] = None):
        """``MPI_Win_allocate_shared`` convenience: collectively allocate
        ``nbytes`` on every rank and create a shared-memory window over
        the allocations.  Returns ``(alloc, win)`` (``yield from``)."""
        alloc = self.engine.mem.space.alloc(nbytes)
        win = yield from self.win_create(alloc, comm=comm, shared=True)
        return alloc, win

    def _win_comm(self, win: Win) -> Comm:
        return self._win_comms[win.win_id]

    # -- revocation fan-out ------------------------------------------------
    def _broadcast_revoke(self, win: Win) -> None:
        """Send a revoke notice for ``win`` to every other member."""
        nic = self.engine.nic
        me = win.comm.rank
        for member in range(win.comm.size):
            if member == me:
                continue
            nic.send(Packet(
                src=self.engine.rank,
                dst=win.comm.group.world_rank(member),
                kind=_REVOKE_KIND,
                payload={"win_id": win.win_id},
            ))

    def _on_revoke_notice(self, packet: Packet) -> None:
        win = self._wins.get(packet.payload["win_id"])
        if win is not None and not win._revoked and not win._freed:
            win._revoked = True
            win._revoke_cause = ("remote", packet.src)
            # Propagate further in case the original notice missed
            # someone (packets to dead ranks are dropped; re-fan-out is
            # idempotent thanks to the _revoked guard).
            self._broadcast_revoke(win)


def build_mpi2(world: "World") -> None:
    """Attach an :class:`Mpi2Interface` to every rank context."""
    for rank, ctx in world.contexts.items():
        lock_mgr = WindowLockManager(world.sim, rank, world.nics[rank])
        ctx.mpi2 = Mpi2Interface(ctx.rma.engine, ctx.comm, lock_mgr,
                                 world=world)
        world.nics[rank].register_handler(
            _REVOKE_KIND, ctx.mpi2._on_revoke_notice
        )
