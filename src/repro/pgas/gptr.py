"""Global pointers (DART-style).

A :class:`GlobalPtr` names one byte in a team-allocated segment as the
triple ``(segid, unit, offset)`` — the segment it belongs to, the team
unit whose block it points into, and the byte offset within that
block.  It is plain immutable data (safe to ship in messages, usable as
a dict key) and supports the pointer arithmetic PGAS code leans on:
``ptr + n`` advances the offset, and offsets past the end of a unit's
block are *normalized* by the owning :class:`~repro.pgas.team.TeamSegment`
into the next unit, so a segment reads as one linear global address
space of ``team.size * nbytes`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GlobalPtr"]


@dataclass(frozen=True, order=True)
class GlobalPtr:
    """One byte of a team segment: ``(segid, unit, offset)``.

    ``unit`` is a *team-local* unit id; translation to a world rank (and
    bounds/spill normalization of ``offset``) is the segment's job —
    the pointer itself never talks to the simulation.
    """

    segid: int
    unit: int
    offset: int

    def __add__(self, nbytes: int) -> "GlobalPtr":
        return replace(self, offset=self.offset + int(nbytes))

    def __sub__(self, other):
        if isinstance(other, GlobalPtr):
            if other.segid != self.segid:
                raise ValueError(
                    f"pointers into different segments "
                    f"({self.segid} vs {other.segid}) have no distance"
                )
            if other.unit != self.unit:
                raise ValueError(
                    "distance across units needs the segment's block "
                    "size; use TeamSegment.linear() on both pointers"
                )
            return self.offset - other.offset
        return replace(self, offset=self.offset - int(other))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"gptr(seg={self.segid}, unit={self.unit}, off={self.offset})"
