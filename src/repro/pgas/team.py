"""Teams and team-collective memory (DART-style).

The PGAS runtimes the paper positions RMA under (DASH/DART, GASPI,
UPC) organize processes into *teams* — hierarchical subgroups with
their own unit numbering, collectives, and collectively allocated
memory addressed by global pointers.  This module layers that shape
over the strawman interface:

* a :class:`Team` wraps a :class:`~repro.mpi.comm.Comm` (teams split
  into sub-teams exactly like ``MPI_Comm_split``) and adds the
  machine-locality queries DART exposes (``dart_team_locality``):
  which units share my node, split me into my node-local sub-team;
* :meth:`Team.memalloc` is the team-collective symmetric allocation
  (``dart_team_memalloc_aligned``): every unit contributes an equal
  block, exposed — by default — as a *shared-memory window*, so
  accesses between co-located units move by load/store while off-node
  accesses take the RMA engine's normal path;
* the returned :class:`TeamSegment` resolves
  :class:`~repro.pgas.gptr.GlobalPtr` arithmetic (including spill
  across unit blocks) and offers typed one-sided put/get/accumulate
  plus fetch-and-add on pointer-addressed memory.

Everything communicating is a generator (``yield from``), like the
rest of the runtime.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.datatypes import PREDEFINED
from repro.pgas.gptr import GlobalPtr
from repro.rma.attributes import RmaAttrs
from repro.rma.target_mem import TargetMem

__all__ = ["PgasError", "Team", "TeamSegment"]


class PgasError(RuntimeError):
    """Team/segment usage error."""


class Team:
    """A group of units with collectives and collective memory.

    Construct the root team with :meth:`Team.world`; derive sub-teams
    with :meth:`split` / :meth:`split_by_node`.  Unit ids are
    team-local ranks (DART's ``unitid``); :meth:`unit_world_rank`
    translates back to world ranks when talking to non-team APIs.
    """

    def __init__(self, ctx, comm, parent: Optional["Team"] = None) -> None:
        self._ctx = ctx
        self.comm = comm
        self.parent = parent
        self._seg_seq = 0

    @classmethod
    def world(cls, ctx) -> "Team":
        """The root team spanning ``ctx.comm`` (non-collective)."""
        return cls(ctx, ctx.comm)

    # -- identity ---------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def myid(self) -> int:
        """This process's unit id within the team."""
        return self.comm.rank

    def unit_world_rank(self, unit: int) -> int:
        return self.comm.group.world_rank(unit)

    # -- locality (dart_team_locality) ------------------------------------
    def node_of_unit(self, unit: int) -> int:
        machine = self._ctx.rma.engine.machine
        return machine.node_of_rank(self.unit_world_rank(unit))

    def is_local(self, unit: int) -> bool:
        """Whether ``unit`` shares this unit's node (load/store reach)."""
        return self.node_of_unit(unit) == self.node_of_unit(self.myid)

    def local_units(self) -> List[int]:
        """Unit ids co-located on this unit's node, in unit order."""
        return [u for u in range(self.size) if self.is_local(u)]

    # -- collectives (delegated to the comm) ------------------------------
    def barrier(self):
        yield from self.comm.barrier()

    def bcast(self, obj, root: int = 0):
        out = yield from self.comm.bcast(obj, root=root)
        return out

    def allgather(self, obj):
        out = yield from self.comm.allgather(obj)
        return out

    def reduce(self, obj, op: Callable, root: int = 0):
        out = yield from self.comm.reduce(obj, op, root=root)
        return out

    def allreduce(self, obj, op: Callable):
        out = yield from self.comm.allreduce(obj, op)
        return out

    # -- derivation -------------------------------------------------------
    def split(self, color, key: int = 0):
        """Partition into sub-teams by ``color`` (``yield from``).

        Returns the sub-team this unit landed in, or ``None`` for
        ``color=None`` (the unit opts out).
        """
        sub = yield from self.comm.split(color, key)
        if sub is None:
            return None
        return Team(self._ctx, sub, parent=self)

    def split_by_node(self):
        """Split into one sub-team per machine node (``yield from``) —
        DART's ``DART_LOCALITY_SCOPE_NODE`` team, the natural domain
        for shared-memory windows."""
        team = yield from self.split(self.node_of_unit(self.myid))
        return team

    # -- collective memory ------------------------------------------------
    def memalloc(self, nbytes: int, shared: bool = True):
        """Team-collective symmetric allocation (``yield from``).

        Every unit allocates and exposes ``nbytes`` bytes
        (zero-initialized) and the descriptors are allgathered;
        returns a :class:`TeamSegment`.  ``shared=True`` (default)
        requests the shared-memory window flavor so co-located units
        bypass the NIC — non-coherent nodes degrade to plain exposure
        per descriptor, exactly as :meth:`repro.rma.api.RmaInterface.expose`
        does.
        """
        if nbytes <= 0:
            raise PgasError(f"memalloc needs a positive size, got {nbytes}")
        ctx = self._ctx
        alloc = ctx.mem.space.alloc(nbytes)
        yield ctx.sim.timeout(ctx.rma.engine.registration_cost(nbytes))
        tmem = ctx.rma.expose(alloc, shared=shared)
        tmems = yield from self.comm.allgather(tmem)
        segid = self._seg_seq
        self._seg_seq += 1
        return TeamSegment(self, segid, nbytes, alloc, tmems)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Team unit {self.myid}/{self.size}>"


_PUT_ATTRS = RmaAttrs(blocking=True, remote_completion=True)
_PUT_ATTRS_NB = RmaAttrs(blocking=False, remote_completion=True)
_ACC_ATTRS = RmaAttrs(blocking=True, remote_completion=True, atomicity=True)
_ACC_ATTRS_NB = RmaAttrs(blocking=False, remote_completion=True,
                         atomicity=True)


class TeamSegment:
    """Collectively allocated team memory addressed by global pointers.

    The segment is ``team.size`` equal blocks of ``nbytes`` bytes, one
    per unit, forming a linear global address space of
    ``team.size * nbytes`` bytes.  :class:`~repro.pgas.gptr.GlobalPtr`
    offsets past a block's end spill into the next unit's block; a
    single transfer must fit within one block (it targets exactly one
    unit's memory).
    """

    def __init__(self, team: Team, segid: int, nbytes: int, alloc,
                 tmems: List[TargetMem]) -> None:
        self.team = team
        self.segid = segid
        self.nbytes = nbytes
        self._alloc = alloc
        self._tmems = tmems
        self._freed = False

    # -- pointers ---------------------------------------------------------
    def gptr(self, unit: int = 0, offset: int = 0) -> GlobalPtr:
        """A pointer into ``unit``'s block (normalized)."""
        ptr = GlobalPtr(self.segid, unit, offset)
        unit, off = self._locate(ptr, 0)
        return GlobalPtr(self.segid, unit, off)

    def at(self, gaddr: int) -> GlobalPtr:
        """The pointer at linear global address ``gaddr``."""
        return self.gptr(0, gaddr)

    def linear(self, ptr: GlobalPtr) -> int:
        """The linear global address of ``ptr``."""
        unit, off = self._locate(ptr, 0)
        return unit * self.nbytes + off

    def _locate(self, ptr: GlobalPtr, need: int):
        """Resolve ``ptr`` to ``(unit, offset)``, spilling across
        blocks, and check ``need`` bytes fit in the landing block."""
        if ptr.segid != self.segid:
            raise PgasError(
                f"pointer into segment {ptr.segid} used on segment "
                f"{self.segid}")
        gaddr = ptr.unit * self.nbytes + ptr.offset
        # even a bare pointer (need=0) must name a real byte — unchecked
        # past-end arithmetic lives on GlobalPtr, not on the segment
        if gaddr < 0 or gaddr + max(need, 1) > self.team.size * self.nbytes:
            raise PgasError(
                f"pointer {ptr!r} outside segment of "
                f"{self.team.size} x {self.nbytes} bytes")
        unit, off = divmod(gaddr, self.nbytes)
        if off + need > self.nbytes:
            raise PgasError(
                f"{need}-byte access at {ptr!r} crosses a unit boundary")
        return unit, off

    # -- data movement ----------------------------------------------------
    def _check_alive(self) -> None:
        if self._freed:
            raise PgasError("operation on a freed TeamSegment")

    def _stage(self, data: np.ndarray):
        """Scratch copy of ``data`` in the local node's byte order (the
        engine reads origin buffers in the origin node's
        representation)."""
        ctx = self.team._ctx
        node_dt = data.dtype.newbyteorder(ctx.mem.space.np_byteorder)
        raw = np.ascontiguousarray(data, dtype=node_dt)
        scratch = ctx.mem.space.alloc(max(raw.nbytes, 1))
        ctx.mem.space.buffer(scratch)[: raw.nbytes] = (
            raw.view(np.uint8).reshape(-1))
        return scratch

    def _elem(self, dtype) -> object:
        np_dtype = np.dtype(dtype)
        if np_dtype.name not in PREDEFINED:
            raise PgasError(f"unsupported dtype {dtype!r}")
        return PREDEFINED[np_dtype.name]

    def put(self, ptr: GlobalPtr, data, blocking: bool = True):
        """One-sided write of ``data`` at ``ptr`` (``yield from``;
        returns the :class:`~repro.mpi.request.Request`).  Remotely
        complete when the request completes; with ``blocking`` the call
        itself waits (the open-loop benches pass ``blocking=False`` and
        harvest the request events)."""
        self._check_alive()
        data = np.asarray(data)
        elem = self._elem(data.dtype)
        unit, off = self._locate(ptr, data.nbytes)
        ctx = self.team._ctx
        scratch = self._stage(data)
        req = yield from ctx.rma.put(
            scratch, 0, data.size, elem, self._tmems[unit], off,
            data.size, elem, comm=self.team.comm,
            attrs=_PUT_ATTRS if blocking else _PUT_ATTRS_NB,
        )
        # the engine packed the wire bytes at issue; scratch is done
        ctx.mem.space.free(scratch)
        return req

    def get(self, ptr: GlobalPtr, count: int, dtype="float64"):
        """Blocking one-sided read of ``count`` elements at ``ptr``;
        returns a NumPy array (``yield from``)."""
        self._check_alive()
        elem = self._elem(dtype)
        np_dtype = np.dtype(dtype)
        unit, off = self._locate(ptr, count * np_dtype.itemsize)
        ctx = self.team._ctx
        scratch = ctx.mem.space.alloc(max(count * np_dtype.itemsize, 1))
        yield from ctx.rma.get(
            scratch, 0, count, elem, self._tmems[unit], off, count, elem,
            comm=self.team.comm, attrs=RmaAttrs(blocking=True),
        )
        out = ctx.mem.space.view(scratch, np_dtype.name, count=count).copy()
        ctx.mem.space.free(scratch)
        return out

    def get_nb(self, ptr: GlobalPtr, count: int, dtype="float64"):
        """Open-loop one-sided read: issue and return the request
        without waiting (``yield from``).  The fetched data lands in a
        scratch buffer that is reclaimed on completion — use this when
        only the access (and its latency) matters, not the value."""
        self._check_alive()
        elem = self._elem(dtype)
        np_dtype = np.dtype(dtype)
        unit, off = self._locate(ptr, count * np_dtype.itemsize)
        ctx = self.team._ctx
        scratch = ctx.mem.space.alloc(max(count * np_dtype.itemsize, 1))
        req = yield from ctx.rma.get(
            scratch, 0, count, elem, self._tmems[unit], off, count, elem,
            comm=self.team.comm, attrs=RmaAttrs(blocking=False),
        )
        req.event.add_callback(
            lambda _ev, space=ctx.mem.space, a=scratch: space.free(a))
        return req

    def accumulate(self, ptr: GlobalPtr, data, op: str = "sum",
                   blocking: bool = True):
        """Atomic one-sided update at ``ptr`` (``yield from``; returns
        the request).  Concurrent updates from any unit never lose
        increments."""
        self._check_alive()
        data = np.asarray(data)
        elem = self._elem(data.dtype)
        unit, off = self._locate(ptr, data.nbytes)
        ctx = self.team._ctx
        scratch = self._stage(data)
        req = yield from ctx.rma.accumulate(
            scratch, 0, data.size, elem, self._tmems[unit], off,
            data.size, elem, op=op, comm=self.team.comm,
            attrs=_ACC_ATTRS if blocking else _ACC_ATTRS_NB,
        )
        ctx.mem.space.free(scratch)
        return req

    def fetch_add(self, ptr: GlobalPtr, operand, dtype="int64"):
        """Atomic fetch-and-add of one element at ``ptr``; returns the
        pre-update value (``yield from``)."""
        self._check_alive()
        np_dtype = np.dtype(dtype)
        unit, off = self._locate(ptr, np_dtype.itemsize)
        old = yield from self.team._ctx.rma.fetch_and_add(
            self._tmems[unit], off, np_dtype.name, operand)
        return old

    # -- local access -----------------------------------------------------
    def local_view(self, dtype="uint8", count: Optional[int] = None):
        """Writable NumPy view of this unit's own block."""
        self._check_alive()
        ctx = self.team._ctx
        ctx.rma.engine.materialize_inbound()
        np_dtype = np.dtype(dtype)
        if count is None:
            count = self.nbytes // np_dtype.itemsize
        return ctx.mem.space.view(self._alloc, np_dtype.name, count=count)

    # -- lifecycle --------------------------------------------------------
    def sync(self):
        """Collective completion + barrier over the team
        (``yield from``) — all prior accesses to the segment are
        globally visible afterwards."""
        self._check_alive()
        yield from self.team._ctx.rma.complete_collective(self.team.comm)

    def free(self):
        """Collectively release the segment (``yield from``)."""
        self._check_alive()
        yield from self.sync()
        ctx = self.team._ctx
        ctx.rma.withdraw(self._tmems[self.team.myid])
        ctx.mem.space.free(self._alloc)
        self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TeamSegment {self.segid}: {self.team.size} x "
                f"{self.nbytes} B>")
