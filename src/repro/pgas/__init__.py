"""A DART-style PGAS layer over the strawman RMA interface.

The paper argues the strawman API is the right substrate for
"library-based RMA approaches" (§II); PGAS runtimes like DASH/DART are
the modern shape of that consumer.  This package provides their core
vocabulary — :class:`~repro.pgas.team.Team` (hierarchical process
groups with collectives and locality queries),
:class:`~repro.pgas.gptr.GlobalPtr` (``(segment, unit, offset)``
global addresses with pointer arithmetic), and
:class:`~repro.pgas.team.TeamSegment` (team-collective symmetric
memory, exposed as shared-memory windows so co-located units
communicate by load/store).  :class:`repro.ga.ShardedStore` builds a
key-value store on top of it.
"""

from repro.pgas.gptr import GlobalPtr
from repro.pgas.team import PgasError, Team, TeamSegment

__all__ = ["GlobalPtr", "PgasError", "Team", "TeamSegment"]
