"""A sharded key-value store over the PGAS team layer.

The "million-client" serving scenario: a fixed keyspace of fixed-width
values is sharded over the units of a :class:`~repro.pgas.team.Team`
with a pluggable placement policy, and any unit may ``get``/``put``/
``add`` any key one-sidedly — owners never participate.  The backing
memory is one team-collective :class:`~repro.pgas.team.TeamSegment`
allocated as *shared-memory windows*, so a request whose key lives on
a co-located unit moves by load/store through the node's cache model
(zero NIC packets) while cross-node requests ride the RMA engine's
normal path (op-trains included).

Placement policies map a key to its owning unit:

* ``"block"`` — contiguous key ranges per unit (locality-friendly:
  a client that scans neighbouring keys stays on one shard);
* ``"cyclic"`` — round-robin (spreads hot *ranges*, not hot keys);
* ``"hashed"`` — Knuth multiplicative hash (spreads hot keys; the
  default for serving workloads);
* any callable ``(key, n_units) -> unit`` for custom schemes
  (e.g. pin hot keys onto the client's own node).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

import numpy as np

from repro.ga.global_array import GaError
from repro.pgas.gptr import GlobalPtr
from repro.pgas.team import Team, TeamSegment

__all__ = ["ShardedStore", "PLACEMENTS"]

#: Built-in placement policy names.
PLACEMENTS = ("block", "cyclic", "hashed")


def _block(key: int, n_keys: int, n_units: int) -> int:
    base, rem = divmod(n_keys, n_units)
    # earlier units hold the remainder keys, like GlobalArray rows
    boundary = (base + 1) * rem
    if key < boundary:
        return key // (base + 1)
    return rem + (key - boundary) // base if base else n_units - 1


def _cyclic(key: int, n_keys: int, n_units: int) -> int:
    return key % n_units

def _hashed(key: int, n_keys: int, n_units: int) -> int:
    return (key * 2654435761 % (1 << 32)) % n_units


_POLICIES = {"block": _block, "cyclic": _cyclic, "hashed": _hashed}

Placement = Union[str, Callable[[int, int], int]]


class ShardedStore:
    """Fixed-keyspace KV store sharded over a team (see module doc).

    Create collectively with :meth:`create`; every unit must pass the
    same keyspace/placement/dtype.  Values are single elements of
    ``dtype`` (the serving benches use ``int64`` counters/records).
    """

    def __init__(self, team: Team, segment: TeamSegment, n_keys: int,
                 np_dtype, owners: List[int], slots: List[int],
                 placement_name: str) -> None:
        self.team = team
        self.segment = segment
        self.n_keys = n_keys
        self.dtype = np_dtype
        self._owners = owners
        self._slots = slots
        self.placement = placement_name
        self._destroyed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, team: Team, n_keys: int, placement: Placement = "hashed",
               dtype: str = "int64"):
        """Collectively create a zeroed store (``yield from``)."""
        if n_keys <= 0:
            raise GaError(f"store needs a positive keyspace, got {n_keys}")
        np_dtype = np.dtype(dtype)
        if isinstance(placement, str):
            if placement not in _POLICIES:
                raise GaError(f"unknown placement {placement!r}; choose "
                              f"from {PLACEMENTS} or pass a callable")
            fn = _POLICIES[placement]
            name = placement
            owners = [fn(k, n_keys, team.size) for k in range(n_keys)]
        else:
            name = getattr(placement, "__name__", "custom")
            owners = [int(placement(k, team.size)) for k in range(n_keys)]
            if any(u < 0 or u >= team.size for u in owners):
                raise GaError(f"placement {name!r} mapped a key outside "
                              f"units 0..{team.size - 1}")
        counts = [0] * team.size
        slots = [0] * n_keys
        for key in range(n_keys):
            unit = owners[key]
            slots[key] = counts[unit]
            counts[unit] += 1
        capacity = max(max(counts), 1)
        segment = yield from team.memalloc(capacity * np_dtype.itemsize,
                                           shared=True)
        return cls(team, segment, n_keys, np_dtype, owners, slots, name)

    # ------------------------------------------------------------------
    def _check_key(self, key: int) -> None:
        if self._destroyed:
            raise GaError("operation on a destroyed ShardedStore")
        if key < 0 or key >= self.n_keys:
            raise GaError(f"key {key} outside keyspace of {self.n_keys}")

    def owner_of(self, key: int) -> int:
        """The unit owning ``key``."""
        self._check_key(key)
        return self._owners[key]

    def ptr_of(self, key: int) -> GlobalPtr:
        """The global pointer at ``key``'s value slot."""
        self._check_key(key)
        return self.segment.gptr(self._owners[key],
                                 self._slots[key] * self.dtype.itemsize)

    def is_local(self, key: int) -> bool:
        """Whether ``key``'s owner shares this unit's node (the access
        will move by load/store, not NIC packets)."""
        return self.team.is_local(self.owner_of(key))

    # -- blocking ops ---------------------------------------------------
    def put(self, key: int, value):
        """Write ``key``'s value; remotely complete on return
        (``yield from``)."""
        yield from self.segment.put(
            self.ptr_of(key), np.asarray([value], dtype=self.dtype))

    def get(self, key: int):
        """Read ``key``'s value (``yield from``)."""
        out = yield from self.segment.get(self.ptr_of(key), 1,
                                          dtype=self.dtype)
        return out[0].item()

    def add(self, key: int, delta):
        """Atomically ``store[key] += delta`` (``yield from``);
        concurrent adds from any unit never lose increments."""
        yield from self.segment.accumulate(
            self.ptr_of(key), np.asarray([delta], dtype=self.dtype))

    def fetch_add(self, key: int, delta):
        """Atomic fetch-and-add; returns the pre-update value
        (``yield from``)."""
        if not np.issubdtype(self.dtype, np.integer):
            raise GaError("fetch_add requires an integer-valued store")
        old = yield from self.segment.fetch_add(self.ptr_of(key), delta,
                                                dtype=self.dtype)
        return int(old)

    # -- open-loop ops (the serving benches) ----------------------------
    def put_nb(self, key: int, value):
        """Issue a put and return its request without waiting
        (``yield from``)."""
        req = yield from self.segment.put(
            self.ptr_of(key), np.asarray([value], dtype=self.dtype),
            blocking=False)
        return req

    def get_nb(self, key: int):
        """Issue a get and return its request without waiting; the
        fetched value is discarded (``yield from``)."""
        req = yield from self.segment.get_nb(self.ptr_of(key), 1,
                                             dtype=self.dtype)
        return req

    def add_nb(self, key: int, delta):
        """Issue an atomic add and return its request without waiting
        (``yield from``)."""
        req = yield from self.segment.accumulate(
            self.ptr_of(key), np.asarray([delta], dtype=self.dtype),
            blocking=False)
        return req

    # ------------------------------------------------------------------
    def local_values(self) -> np.ndarray:
        """This unit's shard as a NumPy view (slot order)."""
        if self._destroyed:
            raise GaError("operation on a destroyed ShardedStore")
        n_mine = sum(1 for u in self._owners if u == self.team.myid)
        return self.segment.local_view(dtype=self.dtype,
                                       count=max(n_mine, 1))[:n_mine]

    def sync(self):
        """Collective phase boundary (``yield from``): all prior ops
        are globally visible afterwards."""
        yield from self.segment.sync()

    def destroy(self):
        """Collectively free the store (``yield from``)."""
        yield from self.segment.free()
        self._destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ShardedStore {self.n_keys} keys ({self.placement}) "
                f"over {self.team.size} units>")
