"""A replicated, failure-tolerant GlobalArray (primary–backup).

:class:`ReplicatedGlobalArray` keeps ``rf`` copies of every block of a
block-distributed array.  Blocks keep the same row partition as
:class:`~repro.ga.global_array.GlobalArray` — block ``b`` is the rows
rank ``b`` would own — but each block is *held* by ``rf`` ranks (the
home rank and the next ``rf-1`` ranks on the ring), and every rank
backs its copies with a full-size mirror region so the displacement of
global row ``g`` is ``g * row_bytes`` on **every** holder.  That makes
failover a pure metadata operation: no re-layout, just a new holder
list.

Durability contract
-------------------
:meth:`put` and :meth:`acc` return only after the update is *remotely
complete on every live holder* (primary **and** backups) — an
acknowledged write survives any single rank failure at ``rf >= 2``.
:meth:`get` reads the first live holder (primary, then backups, in
ring order).

Failure handling
----------------
Writes to a failed holder surface as structured
:class:`~repro.rma.target_mem.RmaError` (``kind="rank_failed"``); the
array marks the holder suspect and keeps going as long as at least one
replica of the block applied the update.  Recovery is collective:
:meth:`recover` agrees on the failed set (via
:meth:`repro.mpi.comm.Comm.agree` — call it only after the failure
detector has *converged*, i.e. one settle period after the first
suspicion), shrinks the communicator, bumps the array epoch, restores
the replication factor by copying surviving replicas onto fresh
holders, and reports MTTR + re-replicated bytes through ``world.metrics``.

With ``rf=1`` there is no live redundancy; :meth:`checkpoint` puts each
block on a ring neighbor's shadow region, and :meth:`recover` rolls a
lost block back to its last checkpoint (documented data loss back to
the checkpoint — exactly the classic trade-off the replication factor
buys out of).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.ga.global_array import GaError, GlobalArray, _normalize_region
from repro.rma.attributes import RmaAttrs
from repro.rma.target_mem import RmaError

__all__ = ["ReplicatedGlobalArray"]

_PUT_ATTRS = RmaAttrs(blocking=True, remote_completion=True)
_ACC_ATTRS = RmaAttrs(blocking=True, remote_completion=True, atomicity=True)

#: Error kinds that mean "this holder is gone", not "this op was bad".
_FAILURE_KINDS = ("rank_failed", "link_partition")


class ReplicatedGlobalArray(GlobalArray):
    """See module docstring.  Create collectively with :meth:`create`."""

    def __init__(self, ctx, comm, shape, np_dtype, alloc, tmems,
                 row_starts, rf, shadow_alloc, shadow_tmems) -> None:
        super().__init__(ctx, comm, shape, np_dtype, alloc, tmems,
                         row_starts)
        self.rf = rf
        self.epoch = 0
        self._world_rank = ctx.rank
        #: world ranks that were members at creation (block homes).
        self._members: List[int] = [
            comm.group.world_rank(r) for r in range(comm.size)
        ]
        self._nblocks = comm.size
        #: block -> world ranks holding a copy (holder[0] is primary).
        self._holders: Dict[int, List[int]] = {
            b: [self._members[(b + i) % comm.size] for i in range(rf)]
            for b in range(comm.size)
        }
        #: world ranks this rank has seen fail mid-operation.
        self._suspects: Set[int] = set()
        self._dead: Set[int] = set()
        self._shadow_alloc = shadow_alloc
        self._shadow_tmems = shadow_tmems
        #: block -> world rank holding its last checkpoint (rf=1 only).
        self._shadow_of: Dict[int, int] = {}
        #: Test-only planted bugs (mirrors engine.conformance_mutations):
        #: "skip_backup" acks after the primary alone — the durability
        #: oracle must catch the resulting loss when the primary dies.
        self.conformance_mutations: frozenset = frozenset()

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, ctx, shape, dtype: str = "float64", comm=None,
               rf: int = 2):
        """Collectively create a zero-filled replicated array.

        ``rf`` is the replication factor (copies per block); must not
        exceed the communicator size.  ``rf=1`` disables live
        redundancy and arms the checkpoint/rollback fallback instead.
        """
        comm = comm if comm is not None else ctx.comm
        if not 1 <= rf <= comm.size:
            raise GaError(
                f"replication factor {rf} outside [1, {comm.size}]"
            )
        shape = tuple(int(s) for s in shape)
        if len(shape) not in (1, 2):
            raise GaError("ReplicatedGlobalArray supports 1-D and 2-D shapes")
        if any(s <= 0 for s in shape):
            raise GaError(f"invalid shape {shape}")
        np_dtype = np.dtype(dtype)
        n0 = shape[0]
        base, rem = divmod(n0, comm.size)
        row_starts = [0]
        for r in range(comm.size):
            row_starts.append(row_starts[-1] + base + (1 if r < rem else 0))
        cols = shape[1] if len(shape) == 2 else 1
        total = n0 * cols * np_dtype.itemsize
        # Full-size mirror: row g lives at g*row_bytes on every holder.
        alloc = ctx.mem.space.alloc(max(total, 1))
        yield ctx.sim.timeout(ctx.rma.engine.registration_cost(total))
        tmem = ctx.rma.expose(alloc)
        tmems = yield from comm.allgather(tmem)
        tmems = {
            comm.group.world_rank(r): t for r, t in enumerate(tmems)
        }
        shadow_alloc = shadow_tmems = None
        if rf == 1:
            shadow_alloc = ctx.mem.space.alloc(max(total, 1))
            shadow = ctx.rma.expose(shadow_alloc)
            gathered = yield from comm.allgather(shadow)
            shadow_tmems = {
                comm.group.world_rank(r): t for r, t in enumerate(gathered)
            }
        return cls(ctx, comm, shape, np_dtype, alloc, tmems, row_starts,
                   rf, shadow_alloc, shadow_tmems)

    # ------------------------------------------------------------------
    # layout: full mirror, so the target displacement ignores block homes
    # ------------------------------------------------------------------
    def _target_layout(self, owner, row_lo, row_hi, cols):
        from repro.datatypes import hvector

        nrows = row_hi - row_lo
        col_lo, col_hi = cols
        ncols = col_hi - col_lo
        disp = row_lo * self.row_bytes + col_lo * self.dtype.itemsize
        full_width = self.shape[1] if self.ndim == 2 else 1
        if ncols == full_width:
            return disp, nrows * ncols, self._elem
        return disp, 1, hvector(nrows, ncols, self.row_bytes, self._elem)

    def holders_of(self, block: int) -> List[int]:
        """Live holders (world ranks) of ``block``, primary first."""
        return [h for h in self._holders[block]
                if h not in self._suspects and h not in self._dead]

    def local_view(self) -> np.ndarray:
        """Writable view of this rank's full mirror region (only rows of
        blocks this rank holds are meaningful)."""
        self._ctx.rma.engine.materialize_inbound()
        cols = self.shape[1] if self.ndim == 2 else None
        count = self.shape[0] * (cols if cols else 1)
        view = self._ctx.mem.space.view(self._alloc, self.dtype.name,
                                        count=count)
        return view.reshape(self.shape[0], cols) if cols else view

    # ------------------------------------------------------------------
    def _is_failure(self, err: RmaError) -> bool:
        return getattr(err, "kind", None) in _FAILURE_KINDS

    def _mark_suspect(self, rank: int) -> None:
        if rank not in self._suspects:
            self._suspects.add(rank)
            resil = getattr(self._ctx.world, "resil", None)
            if resil is not None:
                resil.assert_failed(self._world_rank, rank)

    def _write_pieces(self, region, data, attrs, acc_scale=None):
        """Write ``data`` to every live holder of each touched block.

        Returns normally only once each update is remotely complete on
        all live replicas; raises :class:`GaError` if any block has no
        live replica left.
        """
        bounds = _normalize_region(region, self.shape)
        expect = tuple(hi - lo for lo, hi in bounds)
        data = np.asarray(data, dtype=self.dtype).reshape(expect)
        for block, rlo, rhi, cols in self._owner_pieces(region):
            piece = data[rlo - bounds[0][0]: rhi - bounds[0][0]]
            scratch = self._stage(piece)
            disp, count, tdtype = self._target_layout(block, rlo, rhi, cols)
            applied = 0
            for holder in self.holders_of(block):
                try:
                    if acc_scale is None:
                        yield from self._ctx.rma.put(
                            scratch, 0, piece.size, self._elem,
                            self._tmems[holder], disp, count, tdtype,
                            attrs=attrs, comm=self.comm,
                        )
                    else:
                        yield from self._ctx.rma.accumulate(
                            scratch, 0, piece.size, self._elem,
                            self._tmems[holder], disp, count, tdtype,
                            op="daxpy", scale=acc_scale, attrs=attrs,
                            comm=self.comm,
                        )
                    applied += 1
                    if "skip_backup" in self.conformance_mutations:
                        break
                except RmaError as err:
                    if not self._is_failure(err):
                        raise
                    self._mark_suspect(holder)
            self._ctx.mem.space.free(scratch)
            if applied == 0:
                raise GaError(
                    f"block {block} has no live replica (holders "
                    f"{self._holders[block]}, suspects "
                    f"{sorted(self._suspects)}); recover() or restore "
                    f"from checkpoint"
                )

    def put(self, region, data):
        """Replicated write; remotely complete on every live holder when
        the call returns (the durability ack point)."""
        self._check_alive()
        yield from self._write_pieces(region, data, _PUT_ATTRS)

    def acc(self, region, data, scale: float = 1.0):
        """Replicated atomic update (``+= scale * data`` on every live
        holder; daxpy commutes, so per-replica interleavings converge)."""
        self._check_alive()
        yield from self._write_pieces(region, data, _ACC_ATTRS,
                                      acc_scale=scale)

    def get(self, region):
        """Read from the first live holder of each block (primary-first
        failover)."""
        self._check_alive()
        bounds = _normalize_region(region, self.shape)
        shape = tuple(hi - lo for lo, hi in bounds)
        out = np.empty(shape, dtype=self.dtype)
        for block, rlo, rhi, cols in self._owner_pieces(region):
            nrows = rhi - rlo
            ncols = cols[1] - cols[0]
            nelems = nrows * ncols
            scratch = self._ctx.mem.space.alloc(
                max(nelems * self.dtype.itemsize, 1)
            )
            disp, count, tdtype = self._target_layout(block, rlo, rhi, cols)
            got = False
            for holder in self.holders_of(block):
                try:
                    yield from self._ctx.rma.get(
                        scratch, 0, nelems, self._elem,
                        self._tmems[holder], disp, count, tdtype,
                        attrs=_PUT_ATTRS, comm=self.comm,
                    )
                    got = True
                    break
                except RmaError as err:
                    if not self._is_failure(err):
                        raise
                    self._mark_suspect(holder)
            if not got:
                raise GaError(f"block {block} has no live replica to read")
            piece = (
                self._ctx.mem.space.view(scratch, self.dtype.name,
                                         count=nelems)
                .reshape(nrows, ncols).copy()
            )
            r0 = rlo - bounds[0][0]
            out[r0: r0 + nrows] = (
                piece if self.ndim == 2 else piece.reshape(-1)
            )
            self._ctx.mem.space.free(scratch)
        return out

    def read_inc(self, row: int, col: int = 0, amount: int = 1):
        """Fetch-and-add on the block's *primary*, then replicate the
        increment to the backups.  Linearizable while the primary is
        stable; during a failover window concurrent callers may observe
        a backup that has not applied every increment yet (use
        :meth:`recover` before trusting counters after a failure)."""
        self._check_alive()
        if not np.issubdtype(self.dtype, np.integer):
            raise GaError("read_inc requires an integer-typed array")
        block = self.owner_of(row)
        holders = self.holders_of(block)
        if not holders:
            raise GaError(f"block {block} has no live replica")
        disp, _, _ = self._target_layout(block, row, row + 1, (col, col + 1))
        old = None
        for i, holder in enumerate(holders):
            try:
                if i == 0:
                    old = yield from self._ctx.rma.fetch_and_add(
                        self._tmems[holder], disp, self.dtype.name, amount
                    )
                else:
                    scratch = self._stage(np.asarray([amount]))
                    yield from self._ctx.rma.accumulate(
                        scratch, 0, 1, self._elem, self._tmems[holder],
                        disp, 1, self._elem, op="daxpy", scale=1.0,
                        attrs=_ACC_ATTRS, comm=self.comm,
                    )
                    self._ctx.mem.space.free(scratch)
            except RmaError as err:
                if not self._is_failure(err):
                    raise
                self._mark_suspect(holder)
        if old is None:
            raise GaError(f"block {block} primary failed during read_inc")
        return int(old)

    def get_acc(self, region, data, scale: float = 1.0):
        raise GaError(
            "get_acc is not supported on a replicated array (a fetching "
            "update cannot be made atomic across replicas); use read_inc "
            "for counters"
        )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, dead=None):
        """Collective failover + re-replication (``yield from``).

        Every *survivor* must call this with a converged view of the
        failed set (its detector suspicions, optionally extended by
        ``dead``) — in practice: wait one detector settle period after
        the first suspicion, then recover.  Agrees on the union,
        shrinks the communicator, bumps the epoch, restores ``rf``
        copies of every block from a surviving replica (or, at rf=1,
        rolls a lost block back to its shadow checkpoint), and records
        MTTR and re-replicated bytes in ``world.metrics``.

        Returns the shrunken communicator (also installed as
        ``self.comm``).
        """
        self._check_alive()
        world = self._ctx.world
        me = self._world_rank
        local_dead = set(dead) if dead is not None else set()
        local_dead |= self._suspects
        resil = getattr(world, "resil", None)
        if resil is not None:
            local_dead |= resil.suspected(me)
        local_dead &= set(self._members)
        local_dead.discard(me)
        local_dead -= self._dead
        if not local_dead:
            yield from self.sync()
            return self.comm

        _, agreed = yield from self.comm.agree(local_dead)
        agreed = set(agreed) - self._dead
        self._dead |= agreed
        self._suspects -= agreed
        for failed in agreed:
            # Failures already handled op-by-op must not resurface in
            # the post-recovery completion below.
            self._ctx.rma.engine.acknowledge_path_failure(failed)
        scomm = self.comm.shrink(agreed)
        if scomm is None:  # pragma: no cover - caller was declared dead
            raise GaError(f"rank {me} is in the agreed failed set")
        self.comm = scomm
        self.epoch += 1

        survivors = [w for w in self._members if w not in self._dead]
        rereplicated = 0
        for block in range(self._nblocks):
            holders = [h for h in self._holders[block] if h not in self._dead]
            if not holders:
                holders = yield from self._restore_from_shadow(block)
            want = min(self.rf, len(survivors))
            # Ring walk from the block's home picks deterministic fresh
            # holders — every survivor computes the identical plan.
            ring = survivors[block % len(survivors):] + \
                survivors[:block % len(survivors)]
            fresh = [w for w in ring if w not in holders][:want - len(holders)]
            if fresh:
                src = holders[0]
                nbytes = self._block_bytes(block)
                if me == src and nbytes:
                    for new_holder in fresh:
                        yield from self._copy_block(block, new_holder)
                rereplicated += nbytes * len(fresh)
                holders = holders + fresh
            self._holders[block] = holders
        yield from self._ctx.rma.complete_collective(self.comm)

        metrics = world.metrics
        if scomm.rank == 0:
            # Every survivor computes the same plan; rank 0 alone
            # records it so the counters mean per-recovery-event totals.
            metrics.counter("resil.rereplicated_bytes").inc(rereplicated)
            metrics.counter("resil.recoveries").inc()
            kill_times = [
                t for r, t in getattr(world, "_kill_times", {}).items()
                if r in agreed
            ]
            if kill_times:
                metrics.histogram("resil.mttr").observe(
                    self._ctx.sim.now - min(kill_times)
                )
        return scomm

    def _block_bytes(self, block: int) -> int:
        rs = self._row_starts
        return (rs[block + 1] - rs[block]) * self.row_bytes

    def _block_elems(self, block: int) -> int:
        cols = self.shape[1] if self.ndim == 2 else 1
        rs = self._row_starts
        return (rs[block + 1] - rs[block]) * cols

    def _copy_block(self, block: int, dst_world_rank: int):
        """Put this rank's copy of ``block`` into a fresh holder's
        mirror (source data is already in node byte order in place —
        no staging copy)."""
        disp = self._row_starts[block] * self.row_bytes
        nelems = self._block_elems(block)
        yield from self._ctx.rma.put(
            self._alloc, disp, nelems, self._elem,
            self._tmems[dst_world_rank], disp, nelems, self._elem,
            attrs=_PUT_ATTRS, comm=self.comm,
        )

    # ------------------------------------------------------------------
    # rf=1 fallback: neighbor checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Collective (rf=1 only): each block's primary puts its copy on
        the next survivor's *shadow* region, arming rollback."""
        self._check_alive()
        if self.rf != 1:
            raise GaError("checkpoint applies to rf=1 arrays only")
        me = self._world_rank
        survivors = [w for w in self._members if w not in self._dead]
        if len(survivors) < 2:
            raise GaError("checkpoint needs at least two survivors")
        for block in range(self._nblocks):
            holders = [h for h in self._holders[block]
                       if h not in self._dead]
            if not holders:
                continue  # lost and not yet restored
            primary = holders[0]
            idx = survivors.index(primary)
            neighbor = survivors[(idx + 1) % len(survivors)]
            if me == primary and self._block_bytes(block):
                disp = self._row_starts[block] * self.row_bytes
                nelems = self._block_elems(block)
                yield from self._ctx.rma.put(
                    self._alloc, disp, nelems, self._elem,
                    self._shadow_tmems[neighbor], disp, nelems, self._elem,
                    attrs=_PUT_ATTRS, comm=self.comm,
                )
            self._shadow_of[block] = neighbor
        yield from self._ctx.rma.complete_collective(self.comm)

    def _restore_from_shadow(self, block: int):
        """All replicas of ``block`` died: roll back to its checkpoint.

        The shadow holder copies the checkpointed bytes into its own
        mirror (a local move) and becomes the block's holder.  Raises
        :class:`GaError` when there is no checkpoint — the block is
        unrecoverable and pretending otherwise would corrupt the oracle.
        """
        shadow_holder = self._shadow_of.get(block)
        if shadow_holder is None or shadow_holder in self._dead:
            raise GaError(
                f"block {block} lost every replica and has no reachable "
                f"checkpoint (rf={self.rf})"
            )
        if self._world_rank == shadow_holder and self._block_bytes(block):
            space = self._ctx.mem.space
            lo = self._row_starts[block] * self.row_bytes
            n = self._block_bytes(block)
            space.buffer(self._alloc)[lo: lo + n] = \
                space.buffer(self._shadow_alloc)[lo: lo + n]
            # The holder alone counts, so the metric is rollback events.
            self._ctx.world.metrics.counter("resil.rollbacks").inc()
        return [shadow_holder]
        yield  # pragma: no cover - keeps this a generator for uniform call

    # ------------------------------------------------------------------
    def destroy(self):
        """Collectively free the array (``yield from``)."""
        self._check_alive()
        yield from self.sync()
        self._ctx.rma.withdraw(self._tmems[self._world_rank])
        self._ctx.mem.space.free(self._alloc)
        if self._shadow_alloc is not None:
            self._ctx.rma.withdraw(self._shadow_tmems[self._world_rank])
            self._ctx.mem.space.free(self._shadow_alloc)
        self._destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReplicatedGlobalArray {self.shape} {self.dtype.name} "
            f"rf={self.rf} epoch={self.epoch} over {self.comm.size} ranks>"
        )
