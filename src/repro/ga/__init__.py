"""A Global-Arrays-style distributed array library.

The paper motivates the strawman interface as an implementation layer
for "library-based RMA approaches, such as SHMEM and Global Arrays"
(§II).  This package is that downstream consumer: a distributed dense
array addressed by *global* indices, built entirely on the strawman API
(:class:`repro.rma.api.RmaInterface`) — one-sided get/put/accumulate on
arbitrary global regions, plus an atomic read-and-increment.
"""

from repro.ga.global_array import GaError, GlobalArray
from repro.ga.replicated import ReplicatedGlobalArray
from repro.ga.sharded import PLACEMENTS, ShardedStore

__all__ = ["GaError", "GlobalArray", "PLACEMENTS", "ReplicatedGlobalArray",
           "ShardedStore"]
