"""The distributed array itself.

A :class:`GlobalArray` is a dense 1-D or 2-D array block-distributed
over the ranks of a communicator along axis 0.  Any rank may
:meth:`~GlobalArray.get`, :meth:`~GlobalArray.put` or
:meth:`~GlobalArray.acc` an arbitrary global region without the owners'
participation; a region spanning several owners is split into per-owner
operations, with 2-D sub-blocks described by strided (hvector)
datatypes so each owner is touched by exactly one RMA operation.

Consistency follows Global Arrays: one-sided operations complete
remotely when their call returns (puts use the remote-completion
attribute; accumulates additionally use atomicity so concurrent
updates never lose increments), and :meth:`~GlobalArray.sync` provides
the collective barrier + completion used between phases.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.datatypes import PREDEFINED, contiguous, hvector
from repro.rma.attributes import RmaAttrs
from repro.rma.target_mem import TargetMem

__all__ = ["GlobalArray", "GaError"]

_PUT_ATTRS = RmaAttrs(blocking=True, remote_completion=True)
_ACC_ATTRS = RmaAttrs(blocking=True, remote_completion=True, atomicity=True)


class GaError(RuntimeError):
    """Global-array usage error."""


def _normalize_region(region, shape) -> List[Tuple[int, int]]:
    """Normalize a region spec into [(lo, hi), ...] per dimension."""
    if not isinstance(region, tuple):
        region = (region,)
    if len(region) != len(shape):
        raise GaError(
            f"region has {len(region)} dims, array has {len(shape)}"
        )
    out = []
    for spec, extent in zip(region, shape):
        if isinstance(spec, slice):
            if spec.step not in (None, 1):
                raise GaError("strided regions are not supported")
            lo = 0 if spec.start is None else spec.start
            hi = extent if spec.stop is None else spec.stop
        else:
            lo, hi = int(spec), int(spec) + 1
        if lo < 0 or hi > extent or lo >= hi:
            raise GaError(
                f"region [{lo}, {hi}) outside dimension of extent {extent}"
            )
        out.append((lo, hi))
    return out


class GlobalArray:
    """A block-distributed dense array (see module docstring).

    Create collectively with :meth:`create`; every rank must pass the
    same shape/dtype.
    """

    def __init__(self, ctx, comm, shape, np_dtype, alloc, tmems, row_starts):
        self._ctx = ctx
        self.comm = comm
        self.shape = tuple(shape)
        self.dtype = np.dtype(np_dtype)
        self._alloc = alloc
        self._tmems: List[TargetMem] = tmems
        self._row_starts: List[int] = row_starts  # len = comm.size + 1
        self._elem = PREDEFINED[self.dtype.name]
        self._destroyed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, ctx, shape: Sequence[int], dtype: str = "float64",
               comm=None):
        """Collectively create a zero-initialized array (``yield from``).

        ``shape`` is 1-D or 2-D; distribution is by blocks of rows
        (axis 0), with earlier ranks holding the remainder rows.
        """
        comm = comm if comm is not None else ctx.comm
        shape = tuple(int(s) for s in shape)
        if len(shape) not in (1, 2):
            raise GaError("GlobalArray supports 1-D and 2-D shapes")
        if any(s <= 0 for s in shape):
            raise GaError(f"invalid shape {shape}")
        np_dtype = np.dtype(dtype)
        if np_dtype.name not in PREDEFINED:
            raise GaError(f"unsupported dtype {dtype!r}")
        n0 = shape[0]
        size = comm.size
        base, rem = divmod(n0, size)
        row_starts = [0]
        for r in range(size):
            row_starts.append(row_starts[-1] + base + (1 if r < rem else 0))
        my_rows = row_starts[comm.rank + 1] - row_starts[comm.rank]
        row_bytes = (shape[1] if len(shape) == 2 else 1) * np_dtype.itemsize
        alloc = ctx.mem.space.alloc(max(my_rows * row_bytes, 1))
        yield ctx.sim.timeout(
            ctx.rma.engine.registration_cost(my_rows * row_bytes)
        )
        tmem = ctx.rma.expose(alloc)
        tmems = yield from comm.allgather(tmem)
        return cls(ctx, comm, shape, np_dtype, alloc, tmems, row_starts)

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def row_bytes(self) -> int:
        cols = self.shape[1] if self.ndim == 2 else 1
        return cols * self.dtype.itemsize

    def owner_of(self, row: int) -> int:
        """The communicator rank owning global row ``row``."""
        if row < 0 or row >= self.shape[0]:
            raise GaError(f"row {row} outside array of {self.shape[0]} rows")
        # binary search over the block boundaries
        import bisect

        return bisect.bisect_right(self._row_starts, row) - 1

    def local_slice(self) -> Tuple[int, int]:
        """(lo, hi) global rows owned by the calling rank."""
        r = self.comm.rank
        return self._row_starts[r], self._row_starts[r + 1]

    def local_view(self) -> np.ndarray:
        """Writable NumPy view of the locally owned block."""
        # A local CPU load must see every train element that has already
        # arrived analytically (same convention as check/runner).
        self._ctx.rma.engine.materialize_inbound()
        lo, hi = self.local_slice()
        cols = self.shape[1] if self.ndim == 2 else None
        count = (hi - lo) * (cols if cols else 1)
        view = self._ctx.mem.space.view(self._alloc, self.dtype.name,
                                        count=count)
        return view.reshape(hi - lo, cols) if cols else view

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._destroyed:
            raise GaError("operation on a destroyed GlobalArray")

    def _owner_pieces(
        self, region
    ) -> Iterator[Tuple[int, int, int, Tuple[int, int]]]:
        """Split a region into per-owner pieces.

        Yields ``(owner, row_lo, row_hi, (col_lo, col_hi))`` with global
        row bounds clipped to the owner's block.
        """
        bounds = _normalize_region(region, self.shape)
        (rlo, rhi) = bounds[0]
        cols = bounds[1] if self.ndim == 2 else (0, 1)
        owner = self.owner_of(rlo)
        while rlo < rhi:
            block_hi = self._row_starts[owner + 1]
            piece_hi = min(rhi, block_hi)
            yield owner, rlo, piece_hi, cols
            rlo = piece_hi
            owner += 1

    def _target_layout(self, owner, row_lo, row_hi, cols):
        """(disp, count, dtype) describing the piece in owner memory."""
        nrows = row_hi - row_lo
        col_lo, col_hi = cols
        ncols = col_hi - col_lo
        local_row0 = row_lo - self._row_starts[owner]
        disp = local_row0 * self.row_bytes + col_lo * self.dtype.itemsize
        full_width = self.shape[1] if self.ndim == 2 else 1
        if ncols == full_width:
            # whole rows: contiguous
            return disp, nrows * ncols, self._elem
        dtype = hvector(nrows, ncols, self.row_bytes, self._elem)
        return disp, 1, dtype

    def _stage(self, data: np.ndarray):
        """Copy ``data`` into a scratch allocation for the transfer.

        Encoded in the *local node's* byte order (not NumPy's native
        order): the engine interprets origin buffers in the origin
        node's representation, which differs on big-endian hosts of
        hybrid machines.
        """
        node_dt = self.dtype.newbyteorder(self._ctx.mem.space.np_byteorder)
        raw = np.ascontiguousarray(data, dtype=node_dt)
        scratch = self._ctx.mem.space.alloc(max(raw.nbytes, 1))
        self._ctx.mem.space.buffer(scratch)[: raw.nbytes] = (
            raw.view(np.uint8).reshape(-1)
        )
        return scratch

    # ------------------------------------------------------------------
    def put(self, region, data: np.ndarray):
        """Write ``data`` into the global ``region`` (``yield from``).

        Remotely complete on return.
        """
        self._check_alive()
        bounds = _normalize_region(region, self.shape)
        expect = tuple(hi - lo for lo, hi in bounds)
        data = np.asarray(data, dtype=self.dtype).reshape(expect)
        for owner, rlo, rhi, cols in self._owner_pieces(region):
            piece = data[rlo - bounds[0][0] : rhi - bounds[0][0]]
            scratch = self._stage(piece)
            disp, count, tdtype = self._target_layout(owner, rlo, rhi, cols)
            nelems = piece.size
            yield from self._ctx.rma.put(
                scratch, 0, nelems, self._elem,
                self._tmems[owner], disp, count, tdtype,
                attrs=_PUT_ATTRS, comm=self.comm,
            )
            self._ctx.mem.space.free(scratch)

    def get(self, region):
        """Read the global ``region``; returns a NumPy array."""
        self._check_alive()
        bounds = _normalize_region(region, self.shape)
        shape = tuple(hi - lo for lo, hi in bounds)
        out = np.empty(shape, dtype=self.dtype)
        for owner, rlo, rhi, cols in self._owner_pieces(region):
            nrows = rhi - rlo
            ncols = cols[1] - cols[0]
            nelems = nrows * ncols
            scratch = self._ctx.mem.space.alloc(
                max(nelems * self.dtype.itemsize, 1)
            )
            disp, count, tdtype = self._target_layout(owner, rlo, rhi, cols)
            yield from self._ctx.rma.get(
                scratch, 0, nelems, self._elem,
                self._tmems[owner], disp, count, tdtype,
                attrs=_PUT_ATTRS, comm=self.comm,
            )
            piece = (
                self._ctx.mem.space.view(scratch, self.dtype.name,
                                         count=nelems)
                .reshape(nrows, ncols)
                .copy()
            )
            r0 = rlo - bounds[0][0]
            if self.ndim == 2:
                out[r0 : r0 + nrows] = piece
            else:
                out[r0 : r0 + nrows] = piece.reshape(-1)
            self._ctx.mem.space.free(scratch)
        return out

    def acc(self, region, data: np.ndarray, scale: float = 1.0):
        """Atomic remote update: ``global[region] += scale * data``."""
        self._check_alive()
        bounds = _normalize_region(region, self.shape)
        expect = tuple(hi - lo for lo, hi in bounds)
        data = np.asarray(data, dtype=self.dtype).reshape(expect)
        for owner, rlo, rhi, cols in self._owner_pieces(region):
            piece = data[rlo - bounds[0][0] : rhi - bounds[0][0]]
            scratch = self._stage(piece)
            disp, count, tdtype = self._target_layout(owner, rlo, rhi, cols)
            yield from self._ctx.rma.accumulate(
                scratch, 0, piece.size, self._elem,
                self._tmems[owner], disp, count, tdtype,
                op="daxpy", scale=scale, attrs=_ACC_ATTRS, comm=self.comm,
            )
            self._ctx.mem.space.free(scratch)

    def get_acc(self, region, data: np.ndarray, scale: float = 1.0):
        """Atomic fetch-and-update of a region: returns the *previous*
        contents while applying ``global[region] += scale * data``
        (``yield from``)."""
        self._check_alive()
        bounds = _normalize_region(region, self.shape)
        shape = tuple(hi - lo for lo, hi in bounds)
        data = np.asarray(data, dtype=self.dtype).reshape(shape)
        out = np.empty(shape, dtype=self.dtype)
        for owner, rlo, rhi, cols in self._owner_pieces(region):
            piece = data[rlo - bounds[0][0] : rhi - bounds[0][0]]
            scratch = self._stage(piece)
            disp, count, tdtype = self._target_layout(owner, rlo, rhi, cols)
            yield from self._ctx.rma.get_accumulate(
                scratch, 0, piece.size, self._elem,
                self._tmems[owner], disp, count, tdtype,
                op="daxpy", scale=scale, comm=self.comm,
            )
            nrows = rhi - rlo
            ncols = cols[1] - cols[0]
            old = (
                self._ctx.mem.space.view(scratch, self.dtype.name,
                                         count=piece.size)
                .reshape(nrows, ncols)
                .copy()
            )
            r0 = rlo - bounds[0][0]
            if self.ndim == 2:
                out[r0 : r0 + nrows] = old
            else:
                out[r0 : r0 + nrows] = old.reshape(-1)
            self._ctx.mem.space.free(scratch)
        return out

    def read_inc(self, row: int, col: int = 0, amount: int = 1):
        """Atomic fetch-and-add on one element (must be an integer
        array) — Global Arrays' NGA_Read_inc, the work-sharing
        primitive (``yield from``; returns the pre-increment value)."""
        self._check_alive()
        if not np.issubdtype(self.dtype, np.integer):
            raise GaError("read_inc requires an integer-typed array")
        bounds = [(row, row + 1)] + (
            [(col, col + 1)] if self.ndim == 2 else []
        )
        owner = self.owner_of(row)
        disp, _, _ = self._target_layout(owner, row, row + 1,
                                         (col, col + 1))
        old = yield from self._ctx.rma.fetch_and_add(
            self._tmems[owner], disp, self.dtype.name, amount
        )
        return int(old)

    # ------------------------------------------------------------------
    def sync(self):
        """Collective phase boundary: complete all my RMA everywhere,
        then barrier (GA_Sync)."""
        self._check_alive()
        yield from self._ctx.rma.complete_collective(self.comm)

    def fill(self, value):
        """Collectively fill the whole array with ``value``."""
        self._check_alive()
        self.local_view()[...] = value
        yield from self.comm.barrier()

    def destroy(self):
        """Collectively free the array (``yield from``)."""
        self._check_alive()
        yield from self.sync()
        self._ctx.rma.withdraw(self._tmems[self.comm.rank])
        self._ctx.mem.space.free(self._alloc)
        self._destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GlobalArray {self.shape} {self.dtype.name} over "
            f"{self.comm.size} ranks>"
        )
