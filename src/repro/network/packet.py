"""Packets — the unit of transfer on the simulated fabric."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

__all__ = ["Packet", "HEADER_SIZE", "ACK_SIZE"]

#: Fixed per-packet header bytes charged on the wire.
HEADER_SIZE = 32
#: Size of a hardware-generated ack (remote-completion event).
ACK_SIZE = 8

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One message on the fabric.

    Attributes
    ----------
    src, dst:
        Origin and destination ranks.
    kind:
        Dispatch key at the destination NIC (e.g. ``"rma.put"``,
        ``"p2p.msg"``, ``"rma.ack"``).
    payload:
        Free-form dict; data payloads are NumPy ``uint8`` arrays under
        the ``"data"`` key by convention.
    data_bytes:
        Payload size charged to serialization (0 for control packets).
    want_ack:
        Request a hardware delivery ack when the fabric supports
        remote-completion events.
    ev_injected:
        Triggers when the origin NIC finished serializing the packet
        (local completion of the transfer at the origin).
    ev_remote_complete:
        Triggers when the data is known (at the origin) to have landed
        at the target — via hardware ack or a software protocol.  Only
        created when someone intends to wait on it.
    """

    src: int
    dst: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    data_bytes: int = 0
    want_ack: bool = False
    ev_injected: Optional["Event"] = None
    ev_remote_complete: Optional["Event"] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Reliability fields, populated only when a reliable transport is
    #: armed (fault-injection runs).  ``flow_seq`` is the per-(src, dst)
    #: sequence number; ``checksum`` is the true payload checksum;
    #: ``wire_checksum`` is what travels on the wire (a corruption fault
    #: mangles it, never the payload itself); ``attempts`` counts
    #: transmissions including retransmits.
    flow_seq: Optional[int] = None
    #: Flow incarnation at preparation time; a restart bumps the pair's
    #: epoch so stale in-flight packets are recognizably from the past.
    flow_epoch: int = 0
    checksum: Optional[int] = None
    wire_checksum: Optional[int] = None
    attempts: int = 0

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire including the fixed header."""
        return HEADER_SIZE + self.data_bytes

    def op_key(self):
        """The RMA operation this packet belongs to, or ``None``.

        Protocol packets carry their operation key either at the payload
        top level (``get_req``/``ack``/``reply``/``get_reply``) or
        inside the fragment descriptor (``rma.frag``).  Used by the
        observability layer to correlate inject/deliver/ack records into
        per-operation spans; flush and transport-ack packets are not
        per-operation and return ``None``.
        """
        payload = self.payload
        desc = payload.get("desc")
        if desc is not None:
            return desc.get("op_key")
        return payload.get("op_key")

    def payload_data(self):
        """The payload's bulk-data array, if any (checksum coverage).

        Two-sided messages may carry arbitrary Python objects under
        ``"data"``; only byte-array payloads are checksummable (others
        travel as control packets, checksum 0).
        """
        payload = self.payload
        data = payload.get("data")
        if data is not None and hasattr(data, "tobytes"):
            return data
        frag = payload.get("frag")
        if frag is not None:
            return frag.data
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet #{self.packet_id} {self.kind} {self.src}->{self.dst} "
            f"{self.data_bytes}B>"
        )
