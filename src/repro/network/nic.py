"""The network interface controller.

Each rank owns a :class:`Nic`.  Sending goes through an injection queue
drained by a NIC engine process that charges LogGP serialization
(``max(g, bytes*G)``) per packet, then hands the packet to the fabric.
``Packet.ev_injected`` triggers when serialization finishes — that is
the *local completion* point of a transfer (the origin buffer is free).

On the receive side, packets are dispatched to handlers registered by
kind.  Handlers model NIC hardware (RDMA deposit, tag-match DMA): they
run without the target process calling anything.  Anything requiring
target CPU time (software acks, AM handlers, the communication-thread
serializer) is layered above by enqueueing work from inside a handler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.network.config import NetworkConfig
from repro.network.fabric import Fabric
from repro.network.packet import Packet
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["Nic"]


class Nic:
    """One rank's NIC: injection engine + receive dispatch."""

    def __init__(self, sim: "Simulator", rank: int, fabric: Fabric) -> None:
        self.sim = sim
        self.rank = rank
        self.fabric = fabric
        self.config: NetworkConfig = fabric.config
        self._queue: Store = Store(sim)
        self._handlers: Dict[str, Callable[[Packet], None]] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        fabric.attach(rank, self._on_deliver)
        self._engine = sim.spawn(self._injector(), name=f"nic-{rank}")
        # stats
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0

    # -- send path -------------------------------------------------------
    def send(self, packet: Packet) -> Packet:
        """Queue ``packet`` for injection.

        Creates ``ev_injected`` if absent.  If the packet wants an ack
        and the fabric supports remote-completion events,
        ``ev_remote_complete`` is created too (callers may wait on it).
        """
        if packet.src != self.rank:
            raise ValueError(
                f"packet src {packet.src} does not match NIC rank {self.rank}"
            )
        if packet.ev_injected is None:
            packet.ev_injected = self.sim.event()
        if (
            packet.want_ack
            and self.config.remote_completion_events
            and packet.ev_remote_complete is None
        ):
            packet.ev_remote_complete = self.sim.event()
        self._queue.put(packet)
        return packet

    def _injector(self):
        while True:
            packet: Packet = yield from self._queue.get()
            yield self.sim.timeout(self.config.serialization_time(packet.wire_bytes))
            self.packets_sent += 1
            self.bytes_sent += packet.wire_bytes
            if packet.ev_injected is not None:
                packet.ev_injected.succeed(self.sim.now)
            self.fabric.transmit(packet)

    @property
    def queue_depth(self) -> int:
        """Packets waiting for injection (diagnostic)."""
        return len(self._queue)

    # -- receive path ----------------------------------------------------
    def register_handler(self, kind: str, fn: Callable[[Packet], None]) -> None:
        """Dispatch packets of ``kind`` to ``fn`` on delivery."""
        if kind in self._handlers:
            raise ValueError(f"handler for {kind!r} already registered")
        self._handlers[kind] = fn

    def register_default_handler(self, fn: Callable[[Packet], None]) -> None:
        """Catch-all for kinds without a specific handler."""
        self._default_handler = fn

    def _on_deliver(self, packet: Packet) -> None:
        self.packets_received += 1
        handler = self._handlers.get(packet.kind, self._default_handler)
        if handler is None:
            raise RuntimeError(
                f"rank {self.rank}: no handler for packet kind {packet.kind!r}"
            )
        handler(packet)
