"""The network interface controller.

Each rank owns a :class:`Nic`.  Sending goes through an injection queue
drained by a NIC engine process that charges LogGP serialization
(``max(g, bytes*G)``) per packet, then hands the packet to the fabric.
``Packet.ev_injected`` triggers when serialization finishes — that is
the *local completion* point of a transfer (the origin buffer is free).

On the receive side, packets are dispatched to handlers registered by
kind.  Handlers model NIC hardware (RDMA deposit, tag-match DMA): they
run without the target process calling anything.  Anything requiring
target CPU time (software acks, AM handlers, the communication-thread
serializer) is layered above by enqueueing work from inside a handler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.network.config import NetworkConfig
from repro.network.fabric import Fabric
from repro.network.packet import Packet
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import TransportParams
    from repro.network.transport import ReliableTransport
    from repro.sim.core import Simulator

__all__ = ["Nic", "UnknownPacketKind"]


class UnknownPacketKind(RuntimeError):
    """A packet arrived whose kind has no registered handler.

    Carries enough simulation context to diagnose the failure without a
    debugger: where and when the packet landed, what it was, and where
    it came from (a bare ``RuntimeError`` used to abort the event loop
    with none of this).
    """

    def __init__(self, *, rank: int, sim_time: float, packet: Packet) -> None:
        self.rank = rank
        self.sim_time = sim_time
        self.packet_id = packet.packet_id
        self.kind = packet.kind
        self.src = packet.src
        self.dst = packet.dst
        super().__init__(
            f"rank {rank}: no handler for packet kind {packet.kind!r} "
            f"at t={sim_time:.3f} (packet #{packet.packet_id}, "
            f"{packet.src}->{packet.dst})"
        )


class Nic:
    """One rank's NIC: injection engine + receive dispatch."""

    #: Master switch for the analytic burst path (see :meth:`send_burst`).
    #: The determinism regression tests flip this off to prove batched
    #: and per-packet injection produce identical simulated timestamps.
    burst_enabled: bool = True

    def __init__(self, sim: "Simulator", rank: int, fabric: Fabric) -> None:
        self.sim = sim
        self.rank = rank
        self.fabric = fabric
        self.config: NetworkConfig = fabric.config
        self._queue: Store = Store(sim)
        self._handlers: Dict[str, Callable[[Packet], None]] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        # Injector occupancy: packets queued-or-serializing, and the time
        # up to which an analytic burst has reserved the serializer (see
        # send_burst).  The injector may not start serializing before
        # _reserved_until — the burst already accounted for that wire time.
        self._pending: int = 0
        self._reserved_until: float = 0.0
        # Idle-path sends whose injection callback is scheduled but has
        # not fired yet.  Distinct from `_pending` (queued behind the
        # injector) and from a bare reservation (which may outlive any
        # packet — analytic trains and committed collectives only move
        # `_reserved_until`).  The collective nexus refuses to open a
        # window while any NIC has one of these in the pipe.
        self._scheduled: int = 0
        # Injection base forced on the next send(s): set by the nexus
        # drain around a backdated delivery so the handler's response
        # (a flush ack) serializes from the delivery's true arrival, not
        # from the later drain instant.
        self._backdate: Optional[float] = None
        #: Reliable transport, armed only for fault-injection runs (see
        #: :meth:`enable_reliability`); ``None`` keeps every fast path.
        self.transport: "ReliableTransport | None" = None
        fabric.attach(rank, self._on_deliver)
        self._engine = sim.spawn(self._injector(), name=f"nic-{rank}")
        # stats
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0

    # -- reliability -----------------------------------------------------
    def enable_reliability(self, params: "TransportParams") -> "ReliableTransport":
        """Arm the reliable transport (sequence numbers, acks,
        retransmission, dedup, checksums) on this NIC.  Done once per
        NIC by the :class:`~repro.runtime.World` when it is built with
        an active fault plan; with the transport armed the analytic
        burst path is disabled (bursts fall back to per-packet sends)."""
        if self.transport is not None:
            raise ValueError(f"rank {self.rank}: reliability already enabled")
        from repro.network.transport import ReliableTransport

        self.transport = ReliableTransport(self.sim, self, params)
        return self.transport

    def stall_until(self, until: float) -> None:
        """Freeze the injector until simulated time ``until`` (fault
        injection: a wedged NIC).  Packets already being serialized
        finish; queued ones wait."""
        self._reserved_until = max(self._reserved_until, until)

    def reinject(self, packet: Packet) -> None:
        """Requeue an already-prepared packet (transport retransmission)."""
        self._pending += 1
        self._queue.put(packet)

    def path_degraded(self, dst: int) -> bool:
        """Whether persistent loss toward ``dst`` crossed the transport's
        degradation threshold — the RMA engine then stops trusting
        hardware delivery acks on the path and uses software acks."""
        transport = self.transport
        return (
            transport is not None
            and transport.retx_to(dst) >= transport.params.degrade_threshold
        )

    # -- send path -------------------------------------------------------
    def send(self, packet: Packet, inject_from: float = None) -> Packet:
        """Queue ``packet`` for injection.

        Creates ``ev_injected`` if absent.  If the packet wants an ack
        and the fabric supports remote-completion events,
        ``ev_remote_complete`` is created too (callers may wait on it).

        ``inject_from`` backdates the serialization start to an earlier
        instant (nexus-rescue replay: the rank should have reached this
        call then).  Only valid on the idle-injector path, and only while
        the resulting *delivery* still lies in the future — the rescue
        bounds guarantee both.
        """
        if packet.src != self.rank:
            raise ValueError(
                f"packet src {packet.src} does not match NIC rank {self.rank}"
            )
        if inject_from is None:
            if self._backdate is not None:
                inject_from = self._backdate
            elif self.fabric._nexus_active:
                self.fabric._nexus.note_reserve(self.rank)
        if inject_from is not None and self.fabric._nexus is not None:
            # Rescue-replay interleaving: a queued backdated delivery to
            # this rank whose arrival predates the send instant claimed
            # the serializer first in the live order (its handler ran at
            # the arrival) — apply it before reading the reservation.
            self.fabric._nexus.deliver_due(self.rank, inject_from)
        if packet.ev_injected is None:
            packet.ev_injected = self.sim.event()
        if (
            packet.want_ack
            and packet.ev_remote_complete is None
            and self.fabric.config_for(self.rank, packet.dst).remote_completion_events
        ):
            packet.ev_remote_complete = self.sim.event()
        if (
            self.burst_enabled
            and self.transport is None
            and self._pending == 0
            and self.fabric.topology is None
            and not self.fabric.tracer.enabled
        ):
            # Idle-injector analytic path: with nothing queued ahead, the
            # injector would wake, wait out any serializer reservation,
            # and charge exactly one serialization — all closed-form.  A
            # single callback at the injection time replaces the Store
            # hop and two process resumes; every simulated timestamp is
            # identical to the injector's.
            if inject_from is None:
                t = (
                    max(self.sim.now, self._reserved_until)
                    + self.config.serialization_time(packet.wire_bytes)
                )
                self._reserved_until = t
                self._scheduled += 1
                self.sim.schedule_call(t - self.sim.now, self._finish_single,
                                       packet, t)
                return packet
            # Backdated replay: serialization starts at ``inject_from``,
            # exactly as the real path would have.  An injection instant
            # already in the past runs synchronously, handing the fabric
            # its original timestamp (the delivery is still future).
            t = (
                max(inject_from, self._reserved_until)
                + self.config.serialization_time(packet.wire_bytes)
            )
            self._reserved_until = t
            if t >= self.sim.now:
                self._scheduled += 1
                self.sim.schedule_call_at(t, self._finish_single, packet, t)
            else:
                self._scheduled += 1
                self._finish_single(packet, t, past=True)
            return packet
        if self.transport is not None:
            self.transport.prepare(packet)
        self._pending += 1
        self._queue.put(packet)
        return packet

    def _finish_single(self, packet: Packet, t: float,
                       past: bool = False) -> None:
        self._scheduled -= 1
        self.packets_sent += 1
        self.bytes_sent += packet.wire_bytes
        ev = packet.ev_injected
        if ev is not None and not ev.triggered:
            ev.succeed(t)
        self.fabric.transmit(packet, at=t if past else None)

    def send_burst(self, packets: "list[Packet]") -> "list[Packet]":
        """Queue a train of same-destination packets for injection.

        When the injector is idle and the (src, dst) path is ordered and
        untraced, the whole train is modeled analytically: injection
        times are the running sum of per-packet serialization, the
        serializer is reserved until the last one, and a single callback
        finishes the burst (succeeding each ``ev_injected`` with its
        analytic time) and hands the train to
        :meth:`~repro.network.fabric.Fabric.transmit_burst`.  Simulated
        timestamps of every defined observable match the per-packet
        path; only the event count changes.  Otherwise falls back to
        per-packet :meth:`send`.
        """
        if len(packets) < 2:
            for packet in packets:
                self.send(packet)
            return packets
        dst = packets[0].dst
        path_cfg = self.fabric.config_for(self.rank, dst)
        if (
            not self.burst_enabled
            or self.transport is not None
            or self.fabric.topology is not None
            or not path_cfg.ordered
            or self.fabric.tracer.enabled
            or self._pending
            or any(p.dst != dst for p in packets)
        ):
            for packet in packets:
                self.send(packet)
            return packets
        if self.fabric._nexus_active:
            self.fabric._nexus.note_reserve(self.rank)
        cfg = self.config
        ack_capable = path_cfg.remote_completion_events
        # Chain off any standing reservation — exactly where the injector
        # would start serializing the first packet.
        t = max(self.sim.now, self._reserved_until)
        inject_times = []
        for packet in packets:
            if packet.src != self.rank:
                raise ValueError(
                    f"packet src {packet.src} does not match NIC rank {self.rank}"
                )
            if packet.ev_injected is None:
                packet.ev_injected = self.sim.event()
            if (
                packet.want_ack
                and ack_capable
                and packet.ev_remote_complete is None
            ):
                packet.ev_remote_complete = self.sim.event()
            t += cfg.serialization_time(packet.wire_bytes)
            inject_times.append(t)
        self._reserved_until = t
        self._scheduled += 1
        self.sim.schedule_call(
            t - self.sim.now, self._finish_burst, packets, inject_times
        )
        return packets

    def _finish_burst(self, packets, inject_times) -> None:
        self._scheduled -= 1
        for packet, t in zip(packets, inject_times):
            self.packets_sent += 1
            self.bytes_sent += packet.wire_bytes
            packet.ev_injected.succeed(t)
        self.fabric.transmit_burst(packets, inject_times)

    def _injector(self):
        while True:
            packet: Packet = yield from self._queue.get()
            while self.sim.now < self._reserved_until:
                # A burst owns the serializer until then (or a fault has
                # stalled the NIC); this packet waits its turn.
                yield self.sim.timeout(self._reserved_until - self.sim.now)
            yield self.sim.timeout(self.config.serialization_time(packet.wire_bytes))
            self.packets_sent += 1
            self.bytes_sent += packet.wire_bytes
            self._pending -= 1
            tracer = self.fabric.tracer
            if tracer.enabled:
                # Span milestone: serialization finished (the op's
                # "inject" phase ends at the last fragment's record).
                tracer.record(self.sim.now, "net", "inject",
                              rank=self.rank, dst=packet.dst,
                              kind_=packet.kind, op=packet.op_key(),
                              bytes=packet.wire_bytes)
            ev = packet.ev_injected
            if ev is not None and not ev.triggered:
                # Retransmits reuse the packet; only the first injection
                # is the local-completion point.
                ev.succeed(self.sim.now)
            self.fabric.transmit(packet)
            transport = self.transport
            if transport is not None and packet.flow_seq is not None:
                transport.packet_injected(packet)

    @property
    def queue_depth(self) -> int:
        """Packets waiting for injection (diagnostic)."""
        return len(self._queue)

    # -- receive path ----------------------------------------------------
    def register_handler(self, kind: str, fn: Callable[[Packet], None]) -> None:
        """Dispatch packets of ``kind`` to ``fn`` on delivery."""
        if kind in self._handlers:
            raise ValueError(f"handler for {kind!r} already registered")
        self._handlers[kind] = fn

    def register_default_handler(self, fn: Callable[[Packet], None]) -> None:
        """Catch-all for kinds without a specific handler."""
        self._default_handler = fn

    def _on_deliver(self, packet: Packet):
        self.packets_received += 1
        transport = self.transport
        if (
            transport is not None
            and packet.flow_seq is not None
            and not transport.rx_accept(packet)
        ):
            # Corrupt or duplicate: suppressed by the transport.  The
            # False return tells the fabric not to hardware-ack it.
            return False
        handler = self._handlers.get(packet.kind, self._default_handler)
        if handler is None:
            raise UnknownPacketKind(
                rank=self.rank, sim_time=self.sim.now, packet=packet
            )
        handler(packet)
        return True
