"""Reliable transport: sequencing, acks, retransmission, dedup.

One :class:`ReliableTransport` per :class:`~repro.network.nic.Nic`,
created only when the world is armed with an active
:class:`~repro.faults.plan.FaultPlan` — the fault-free fast path never
pays for any of this.

Protocol
--------
- Every packet the NIC sends (except the transport's own acks) gets a
  per-(src, dst) flow sequence number and a CRC32 checksum over its
  bulk payload.
- The receiver verifies the checksum (a corruption fault mangles the
  wire checksum; the mismatch is detected here and the packet dropped),
  suppresses duplicates with a contiguous-watermark + stash scheme, and
  answers every survivor *and every duplicate* with a selective
  ``xport.ack`` control packet (re-acking duplicates stops a sender
  whose previous ack was lost).
- The sender arms a retransmission timer at each injection; the timeout
  is the path's analytic round-trip estimate
  (:meth:`~repro.network.config.NetworkConfig.retransmit_timeout`)
  scaled by ``rto_scale`` with exponential ``backoff`` per attempt.
  An unacked packet is reinjected until the ``retry_budget`` is
  exhausted or the target is known dead — then the whole (src, dst)
  flow is declared broken: every outstanding packet on it fails at
  once and registered path-failure callbacks (the RMA engine) fire.

Whole-flow failure is deliberate: a permanently lost sequence number
would otherwise gate the target's applied-watermark forever, hanging
every later flush and ordering barrier on the path.  Breaking the flow
converts a would-be hang into structured per-operation errors.

The transport ack doubles as a delivery confirmation: when the acked
packet carried ``want_ack`` and its hardware ack was lost, the
transport completes ``ev_remote_complete`` itself (guarded against
double triggering in both directions).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import TransportParams
    from repro.network.nic import Nic
    from repro.sim.core import Simulator

__all__ = ["ReliableTransport", "TransportFailure", "payload_checksum"]

#: Packet kind of the transport's own selective acks (never themselves
#: sequenced or retransmitted; a lost ack is recovered by dedup+re-ack).
ACK_KIND = "xport.ack"


def payload_checksum(packet: Packet) -> int:
    """CRC32 over the packet's bulk payload (0 for control packets)."""
    data = packet.payload_data()
    if data is None:
        return 0
    return zlib.crc32(data.tobytes())


@dataclass(frozen=True, slots=True)
class TransportFailure:
    """Terminal delivery failure of one flow, reported to upper layers.

    ``kind`` carries the structured classification the RMA error
    taxonomy uses (see :data:`repro.rma.target_mem.ERROR_KINDS`):
    ``rank_failed`` when the target is known dead, ``link_partition``
    when a routed fabric has lost every route to it, and
    ``retry_exhausted`` for a live-but-unreachable path.
    """

    src: int
    dst: int
    attempts: int
    sim_time: float
    reason: str  # "retry-budget-exhausted" | "target-dead" | "restart-reset"
    packet_kind: str
    packet_id: int
    kind: str = "retry_exhausted"

    def __str__(self) -> str:
        return (f"flow {self.src}->{self.dst} failed at t={self.sim_time:.3f}: "
                f"{self.reason} (packet #{self.packet_id} {self.packet_kind!r} "
                f"after {self.attempts} attempt(s))")


class _TxEntry:
    """Sender-side state of one unacknowledged packet."""

    __slots__ = ("packet", "dst", "seq", "attempts", "timer_gen")

    def __init__(self, packet: Packet, dst: int, seq: int) -> None:
        self.packet = packet
        self.dst = dst
        self.seq = seq
        self.attempts = 0
        #: Bumped on every (re)arm/cancel; stale timer callbacks compare
        #: their captured generation and drop themselves (the kernel has
        #: no timer cancellation).
        self.timer_gen = 0


class ReliableTransport:
    """Per-NIC reliability layer (see module docstring)."""

    def __init__(self, sim: "Simulator", nic: "Nic",
                 params: "TransportParams") -> None:
        self.sim = sim
        self.nic = nic
        self.rank = nic.rank
        self.fabric = nic.fabric
        self.params = params
        # sender side
        self._tx_seq: Dict[int, int] = {}
        self._outstanding: Dict[Tuple[int, int], _TxEntry] = {}
        self._retx_by_dst: Dict[int, int] = {}
        self._broken: Set[int] = set()
        self._path_failure_cbs: List[Callable[[int, TransportFailure], None]] = []
        # receiver side
        self._rx_upto: Dict[int, int] = {}
        self._rx_extra: Dict[int, Set[int]] = {}
        # Per-peer flow incarnation.  Both ends of a pair bump it in
        # lockstep when a rank restarts (World._restart_rank resets the
        # restarted rank and every peer at the same instant), so a
        # sequenced packet or selective ack stamped with an older epoch
        # is provably stale — from before the restart — and is dropped
        # instead of being mis-deduped against the fresh sequence space.
        self._flow_epoch: Dict[int, int] = {}
        self.stats: Dict[str, int] = {
            "sent": 0,
            "retransmits": 0,
            "acks_tx": 0,
            "acks_rx": 0,
            "dup_rx": 0,
            "csum_drops": 0,
            "failures": 0,
            "stale_drops": 0,
            "stale_acks": 0,
        }
        nic.register_handler(ACK_KIND, self._on_ack_packet)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def add_path_failure_callback(
        self, fn: Callable[[int, TransportFailure], None]
    ) -> None:
        """Call ``fn(dst, failure)`` when a flow to ``dst`` breaks."""
        self._path_failure_cbs.append(fn)

    def prepare(self, packet: Packet) -> None:
        """Sequence + checksum an outgoing packet (from :meth:`Nic.send`)."""
        if packet.kind == ACK_KIND:
            return
        dst = packet.dst
        seq = self._tx_seq.get(dst, 0) + 1
        self._tx_seq[dst] = seq
        packet.flow_seq = seq
        packet.flow_epoch = self._flow_epoch.get(dst, 0)
        packet.checksum = payload_checksum(packet)
        packet.wire_checksum = packet.checksum
        self._outstanding[(dst, seq)] = _TxEntry(packet, dst, seq)
        self.stats["sent"] += 1

    def packet_injected(self, packet: Packet) -> None:
        """Arm (or re-arm) the retransmission timer; called by the NIC
        injector after handing the packet to the fabric."""
        entry = self._outstanding.get((packet.dst, packet.flow_seq))
        if entry is None:
            return  # acked while a retransmit sat in the injection queue
        entry.attempts += 1
        packet.attempts = entry.attempts
        entry.timer_gen += 1
        cfg = self.fabric.config_for(self.rank, entry.dst)
        rto = min(
            cfg.retransmit_timeout(packet.wire_bytes)
            * self.params.rto_scale
            * (self.params.backoff ** (entry.attempts - 1)),
            self.params.rto_max,
        )
        self.sim.schedule_call(rto, self._on_timer, entry, entry.timer_gen)

    def _on_timer(self, entry: _TxEntry, gen: int) -> None:
        if entry.timer_gen != gen:
            return  # re-armed or cancelled since
        if self._outstanding.get((entry.dst, entry.seq)) is not entry:
            return  # acked or already failed
        if self.fabric.is_dead(entry.dst):
            self._fail_flow(entry, "target-dead")
            return
        if entry.attempts > self.params.retry_budget:
            self._fail_flow(entry, "retry-budget-exhausted")
            return
        self.stats["retransmits"] += 1
        self._retx_by_dst[entry.dst] = self._retx_by_dst.get(entry.dst, 0) + 1
        packet = entry.packet
        # Undo any in-flight corruption: the sender retransmits pristine
        # data with the true checksum.
        packet.wire_checksum = packet.checksum
        tracer = self.fabric.tracer
        tracer.bump("xport.retransmit", rank=self.rank, dst=entry.dst)
        if tracer.enabled:
            tracer.record(self.sim.now, "xport", "retransmit",
                          rank=self.rank, dst=entry.dst, seq=entry.seq,
                          attempt=entry.attempts, kind_=packet.kind)
        self.nic.reinject(packet)

    def _on_ack_packet(self, packet: Packet) -> None:
        self.stats["acks_rx"] += 1
        tracer = self.fabric.tracer
        if tracer.enabled:
            tracer.record(self.sim.now, "xport", "ack_rx",
                          rank=self.rank, src=packet.src,
                          seq=packet.payload["seq"])
        if (packet.payload.get("epoch", 0)
                != self._flow_epoch.get(packet.src, 0)):
            # A delayed pre-restart ack must not confirm a packet of the
            # fresh sequence space that happens to reuse its number.
            self.stats["stale_acks"] += 1
            return
        entry = self._outstanding.pop((packet.src, packet.payload["seq"]), None)
        if entry is None:
            return  # duplicate ack, or the flow already failed
        entry.timer_gen += 1  # cancel the pending timer
        acked = entry.packet
        # The transport ack confirms delivery; complete the hardware-ack
        # event if the NIC-generated ack was lost (or has not landed yet).
        ev = acked.ev_remote_complete
        if acked.want_ack and ev is not None and not ev.triggered:
            ev.succeed(self.sim.now)

    def _classify_failure(self, dst: int, reason: str) -> str:
        """Structured kind of a flow failure (RMA error taxonomy)."""
        if reason == "target-dead" or self.fabric.is_dead(dst):
            return "rank_failed"
        topo = getattr(self.fabric, "_topo", None)
        if topo is not None and topo.path_for(self.rank, dst) is None:
            return "link_partition"
        return "retry_exhausted"

    def _fail_flow(self, entry: _TxEntry, reason: str) -> None:
        dst = entry.dst
        failure = TransportFailure(
            src=self.rank, dst=dst, attempts=entry.attempts,
            sim_time=self.sim.now, reason=reason,
            packet_kind=entry.packet.kind, packet_id=entry.packet.packet_id,
            kind=self._classify_failure(dst, reason),
        )
        self._broken.add(dst)
        dead = [key for key in self._outstanding if key[0] == dst]
        self.stats["failures"] += len(dead)
        for key in dead:
            doomed = self._outstanding.pop(key)
            doomed.timer_gen += 1
        tracer = self.fabric.tracer
        tracer.bump("xport.flow_failure", rank=self.rank, dst=dst)
        if tracer.enabled:
            tracer.record(self.sim.now, "xport", "flow_failure",
                          rank=self.rank, dst=dst, reason=reason,
                          attempts=entry.attempts)
        for cb in self._path_failure_cbs:
            cb(dst, failure)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def rx_accept(self, packet: Packet) -> bool:
        """Verify + dedup an arriving sequenced packet; ``False`` means
        the NIC must not dispatch it (corrupt or duplicate)."""
        if packet.wire_checksum != payload_checksum(packet):
            self.stats["csum_drops"] += 1
            tracer = self.fabric.tracer
            tracer.bump("xport.csum_drop", rank=self.rank, src=packet.src)
            if tracer.enabled:
                tracer.record(self.sim.now, "xport", "csum_drop",
                              rank=self.rank, src=packet.src,
                              seq=packet.flow_seq)
            return False  # no ack: the sender will retransmit
        src = packet.src
        seq = packet.flow_seq
        epoch = packet.flow_epoch or 0
        cur_epoch = self._flow_epoch.get(src, 0)
        if epoch != cur_epoch:
            if epoch < cur_epoch:
                # Stale pre-restart packet that survived in flight: its
                # sequence number belongs to a dead numbering.  Dropping
                # it silently (no ack, no dedup-state update) is the
                # only safe move — acking would confirm a fresh-epoch
                # sequence number, stashing would corrupt the new flow.
                self.stats["stale_drops"] += 1
                tracer = self.fabric.tracer
                tracer.bump("xport.stale_drop", rank=self.rank, src=src)
                if tracer.enabled:
                    tracer.record(self.sim.now, "xport", "stale_drop",
                                  rank=self.rank, src=src, seq=seq,
                                  epoch=epoch)
                return False
            # Sender is ahead (we missed the coordinated reset — can only
            # happen if an upper layer reset one side): adopt its epoch
            # with a fresh receive window.
            self._flow_epoch[src] = epoch
            self._rx_upto.pop(src, None)
            self._rx_extra.pop(src, None)
            cur_epoch = epoch
        upto = self._rx_upto.get(src, 0)
        extra = self._rx_extra.get(src)
        duplicate = seq <= upto or (extra is not None and seq in extra)
        self._send_ack(src, seq, cur_epoch)
        if duplicate:
            self.stats["dup_rx"] += 1
            return False
        if seq == upto + 1:
            upto += 1
            if extra:
                while upto + 1 in extra:
                    extra.discard(upto + 1)
                    upto += 1
            self._rx_upto[src] = upto
        else:
            if extra is None:
                extra = self._rx_extra[src] = set()
            extra.add(seq)
        return True

    def _send_ack(self, dst: int, seq: int, epoch: int) -> None:
        self.stats["acks_tx"] += 1
        self.nic.send(Packet(src=self.rank, dst=dst, kind=ACK_KIND,
                             payload={"seq": seq, "epoch": epoch}))

    # ------------------------------------------------------------------
    # Introspection / reset
    # ------------------------------------------------------------------
    def retx_to(self, dst: int) -> int:
        """Retransmissions performed toward ``dst`` so far."""
        return self._retx_by_dst.get(dst, 0)

    def is_broken(self, dst: int) -> bool:
        """Whether the flow to ``dst`` has been declared failed."""
        return dst in self._broken

    def flow_epoch(self, other: int) -> int:
        """Current flow incarnation shared with ``other``."""
        return self._flow_epoch.get(other, 0)

    def reset_flow(self, other: int) -> None:
        """Forget all state shared with ``other`` (rank restart): both
        directions restart from sequence 1 with an empty window, under
        a bumped flow epoch that fences off stale in-flight traffic."""
        self._flow_epoch[other] = self._flow_epoch.get(other, 0) + 1
        self._tx_seq.pop(other, None)
        for key in [k for k in self._outstanding if k[0] == other]:
            self._outstanding.pop(key).timer_gen += 1
        self._rx_upto.pop(other, None)
        self._rx_extra.pop(other, None)
        self._retx_by_dst.pop(other, None)
        self._broken.discard(other)

    def reset_all(self) -> None:
        """Forget every flow (this NIC's own rank restarted)."""
        for entry in self._outstanding.values():
            entry.timer_gen += 1
        peers = set(self._flow_epoch)
        peers.update(self._tx_seq, self._rx_upto, self._rx_extra,
                     self._retx_by_dst, self._broken)
        if self.fabric.n_ranks is not None:
            peers.update(r for r in range(self.fabric.n_ranks)
                         if r != self.rank)
        for other in peers:
            self._flow_epoch[other] = self._flow_epoch.get(other, 0) + 1
        self._tx_seq.clear()
        self._outstanding.clear()
        self._rx_upto.clear()
        self._rx_extra.clear()
        self._retx_by_dst.clear()
        self._broken.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ReliableTransport rank={self.rank} "
                f"outstanding={len(self._outstanding)} stats={self.stats}>")
