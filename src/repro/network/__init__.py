"""Simulated interconnect.

Models the network properties the paper's §III-B keys on:

- **ordering** — whether the fabric delivers packets between a pair of
  ranks in injection order (Cray SeaStar/Portals: yes; Quadrics
  QSNetII/III: no);
- **remote-completion events** — whether the NIC hardware tells the
  *origin* when a message has landed in target memory (Portals event
  queue: yes; plain RDMA without acks: no);
- **active messages** — whether the NIC can run a user handler at the
  target without the target process calling anything (Portals on the XT:
  no; GASNet-style NICs: yes);
- **small atomics** — word-granularity network atomics (never arbitrary
  sections — paper §V notes networks cannot atomically access arbitrary
  remote regions).

Timing follows LogGP: per-message origin overhead ``o``, injection gap
``g``, per-byte time ``G`` (serialization), wire latency ``L``.  All
times in microseconds.
"""

from repro.network.config import (
    NetworkConfig,
    generic_rdma,
    infiniband_like,
    quadrics_like,
    seastar_portals,
    shared_memory_like,
)
from repro.network.fabric import Fabric
from repro.network.nic import Nic, UnknownPacketKind
from repro.network.packet import ACK_SIZE, HEADER_SIZE, Packet
from repro.network.transport import ReliableTransport, TransportFailure

__all__ = [
    "ACK_SIZE",
    "Fabric",
    "HEADER_SIZE",
    "NetworkConfig",
    "Nic",
    "Packet",
    "ReliableTransport",
    "TransportFailure",
    "UnknownPacketKind",
    "generic_rdma",
    "infiniband_like",
    "quadrics_like",
    "seastar_portals",
    "shared_memory_like",
]
