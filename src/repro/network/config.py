"""Network configuration and named presets."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.topo.graph import Topology

__all__ = [
    "NetworkConfig",
    "seastar_portals",
    "quadrics_like",
    "infiniband_like",
    "generic_rdma",
    "shared_memory_like",
]


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect personality + LogGP cost model (times in µs).

    Attributes
    ----------
    latency:
        ``L`` — wire latency for any packet.
    overhead_send / overhead_recv:
        ``o`` — CPU time charged to the origin to start an injection /
        to a software receive handler at the target.
    gap:
        ``g`` — minimum NIC-side spacing between message injections.
    byte_time:
        ``G`` — serialization time per payload byte (1/bandwidth).
    ordered:
        Packets between a (src, dst) pair arrive in injection order.
    remote_completion_events:
        The NIC hardware acks delivery to the origin (Portals EQ).  When
        false, remote completion must be built in software (target
        round-trip through its CPU).
    active_messages:
        The NIC can run registered handlers at the target without target
        CPU participation by the application.
    small_atomics:
        Word-size network atomics (CAS / fetch-add) exist in hardware.
    jitter:
        Max extra delay drawn per packet on unordered fabrics (models
        adaptive routing spread).
    mtu:
        Largest data payload per packet; larger transfers fragment.
        Fragmentation is what makes concurrent non-atomic access to
        overlapping regions observably interleave (paper §II-A/§IV
        requirement 3: overlapping ops are permitted but undefined).
    topology:
        Optional :class:`~repro.topo.graph.Topology`.  When set, the
        fabric routes inter-node packets over the topology graph —
        per-hop latency/serialization and link contention replace the
        flat ``latency`` for wire flight (NIC-side ``overhead_*``,
        ``gap``, ``byte_time`` and the capability flags still apply).
        When ``None`` (the default) the flat LogGP pipe is used and
        every simulated timestamp stays bit-identical to the
        pre-topology model.
    """

    name: str = "generic"
    latency: float = 4.0
    overhead_send: float = 0.4
    overhead_recv: float = 0.4
    gap: float = 0.2
    byte_time: float = 0.0006  # ~1.7 GB/s
    ordered: bool = True
    remote_completion_events: bool = True
    active_messages: bool = True
    small_atomics: bool = False
    jitter: float = 2.0
    mtu: int = 4096
    topology: "Optional[Topology]" = None

    def __post_init__(self) -> None:
        for field_name in ("latency", "overhead_send", "overhead_recv", "gap",
                           "byte_time", "jitter"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if self.mtu < 8:
            raise ValueError("mtu must be >= 8 bytes")

    def serialization_time(self, nbytes: int) -> float:
        """NIC injection occupancy for an ``nbytes``-payload message."""
        return max(self.gap, nbytes * self.byte_time)

    def retransmit_timeout(self, wire_bytes: int) -> float:
        """Analytic round-trip estimate used as the base retransmission
        timeout by the reliable transport: serialization of the packet,
        two flights (with worst-case jitter), the target's receive
        overhead, and serialization of the software ack on each side.
        Deliberately generous — a spurious retransmit wastes bandwidth,
        a spurious path failure breaks a flow."""
        from repro.network.packet import HEADER_SIZE

        flight = self.latency + self.jitter
        if self.topology is not None:
            # Routed fabrics fly hop by hop; size the RTO to the
            # longest healthy route (congestion beyond that is handled
            # by backoff, and duplicates by the receive-side dedup).
            flight = max(
                flight,
                self.topology.max_hops()
                * (self.topology.link_latency
                   + wire_bytes * self.topology.link_byte_time),
            )
        return (
            self.serialization_time(wire_bytes)
            + 2.0 * flight
            + self.overhead_recv
            + 2.0 * self.serialization_time(HEADER_SIZE)
        )

    def with_(self, **kwargs) -> "NetworkConfig":
        """Copy with fields replaced (ablation convenience)."""
        return replace(self, **kwargs)


def seastar_portals() -> NetworkConfig:
    """Cray XT5 SeaStar with Portals.

    Ordered delivery is a natural property; the event-queue mechanism
    lets the origin check remote completion (paper §V-A); no active
    messages (paper §III-B1).
    """
    return NetworkConfig(
        name="seastar-portals",
        latency=2.2,
        overhead_send=4.0,  # Portals put software path on the XT5 (~µs)
        overhead_recv=1.0,
        gap=0.3,
        byte_time=0.0005,  # ~2 GB/s
        ordered=True,
        remote_completion_events=True,
        active_messages=False,
        small_atomics=False,
    )


def quadrics_like() -> NetworkConfig:
    """Quadrics QSNetII/III-flavoured fabric: low latency, **no ordering
    guarantee** (paper §III-B1), but remote completion events and even
    NIC-side handlers exist."""
    return NetworkConfig(
        name="quadrics-like",
        latency=2.5,
        overhead_send=0.8,
        overhead_recv=0.8,
        gap=0.25,
        byte_time=0.001,
        ordered=False,
        remote_completion_events=True,
        active_messages=True,
        small_atomics=True,
        jitter=3.0,
    )


def infiniband_like() -> NetworkConfig:
    """InfiniBand-flavoured RDMA fabric: ordered within a connection,
    local completions only — **no remote-completion events** — so remote
    completion costs a software round trip."""
    return NetworkConfig(
        name="infiniband-like",
        latency=3.0,
        overhead_send=0.7,
        overhead_recv=0.7,
        gap=0.2,
        byte_time=0.0004,
        ordered=True,
        remote_completion_events=False,
        active_messages=False,
        small_atomics=True,
    )


def generic_rdma() -> NetworkConfig:
    """A permissive fabric with every capability — useful as the
    best-case baseline in ablations."""
    return NetworkConfig(
        name="generic-rdma",
        ordered=True,
        remote_completion_events=True,
        active_messages=True,
        small_atomics=True,
    )


def shared_memory_like() -> NetworkConfig:
    """Intra-node transport: negligible latency, high bandwidth."""
    return NetworkConfig(
        name="shared-memory",
        latency=0.15,
        overhead_send=0.05,
        overhead_recv=0.05,
        gap=0.02,
        byte_time=0.0001,
        ordered=True,
        remote_completion_events=True,
        active_messages=True,
        small_atomics=True,
        jitter=0.0,
    )
