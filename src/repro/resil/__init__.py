"""Process-failure tolerance: ULFM-style detection and recovery.

See DESIGN.md §13.  The layer is opt-in (``World(resilience=...)``);
worlds built without it construct nothing here and keep the fault-free
fast path bit-identical.
"""

from repro.resil.detector import HB_KIND, ResilienceConfig, ResilienceRuntime
from repro.resil.errors import RankFailed, WindowRevoked

__all__ = [
    "HB_KIND",
    "RankFailed",
    "ResilienceConfig",
    "ResilienceRuntime",
    "WindowRevoked",
]
