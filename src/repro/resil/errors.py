"""Structured failure notifications and errors of the resilience layer.

:class:`RankFailed` is the *notification* the failure detector hands to
subscribers — plain data, one per (observer, failed rank) pair.
:class:`WindowRevoked` is the structured error (an
:class:`~repro.rma.target_mem.RmaError` with ``kind="window_revoked"``)
that pending and new operations on a revoked MPI-2 window fail with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rma.target_mem import RmaError

__all__ = ["RankFailed", "WindowRevoked"]


@dataclass(frozen=True)
class RankFailed:
    """One observer's verdict that a rank has failed.

    Attributes
    ----------
    rank:
        The world rank declared failed.
    observer:
        The world rank that reached the verdict (suspicion is local —
        different observers detect at different times).
    detected_at:
        Simulated time of the verdict.
    via:
        What produced the evidence: ``"heartbeat"`` (suspicion timeout
        on the heartbeat counter), ``"transport"`` (the reliable
        transport declared the flow dead) or ``"manual"``
        (application-asserted).
    """

    rank: int
    observer: int
    detected_at: float
    via: str = "heartbeat"

    def __str__(self) -> str:
        return (f"rank {self.rank} failed (observed by {self.observer} "
                f"at t={self.detected_at:.3f} via {self.via})")


class WindowRevoked(RmaError):
    """Operation on a revoked MPI-2 window (ULFM ``MPI_ERR_REVOKED``).

    Raised (or delivered as a completion value) for pending and new
    operations once :meth:`repro.mpi2rma.window.Win.revoke` ran —
    locally or through the failure detector's auto-revocation.
    """

    def __init__(self, message: str, *, win_id: object = None,
                 failed_rank: Optional[int] = None, **kw) -> None:
        kw.setdefault("kind", "window_revoked")
        super().__init__(message, **kw)
        self.win_id = win_id
        self.failed_rank = failed_rank
