"""ULFM-style failure detection over RMA heartbeats.

Each rank exposes a small *heartbeat region* (one int64 slot per peer)
and runs two daemon loops:

* a **heartbeat** loop that, every (jittered) ``heartbeat_interval``,
  one-sidedly puts a monotonically increasing counter into its slot in
  every unsuspected peer's region — fire-and-forget packets that ride
  the same fabric (and, on faulty runs, the same reliable transport)
  as application traffic;
* a **monitor** loop that polls the rank's own region and declares a
  peer *suspected* once its slot has not changed for
  ``suspicion_timeout`` simulated microseconds.

A second evidence source feeds the same verdict: when the reliable
transport declares a whole flow dead with ``kind == "rank_failed"``
(its retry budget exhausted against a peer the fabric knows is dead),
the detector suspects immediately — typically much faster than the
heartbeat timeout when the application was actively communicating.

Suspicion is **local** (each observer reaches its own verdict at its
own time) and **sticky**: a restarted rank is *not* re-admitted — its
replica state is stale, and ULFM semantics treat a failed rank as
failed forever; recovery happens by shrinking to the survivors (see
:meth:`repro.mpi.comm.Comm.shrink` / :meth:`~repro.mpi.comm.Comm.agree`
and :class:`repro.ga.replicated.ReplicatedGlobalArray`).

The whole subsystem is opt-in: a :class:`~repro.runtime.World` built
without ``resilience=`` constructs none of this, spawns zero extra
processes and sends zero extra packets, keeping the fault-free fast
path bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set

import numpy as np

from repro.network.packet import Packet
from repro.resil.errors import RankFailed

__all__ = ["ResilienceConfig", "ResilienceRuntime", "HB_KIND"]

#: Packet kind of heartbeat puts (dispatched straight into the
#: destination's heartbeat region by a NIC handler).
HB_KIND = "resil.hb"


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs of the failure detector.

    Attributes
    ----------
    heartbeat_interval:
        Mean µs between heartbeat puts from each rank.
    suspicion_timeout:
        µs of heartbeat silence after which a peer is suspected.  Must
        comfortably exceed the interval plus worst-case delivery (a
        small multiple of the interval; the default is 5x).
    jitter:
        Fractional jitter on the interval (each wait is drawn uniformly
        from ``interval * [1-jitter, 1+jitter]`` on a seeded stream) so
        heartbeats from different ranks do not phase-lock.
    """

    heartbeat_interval: float = 200.0
    suspicion_timeout: float = 1000.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspicion_timeout <= self.heartbeat_interval:
            raise ValueError(
                "suspicion_timeout must exceed heartbeat_interval "
                f"({self.suspicion_timeout} <= {self.heartbeat_interval})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


class ResilienceRuntime:
    """Per-world failure detector state and daemons.

    Built by the :class:`~repro.runtime.World` (``resilience=`` knob)
    after the RMA subsystems attach; spawns its daemon processes
    immediately (they start when the simulation runs and, being
    daemons, never keep it alive).
    """

    def __init__(self, world, config: Optional[ResilienceConfig] = None) -> None:
        self.world = world
        self.config = config if config is not None else ResilienceConfig()
        self.sim = world.sim
        self.n_ranks = world.n_ranks
        #: observer rank -> set of world ranks it has declared failed.
        self._suspected: Dict[int, Set[int]] = {
            r: set() for r in range(self.n_ranks)
        }
        #: observer rank -> notification callbacks.
        self._subs: Dict[int, List[Callable[[RankFailed], None]]] = {
            r: [] for r in range(self.n_ranks)
        }
        #: every verdict reached, in detection order (all observers).
        self.notices: List[RankFailed] = []
        self.stats = {"heartbeats": 0, "suspects": 0, "false_suspects": 0}

        # Heartbeat regions: one int64 slot per peer, exposed for remote
        # access (expose is non-collective and zero-time; the descriptor
        # is plain data, so collecting it world-side needs no exchange).
        self._hb_views: Dict[int, np.ndarray] = {}
        self._last_seen: Dict[int, np.ndarray] = {}
        self._last_change: Dict[int, np.ndarray] = {}
        self._counters: Dict[int, int] = {r: 0 for r in range(self.n_ranks)}
        for rank in range(self.n_ranks):
            space = world.memories[rank].space
            alloc = space.alloc(8 * self.n_ranks)
            engine = getattr(world.contexts[rank].rma, "engine", None)
            if engine is not None:
                engine.expose(alloc)  # visible to RMA like any window
            self._hb_views[rank] = space.view(alloc, "int64")
            self._last_seen[rank] = np.zeros(self.n_ranks, dtype=np.int64)
            self._last_change[rank] = np.zeros(self.n_ranks, dtype=np.float64)
            world.nics[rank].register_handler(
                HB_KIND, self._make_hb_handler(rank)
            )

        # Transport evidence: a flow declared dead against a dead rank
        # is an immediate verdict (only kind == "rank_failed" — retry
        # exhaustion on a live-but-lossy path or a routed partition must
        # not kill the peer).
        for rank, nic in world.nics.items():
            transport = nic.transport
            if transport is not None:
                transport.add_path_failure_callback(
                    self._make_transport_cb(rank)
                )

        for rank in range(self.n_ranks):
            self.sim.spawn(self._heartbeat_loop(rank), name=f"resil-hb-{rank}")
            self.sim.spawn(self._monitor_loop(rank), name=f"resil-mon-{rank}")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def suspected(self, observer: int) -> FrozenSet[int]:
        """The set of ranks ``observer`` has declared failed."""
        return frozenset(self._suspected[observer])

    def subscribe(
        self, observer: int, callback: Callable[[RankFailed], None]
    ) -> None:
        """Call ``callback(notice)`` on each future verdict by
        ``observer``; verdicts already reached are replayed immediately
        (subscribers never miss a failure that predates them)."""
        self._subs[observer].append(callback)
        for notice in list(self.notices):
            if notice.observer == observer:
                callback(notice)

    def assert_failed(self, observer: int, rank: int) -> None:
        """Application-asserted failure (ULFM's local revoke trigger)."""
        self._suspect(observer, rank, via="manual")

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------
    def _make_hb_handler(self, rank: int):
        views = self._hb_views

        def on_heartbeat(packet: Packet) -> None:
            views[rank][packet.payload["src"]] = packet.payload["hb"]

        return on_heartbeat

    def _make_transport_cb(self, observer: int):
        def on_path_failure(dst: int, failure) -> None:
            if getattr(failure, "kind", None) == "rank_failed":
                self._suspect(observer, dst, via="transport")

        return on_path_failure

    def _wait(self, rank: int):
        cfg = self.config
        delay = self.world.rng.uniform(
            f"resil.hb.{rank}",
            cfg.heartbeat_interval * (1.0 - cfg.jitter),
            cfg.heartbeat_interval * (1.0 + cfg.jitter),
        )
        return self.sim.timeout(delay)

    def _heartbeat_loop(self, rank: int):
        fabric = self.world.fabric
        nic = self.world.nics[rank]
        while True:
            yield self._wait(rank)
            if fabric.is_dead(rank):
                continue  # a dead process sends nothing
            self._counters[rank] += 1
            counter = self._counters[rank]
            self._hb_views[rank][rank] = counter  # own slot: local store
            suspected = self._suspected[rank]
            for peer in range(self.n_ranks):
                if peer == rank or peer in suspected:
                    continue
                nic.send(Packet(
                    src=rank, dst=peer, kind=HB_KIND,
                    payload={"src": rank, "hb": counter}, data_bytes=8,
                ))
                self.stats["heartbeats"] += 1

    def _monitor_loop(self, rank: int):
        cfg = self.config
        fabric = self.world.fabric
        view = self._hb_views[rank]
        seen = self._last_seen[rank]
        changed_at = self._last_change[rank]
        while True:
            yield self._wait(rank)
            now = self.sim.now
            if fabric.is_dead(rank):
                # A dead process observes nothing: freeze the clocks so
                # a restarted rank does not instantly suspect everyone.
                changed_at[:] = now
                continue
            moved = view != seen
            seen[moved] = view[moved]
            changed_at[moved] = now
            suspected = self._suspected[rank]
            for peer in range(self.n_ranks):
                if peer == rank or peer in suspected:
                    continue
                if now - changed_at[peer] > cfg.suspicion_timeout:
                    self._suspect(rank, peer, via="heartbeat")

    # ------------------------------------------------------------------
    def _suspect(self, observer: int, rank: int, via: str) -> None:
        if rank in self._suspected[observer] or rank == observer:
            return
        self._suspected[observer].add(rank)
        notice = RankFailed(
            rank=rank, observer=observer, detected_at=self.sim.now, via=via
        )
        self.notices.append(notice)
        self.stats["suspects"] += 1
        metrics = self.world.metrics
        metrics.counter("resil.suspects", via=via).inc()
        kill_time = getattr(self.world, "_kill_times", {}).get(rank)
        if kill_time is not None:
            metrics.histogram("resil.detect_latency").observe(
                self.sim.now - kill_time
            )
        else:
            # Suspicion of a rank that never died (drop storm outlasting
            # the timeout): counted, so sweeps can assert it never
            # happens at sane timeouts.
            self.stats["false_suspects"] += 1
            metrics.counter("resil.false_suspects").inc()
        if self.world.tracer.enabled:
            self.world.tracer.record(
                self.sim.now, "resil", "suspect", rank=observer,
                target=rank, via=via,
            )
        for callback in list(self._subs[observer]):
            callback(notice)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(s) for s in self._suspected.values())
        return f"<ResilienceRuntime {self.n_ranks} ranks, {total} verdicts>"
