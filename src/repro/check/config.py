"""The single versioned run configuration (DESIGN §16.4).

Everything that determines how a checked program executes — fabric,
world seed, chaos, engine mutations, machine shape, generator toggles,
and (since the IR pipeline landed) the optimizing passes applied before
the run — lives in one frozen :class:`RunConfig`.  The fuzzing CLI
builds one per (seed, fabric), the shrinker re-executes candidates
through it, and the JSON artifact records exactly its ``to_dict()``
under a single ``"config"`` key, so replay can never drift from the
original run because a toggle was forgotten in one of the three places.

Version history:

- v1 artifacts (through PR 9) scattered the configuration over
  top-level keys (``fabric``, ``seed``, ``chaos``, ``mutations``,
  ``shared``) plus ad-hoc extras (``notify``);
  :meth:`RunConfig.from_artifact` still reads them, so old reproducers
  replay unchanged.
- v2 is this dict, with ``ir_passes`` added.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

__all__ = ["CONFIG_VERSION", "RunConfig"]

CONFIG_VERSION = 2


@dataclass(frozen=True)
class RunConfig:
    """One checked execution's full configuration."""

    fabric: str
    seed: int
    chaos: float = 0.0
    mutations: Tuple[str, ...] = ()
    shared: bool = False
    #: Generator toggle: programs carry the notified-RMA clause.
    notify: bool = False
    #: IR optimizing passes applied before the run (empty = off).  A
    #: non-empty tuple routes checking through the three-arm
    #: differential harness (:func:`repro.ir.verify.check_optimized`).
    ir_passes: Tuple[str, ...] = ()

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": CONFIG_VERSION,
            "fabric": self.fabric,
            "seed": self.seed,
            "chaos": self.chaos,
            "mutations": list(self.mutations),
            "shared": self.shared,
            "notify": self.notify,
            "ir_passes": list(self.ir_passes),
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "RunConfig":
        version = doc.get("version", CONFIG_VERSION)
        if version not in (1, CONFIG_VERSION):
            raise ValueError(f"unsupported config version {version!r}")
        return cls(
            fabric=doc["fabric"],
            seed=doc["seed"],
            chaos=doc.get("chaos", 0.0),
            mutations=tuple(doc.get("mutations", ())),
            shared=doc.get("shared", False),
            notify=doc.get("notify", False),
            ir_passes=tuple(doc.get("ir_passes", ())),
        )

    @classmethod
    def from_artifact(cls, doc: Dict) -> "RunConfig":
        """Read the configuration out of an artifact document, either
        shape: the v2 single ``"config"`` dict, or the v1 scattered
        top-level keys (with ``notify`` as an optional extra)."""
        if "config" in doc:
            return cls.from_dict(doc["config"])
        return cls.from_dict({k: doc[k] for k in (
            "fabric", "seed", "chaos", "mutations", "shared", "notify")
            if k in doc})

    # -- presentation ----------------------------------------------------
    def describe(self) -> str:
        """The one-line banner the CLI prints when restoring this
        configuration for a replay."""
        out = f"fabric={self.fabric} seed={self.seed} chaos={self.chaos}"
        if self.shared:
            out += " shared (paired machine, load/store windows)"
        if self.notify:
            out += " notify"
        if self.mutations:
            out += f" mutations={list(self.mutations)}"
        if self.ir_passes:
            out += f" ir_passes={list(self.ir_passes)}"
        return out

    # -- execution -------------------------------------------------------
    def generate(self, seed: int = None):
        """Generate the program this configuration fuzzes (the world
        seed doubles as the program seed unless overridden)."""
        from repro.check.generator import generate_program

        return generate_program(self.seed if seed is None else seed,
                                notify=self.notify)

    def run(self, program):
        """Execute ``program`` under this configuration (no oracle)."""
        from repro.check.runner import run_program

        return run_program(program, self.fabric, self.seed,
                           chaos=self.chaos, mutations=self.mutations,
                           shared=self.shared)

    def check(self, program):
        """Execute + oracle-check ``program`` under this configuration.

        With ``ir_passes`` set, the program is optimized first and all
        three differential arms (original, optimized, refinement) fold
        into the returned report; otherwise this is the plain
        run-and-check the conformance sweep does."""
        if self.ir_passes:
            from repro.ir.verify import check_optimized

            return check_optimized(program, self)
        from repro.check.oracle import check_program

        return check_program(self.run(program))

    def with_(self, **kw) -> "RunConfig":
        return replace(self, **kw)
