"""Delta-debugging shrinker + replayable JSON artifacts.

Classic ddmin over the program's flat op list: every candidate subset
is *re-executed* on the same :class:`~repro.check.config.RunConfig`
and kept only if the oracle still reports a violation.  Because any
subsequence of ``ops`` is again a valid program (the IR guarantees
it), no repair pass is needed — the result is a 1-minimal op list:
removing any single remaining op makes the failure disappear.  When
the config carries ``ir_passes``, every candidate goes through the
full three-arm differential harness, so a failure introduced by an
unsound optimizing pass shrinks exactly like an engine bug.

The shrunk reproducer is serialized as a self-contained JSON artifact:
program + the config's single versioned dict + the violations
observed.  :func:`replay_artifact` re-runs it from the file — the
CLI's ``--replay`` path and the CI failure workflow both go through
it.  Version-1 artifacts (through PR 9, configuration scattered over
top-level keys) still load and replay byte-for-byte the same way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.config import RunConfig
from repro.check.oracle import CheckReport
from repro.check.program import RmaProgram

__all__ = ["ShrinkResult", "ddmin_list", "shrink", "save_artifact",
           "load_artifact", "replay_artifact"]

#: v2: the run configuration became one versioned ``"config"`` dict.
ARTIFACT_VERSION = 2


def ddmin_list(items: List, fails: Callable[[List], Optional[object]],
               max_executions: int = 400):
    """Generic ddmin over a flat list.

    ``fails(candidate)`` returns evidence (any truthy object) when the
    candidate still exhibits the failure, else ``None``.  ``items`` must
    already fail.  Returns ``(minimal_items, evidence, executions)``
    where the result is 1-minimal up to the execution budget.
    """
    executions = 0

    def run(candidate):
        nonlocal executions
        executions += 1
        return fails(candidate)

    evidence = run(items)
    if evidence is None:
        raise ValueError("items do not fail — nothing to shrink")
    items = list(items)
    n = 2
    while len(items) >= 2 and executions < max_executions:
        chunk = max(1, len(items) // n)
        reduced = False
        start = 0
        while start < len(items) and executions < max_executions:
            candidate = items[:start] + items[start + chunk:]
            if candidate:
                ev = run(candidate)
                if ev is not None:
                    items = candidate
                    evidence = ev
                    n = max(n - 1, 2)
                    reduced = True
                    continue
            start += chunk
        if not reduced:
            if n >= len(items):
                break
            n = min(n * 2, len(items))
    return items, evidence, executions


@dataclass
class ShrinkResult:
    """Outcome of one shrinking session."""

    program: RmaProgram          # the 1-minimal failing program
    report: CheckReport          # the violation it still produces
    original_ops: int
    executions: int              # oracle runs spent shrinking

    @property
    def shrunk_ops(self) -> int:
        return len(self.program.ops)


def _fails(program: RmaProgram, config: RunConfig) -> Optional[CheckReport]:
    """Run + check; the report when it still violates, else ``None``.

    A candidate subset that deadlocks or crashes the stack is treated
    as *not failing* (we are minimizing the observed conformance
    violation, not whatever new problem an odd subset tickles)."""
    try:
        report = config.check(program)
    except Exception:
        return None
    return report if report.violations else None


def shrink(
    program: RmaProgram,
    fabric=None,
    seed: Optional[int] = None,
    chaos: float = 0.0,
    mutations: Tuple[str, ...] = (),
    shared: bool = False,
    max_executions: int = 400,
    config: Optional[RunConfig] = None,
) -> ShrinkResult:
    """ddmin-minimize a failing program.

    Pass either a :class:`RunConfig` (``config=...`` or as the second
    positional argument) or the legacy loose ``(fabric, seed, ...)``
    parameters.  ``program`` must already fail on the configuration
    (raises otherwise — a shrink request for a passing program is a
    caller bug)."""
    if config is None:
        if isinstance(fabric, RunConfig):
            config = fabric
        else:
            config = RunConfig(fabric=fabric, seed=seed, chaos=chaos,
                               mutations=tuple(mutations), shared=shared)

    def fails(candidate_ops: List) -> Optional[CheckReport]:
        return _fails(program.with_ops(candidate_ops), config)

    try:
        ops, best_report, executions = ddmin_list(
            list(program.ops), fails, max_executions
        )
    except ValueError:
        raise ValueError(
            f"program does not fail on fabric={config.fabric!r} "
            f"seed={config.seed} — nothing to shrink")

    return ShrinkResult(program=program.with_ops(ops), report=best_report,
                        original_ops=len(program.ops),
                        executions=executions)


# ----------------------------------------------------------------------
# Replayable artifacts
# ----------------------------------------------------------------------
def save_artifact(
    path: str,
    program: RmaProgram,
    report: CheckReport,
    *,
    config: Optional[RunConfig] = None,
    chaos: float = 0.0,
    mutations: Tuple[str, ...] = (),
    shared: bool = False,
    extra: Optional[Dict] = None,
) -> None:
    """Write a self-contained failing-program JSON artifact.

    The run configuration is recorded as one versioned dict under
    ``"config"``.  Callers without a :class:`RunConfig` in hand may
    still pass the legacy loose kwargs (fabric and seed come from the
    report); an ``extra={"notify": True}`` toggle folds into it."""
    extra = dict(extra) if extra else None
    if config is None:
        config = RunConfig(
            fabric=report.fabric, seed=report.seed, chaos=chaos,
            mutations=tuple(mutations), shared=shared,
            notify=bool(extra and extra.pop("notify", False)))
    doc = {
        "version": ARTIFACT_VERSION,
        "config": config.to_dict(),
        "program": program.to_dict(),
        "violations": [
            {"check": v.check, "vid": v.vid, "message": v.message}
            for v in report.violations
        ],
    }
    if extra:
        doc.update(extra)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict:
    """Load and minimally validate an artifact file (v1 or v2).

    The returned document always carries a normalized ``"config"``
    dict, synthesized from the top-level keys for v1 files."""
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("version")
    if version not in (1, ARTIFACT_VERSION):
        raise ValueError(
            f"unsupported artifact version {version!r} in {path}")
    config = RunConfig.from_artifact(doc)
    doc["config"] = config.to_dict()
    RmaProgram.from_dict(doc["program"]).validate()
    return doc


def replay_artifact(path: str) -> CheckReport:
    """Re-execute an artifact's program on its recorded configuration
    and re-check it; returns the fresh report.  Artifacts recorded
    with ``ir_passes`` replay through the full three-arm differential
    harness."""
    doc = load_artifact(path)
    program = RmaProgram.from_dict(doc["program"])
    return RunConfig.from_artifact(doc).check(program)
