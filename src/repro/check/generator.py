"""Seeded random program generator.

The grammar (DESIGN §11) keeps every generated program *checkable
without false positives*:

- each data variable has exactly one writer per epoch (chosen fresh at
  every epoch boundary unless the variable is "sticky"), so reads-from
  relations and admissible final values can be derived from the program
  text alone;
- every data write carries a program-unique fill byte (1..255), so
  :meth:`~repro.consistency.history.History.writer_of` never sees an
  ambiguous value;
- gets are always blocking: a non-blocking get completes at an
  unpredictable later point of the issuing rank's program, which would
  make its position in the traced program order meaningless;
- counter variables only ever receive ``+1`` so the final value is a
  pure op count and fetch returns must be distinct;
- rmw variables are touched by a single non-owner rank with blocking
  ops — the one case the zero-latency reference executor predicts
  exactly, on any fabric;
- noise puts live in the scratch half of the region, overlap each
  other, and are large enough to stay out of the consistency trace;
- the shared-window clause bursts scratch puts at the rank's node
  partner (``rank ^ 1`` under the runner's paired placement) and closes
  with a checksummed scratch "peek", so shared-mode runs exercise the
  load/store fast path and observe its flush protocol.

Roughly one program in six is *strict*: every op runs with
``RmaAttrs.strict()`` (the paper's debugging mode), which upgrades the
expected guarantee to causal/sequential consistency.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.check.program import ProgOp, RmaProgram, VarSpec

__all__ = ["generate_program", "generate_ir"]

_STRICT_ATTRS = ("ordering", "remote_completion", "atomicity", "blocking")

#: Noise-put sizes: all > 16 B (untraced) and small enough to fit the
#: scratch half of the region.
_NOISE_SIZES = (64, 96, 160, 256, 384)


def _random_attrs(rng: random.Random, strict: bool, *, read: bool = False):
    if strict:
        return _STRICT_ATTRS
    attrs = []
    if rng.random() < 0.5:
        attrs.append("ordering")
    if rng.random() < 0.35:
        attrs.append("remote_completion")
    if rng.random() < 0.2:
        attrs.append("atomicity")
    if read or rng.random() < 0.5:
        # Gets must be blocking (see module docstring); writes are
        # blocking about half the time.
        attrs.append("blocking")
    return tuple(attrs)


def generate_program(
    seed: int,
    n_ranks: Optional[int] = None,
    strict: Optional[bool] = None,
    max_epochs: int = 3,
    ops_per_rank: int = 4,
    notify: bool = False,
) -> RmaProgram:
    """Generate one random-but-valid program, deterministically from
    ``seed``.  ``n_ranks``/``strict`` override the random draws (used by
    tests and the shrinker's re-runs).

    ``notify=True`` adds the notified-RMA clause: the epoch writer of a
    data variable issues a put carrying a program-unique ``notify``
    match, and the variable's *owner* parks in ``wait_notify`` for it,
    then loads the slot — the litmus for "no notification before the
    payload is visible".  Per epoch, the set of waiting ranks and the
    set of notifying ranks are kept disjoint, so a wait chain always
    has length one and the clause can never deadlock.  The flag is off
    by default so existing seeds keep generating byte-identical
    programs.
    """
    rng = random.Random(seed * 2654435761 % (2**31))
    if n_ranks is None:
        n_ranks = rng.randint(2, 8)
    if strict is None:
        strict = rng.random() < (1.0 / 6.0)

    # -- variables -------------------------------------------------------
    vars_: List[VarSpec] = []

    def add_var(vtype: str, owner: int, user: int = -1) -> VarSpec:
        v = VarSpec(vid=len(vars_), vtype=vtype, owner=owner, user=user)
        vars_.append(v)
        return v

    data = [add_var("data", rng.randrange(n_ranks))
            for _ in range(rng.randint(2, 4))]
    counters = [add_var("counter", rng.randrange(n_ranks))
                for _ in range(rng.randint(0, 2))]
    rmws = []
    for _ in range(rng.randint(0, 2)):
        owner = rng.randrange(n_ranks)
        user = rng.choice([r for r in range(n_ranks) if r != owner])
        rmws.append(add_var("rmw", owner, user=user))

    sticky = {v.vid: rng.random() < 0.5 for v in data}
    writer: Dict[int, int] = {v.vid: rng.randrange(n_ranks) for v in data}
    rmw_value: Dict[int, int] = {v.vid: 0 for v in rmws}

    n_epochs = rng.randint(1, max_epochs)
    fill = 0  # program-unique fill byte allocator (1..255)
    match_id = 0  # program-unique notification match allocator
    ops: List[ProgOp] = []

    for epoch in range(n_epochs):
        if epoch:
            ops.append(ProgOp(rank=-1, kind="sync"))
            for v in data:
                if not sticky[v.vid]:
                    writer[v.vid] = rng.randrange(n_ranks)

        # Notified-RMA bookkeeping: ranks parked in wait_notify this
        # epoch never notify, and vice versa — disjointness bounds every
        # wait chain at length one (no deadlock by construction).
        epoch_waiters: set = set()
        epoch_notifiers: set = set()

        per_rank: Dict[int, List[ProgOp]] = {r: [] for r in range(n_ranks)}
        for rank in range(n_ranks):
            # Rank-unique epoch stagger: barrier exits are quantized to
            # sums of the fabric constants, so symmetric programs produce
            # *float-exact* cross-rank timestamp ties whose resolution is
            # event-heap insertion order — incidental state a fast path
            # cannot replicate.  A distinct sub-quantum offset per rank
            # desynchronizes the ranks the way real compute skew does,
            # so races stay races without exact-tie coin flips.
            per_rank[rank].append(ProgOp(
                rank=rank, kind="compute",
                duration=round(0.0137 * (rank + 1) + 0.0071 * epoch, 6)))
            # Feasible actions for this rank, weighted by repetition.
            actions = []
            for v in data:
                if writer[v.vid] == rank and fill < 250:
                    actions += [("write", v)] * 3
                    if notify and v.owner != rank:
                        # Notified-RMA clause (see the docstring): a
                        # notify-carrying put plus a wait/load pair at
                        # the owner.
                        actions += [("notify", v)] * 2
                actions += [("read", v)] * 2
            for v in counters:
                if v.owner != rank:
                    actions += [("count", v)] * 2
            for v in rmws:
                if v.user == rank:
                    actions += [("rmw", v)] * 2
            actions += [("order", None), ("complete", None),
                        ("compute", None)]
            if n_ranks > 1:
                actions.append(("noise", None))
                # Op-train clause: long attribute-uniform runs are what
                # the engine's vectorized fast path (DESIGN §12) detects;
                # generating them drives the fuzzer across its
                # eligibility boundary.
                actions.append(("train", None))
                # Shared-window clause: scratch traffic aimed at the
                # rank's node partner under the runner's paired
                # placement (rank r and r ^ 1 share a node in colocate
                # mode), so shared-mode runs cross the load/store fast
                # path's eligibility boundary.
                actions.append(("shared", None))

            for _ in range(rng.randint(1, ops_per_rank)):
                action, v = rng.choice(actions)
                if action == "write":
                    if fill >= 255:
                        continue
                    kind = "store" if v.owner == rank else "put"
                    if kind == "put" and not strict and fill < 248 \
                            and rng.random() < 0.35:
                        # Burst: back-to-back puts to one variable where
                        # only the `ordering` attribute sequences the
                        # later ones — the litmus most sensitive to a
                        # broken sequence-number flush.
                        burst = rng.randint(2, 3)
                        for k in range(burst):
                            fill += 1
                            attrs = (() if k == 0 and rng.random() < 0.5
                                     else ("ordering",))
                            per_rank[rank].append(ProgOp(
                                rank=rank, kind="put", var=v.vid,
                                value=fill, attrs=attrs))
                        continue
                    fill += 1
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind=kind, var=v.vid, value=fill,
                        attrs=_random_attrs(rng, strict),
                        via_xfer=kind == "put" and rng.random() < 0.25,
                    ))
                elif action == "notify":
                    owner = v.owner
                    if (rank in epoch_waiters or owner in epoch_notifiers
                            or fill >= 250):
                        continue  # would break waiter/notifier disjointness
                    epoch_notifiers.add(rank)
                    epoch_waiters.add(owner)
                    match_id += 1
                    variant = rng.random()
                    if variant < 0.35 and fill < 248:
                        # Sequence-gated: an unordered lead-in put, then
                        # the notified put with `ordering` — on a routed
                        # fabric the notified put's application stalls
                        # behind the straggler, the window where a
                        # too-early notification is observable.
                        fill += 1
                        per_rank[rank].append(ProgOp(
                            rank=rank, kind="put", var=v.vid, value=fill))
                        attrs = ("ordering",)
                    elif variant < 0.7:
                        # Serializer-staged: atomicity detours the apply
                        # through the target serializer, splitting
                        # arrival from application.
                        attrs = tuple(sorted(
                            set(_random_attrs(rng, strict)) | {"atomicity"}))
                    else:
                        attrs = _random_attrs(rng, strict)
                    fill += 1
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind="put", var=v.vid, value=fill,
                        attrs=attrs, notify=match_id))
                    # The owner parks for the delivery, then reads the
                    # slot: the notification promises this load sees the
                    # notified value (or newer).
                    per_rank[owner].append(ProgOp(
                        rank=owner, kind="wait_notify", var=v.vid,
                        notify=match_id))
                    per_rank[owner].append(ProgOp(
                        rank=owner, kind="load", var=v.vid))
                elif action == "read":
                    kind = "load" if v.owner == rank else "get"
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind=kind, var=v.vid,
                        attrs=(_random_attrs(rng, strict, read=True)
                               if kind == "get" else ()),
                        via_xfer=kind == "get" and rng.random() < 0.25,
                    ))
                elif action == "count":
                    kind = rng.choice(("acc", "fetch_add", "getacc"))
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind=kind, var=v.vid, value=1,
                        attrs=(_random_attrs(rng, strict)
                               if kind in ("acc", "getacc") else ()),
                        via_xfer=kind == "acc" and rng.random() < 0.25,
                    ))
                elif action == "rmw":
                    kind = rng.choice(("cas", "fetch_add", "swap"))
                    value = rng.randint(1, 999)
                    compare = 0
                    if kind == "cas":
                        # Half the CAS ops are hits against the tracked
                        # reference value, half deliberate misses.
                        cur = rmw_value[v.vid]
                        compare = cur if rng.random() < 0.5 else cur + 1000
                        if compare == cur:
                            rmw_value[v.vid] = value
                    elif kind == "swap":
                        rmw_value[v.vid] = value
                    else:
                        rmw_value[v.vid] += value
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind=kind, var=v.vid, value=value,
                        compare=compare,
                    ))
                elif action in ("order", "complete"):
                    target = -1
                    if rng.random() < 0.5:
                        target = rng.choice(
                            [r for r in range(n_ranks) if r != rank])
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind=action, target=target))
                elif action == "noise":
                    target = rng.choice(
                        [r for r in range(n_ranks) if r != rank])
                    nbytes = rng.choice(_NOISE_SIZES)
                    scratch = 512  # region_size // 2
                    disp = scratch + rng.randrange(0, 512 - nbytes + 1, 16)
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind="noise", target=target,
                        nbytes=nbytes, disp=disp,
                        value=rng.randint(1, 255),
                        attrs=_random_attrs(rng, strict),
                    ))
                elif action == "shared":
                    # A short scratch burst at the node partner, closed
                    # by a "peek" — a blocking get over the whole
                    # scratch span whose byte checksum becomes an op
                    # return.  The peek is the observable that catches
                    # a shared-window access skipping the in-flight
                    # op-train flush (the ``shm_skip_fence`` mutation):
                    # remote ranks train into the same scratch area, so
                    # an un-fenced direct load reads the past.
                    partner = rank ^ 1
                    if partner >= n_ranks:
                        partner = rank - 1
                    attrs = _random_attrs(rng, strict)
                    nbytes = rng.choice(_NOISE_SIZES)
                    scratch = 512
                    value = rng.randint(1, 255)
                    for _k in range(rng.randint(2, 4)):
                        disp = scratch + rng.randrange(
                            0, 512 - nbytes + 1, 16)
                        per_rank[rank].append(ProgOp(
                            rank=rank, kind="noise", target=partner,
                            nbytes=nbytes, disp=disp, value=value,
                            attrs=attrs,
                        ))
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind="peek", target=partner,
                        nbytes=512, disp=scratch,
                        attrs=_random_attrs(rng, strict, read=True),
                    ))
                elif action == "train":
                    # One attribute set, one target, one size for the
                    # whole run — exactly the uniformity the op-train
                    # fast path keys on.  Scratch-region puts like
                    # noise, so the run costs no fill bytes and stays
                    # out of the consistency trace.
                    target = rng.choice(
                        [r for r in range(n_ranks) if r != rank])
                    attrs = _random_attrs(rng, strict)
                    nbytes = rng.choice(_NOISE_SIZES)
                    scratch = 512
                    value = rng.randint(1, 255)
                    for _k in range(rng.randint(4, 8)):
                        disp = scratch + rng.randrange(
                            0, 512 - nbytes + 1, 16)
                        per_rank[rank].append(ProgOp(
                            rank=rank, kind="noise", target=target,
                            nbytes=nbytes, disp=disp, value=value,
                            attrs=attrs,
                        ))
                else:  # compute
                    per_rank[rank].append(ProgOp(
                        rank=rank, kind="compute",
                        duration=round(rng.uniform(0.5, 8.0), 3)))

        # Random interleaving that preserves each rank's program order.
        queues = [per_rank[r] for r in range(n_ranks) if per_rank[r]]
        while queues:
            q = rng.choice(queues)
            ops.append(q.pop(0))
            if not q:
                queues.remove(q)

    program = RmaProgram(
        n_ranks=n_ranks, vars=tuple(vars_), ops=tuple(ops),
        strict=strict, label=f"seed{seed}",
    )
    program.validate()
    return program


def generate_ir(seed: int, **kwargs):
    """Generate a program directly in IR form
    (:class:`repro.ir.ops.IrProgram`) — same grammar, same seeds, same
    bytes: ``generate_ir(s).to_program() == generate_program(s)``.
    Accepts :func:`generate_program`'s keyword arguments."""
    from repro.ir.ops import IrProgram  # deferred: repro.ir imports us

    return IrProgram.from_program(generate_program(seed, **kwargs))
