"""Model-based conformance fuzzing (the correctness backstop).

``repro.check`` closes the loop between the strawman RMA semantics the
paper promises (§II-B, §III) and what the simulated stack actually
delivers as it grows fast paths, transports, and routed topologies:

1. a seeded **program generator** (:mod:`repro.check.generator`) emits
   random-but-valid RMA programs — 2–8 ranks, put/get/accumulate/xfer/
   RMW with random :class:`~repro.rma.attributes.RmaAttrs`, overlapping
   scratch regions, ``complete``/``order`` variants, and interleaved
   local loads/stores;
2. a **differential oracle** (:mod:`repro.check.oracle`) executes each
   program on the full simulated stack (any fabric, optionally under a
   chaos :class:`~repro.faults.plan.FaultPlan`) *and* on a zero-latency
   atomic reference executor (:mod:`repro.check.reference`), then feeds
   the traced history through the :mod:`repro.consistency` checkers
   with the expected guarantee level derived from the attributes each
   op actually requested;
3. a **delta-debugging shrinker** (:mod:`repro.check.shrink`) minimizes
   any violating program to a smallest reproducer and serializes it as
   a replayable JSON artifact;
4. a CLI — ``python -m repro.check --seeds 0:100 --fabric all``.
"""

from repro.check.config import CONFIG_VERSION, RunConfig
from repro.check.generator import generate_ir, generate_program
from repro.check.oracle import CheckReport, CheckViolation, check_program
from repro.check.program import ProgOp, RmaProgram, VarSpec
from repro.check.runner import FABRICS, RunResult, build_world, run_program
from repro.check.shrink import load_artifact, replay_artifact, shrink

__all__ = [
    "CONFIG_VERSION",
    "FABRICS",
    "CheckReport",
    "CheckViolation",
    "RunConfig",
    "ProgOp",
    "RmaProgram",
    "RunResult",
    "VarSpec",
    "build_world",
    "check_program",
    "generate_ir",
    "generate_program",
    "load_artifact",
    "replay_artifact",
    "run_program",
    "shrink",
]
