"""The differential conformance oracle.

Given one :class:`~repro.check.runner.RunResult`, derive the guarantee
each variable's accesses actually *requested* (from their
:class:`~repro.rma.attributes.RmaAttrs`, the intervening
``order``/``complete`` calls, epoch boundaries, and the fabric's
point-to-point ordering) and verify the observed execution against it:

====================  =================================================
requested guarantee    checker applied
====================  =================================================
(always)               per-variable final state in the admissible set
                       derived from the sequenced-write partial order
(always)               every traced read legal under
                       :class:`~repro.consistency.LocationPomset`
                       frontier semantics
single sequenced       read-your-writes
writer                 (:func:`~repro.consistency.check_read_your_writes`)
counters (+1 ops)      final == reference sum; fetch returns distinct
                       and in ``[0, total)``
rmw vars               returns + final exactly equal the zero-latency
                       reference executor
strict programs        :func:`~repro.consistency.check_causal`, plus
                       :func:`~repro.consistency.check_sequential` when
                       the history fits its backtracking cap (a
                       ``Skipped`` marker is surfaced otherwise)
notified puts          the waiter's post-``wait_notify`` loads must see
                       the notified write or newer (an ``observe`` edge
                       in the pomset), and every notified put lands on
                       the target's board exactly once — dups,
                       retransmissions and chaos included
====================  =================================================

Soundness is the design priority: a sequencing edge is only assumed
when the simulated stack *must* honour it, so any reported violation is
a real semantic bug (or an injected ``conformance_mutations`` one).  In
particular, when a chaos :class:`~repro.faults.plan.FaultPlan` is
active, fabric-FIFO edges and hardware-ack remote-completion edges are
dropped: retransmissions legitimately reorder delivery, and only
engine-level gating (ordering barriers, flushes, sw acks) survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.check.program import RmaProgram
from repro.check.reference import reference_execute
from repro.check.runner import RunResult
from repro.consistency import (
    LocationPomset,
    Skipped,
    check_causal,
    check_read_your_writes,
    check_sequential,
)

__all__ = ["CheckViolation", "CheckReport", "check_program"]

_WRITE_KINDS = ("put", "store")
_READ_KINDS = ("get", "load")
_FETCH_KINDS = ("fetch_add", "getacc")


@dataclass(frozen=True)
class CheckViolation:
    """One confirmed conformance violation."""

    check: str
    message: str
    vid: int = -1

    def __str__(self) -> str:
        where = f" (var {self.vid})" if self.vid >= 0 else ""
        return f"[{self.check}]{where} {self.message}"


@dataclass
class CheckReport:
    """Outcome of checking one execution."""

    program: RmaProgram
    fabric: str
    seed: int
    violations: List[CheckViolation] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "fabric": self.fabric,
            "seed": self.seed,
            "ok": self.ok,
            "checks_run": self.checks_run,
            "skipped": self.skipped,
            "violations": [
                {"check": v.check, "vid": v.vid, "message": v.message}
                for v in self.violations
            ],
        }


class _Sequencer:
    """Derives must-happen-in-order edges between same-rank accesses."""

    def __init__(self, program: RmaProgram, *, path_ordered: bool,
                 chaos: bool) -> None:
        self.ops = program.ops
        self.epochs = program.epochs()
        self.program = program
        self.chaos = chaos
        self.fabric_fifo = path_ordered and not chaos

    def sequenced(self, i: int, j: int) -> bool:
        """Whether op ``i`` must be applied before op ``j`` issues its
        effect, for two same-rank accesses to the same variable
        (``i < j`` in canonical — hence program — order)."""
        a, b = self.ops[i], self.ops[j]
        if self.epochs[i] < self.epochs[j]:
            return True  # complete_collective drains everything
        a_local = a.kind in ("store", "load")
        b_local = b.kind in ("store", "load")
        if a_local and b_local:
            return True  # one CPU, sequential execution
        if a_local or b_local:
            return False  # mixed local/remote: no cross-layer promise
        target = self.program.var(a.var).owner
        for k in range(i + 1, j):
            o = self.ops[k]
            if (o.rank == a.rank and o.kind in ("order", "complete")
                    and (o.target < 0 or o.target == target)):
                return True  # explicit fence/flush between them
        if b.has("ordering"):
            return True  # target-side sequence barrier gates b behind a
        if a.has("blocking") and a.has("atomicity"):
            return True  # sw ack: the call waited for application
        if a.has("blocking") and a.has("remote_completion") and not self.chaos:
            # hw/sw/flush remote completion all equal application on the
            # fault-free path; under chaos a hw delivery ack may race a
            # gated application, so the edge is dropped.
            return True
        if (self.fabric_fifo and not a.has("atomicity")
                and not b.has("atomicity")):
            # FIFO fabric, both applied at delivery (atomics detour via
            # the serializer, which breaks delivery-order application).
            return True
        return False


def _uniform_fill(blob: bytes) -> Tuple[bool, int]:
    """(is_uniform, fill_byte) for a slot's final bytes."""
    first = blob[0]
    return all(b == first for b in blob), first


def check_program(result: RunResult) -> CheckReport:
    """Verify one execution; returns a report of confirmed violations."""
    program = result.program
    report = CheckReport(program=program, fabric=result.fabric,
                         seed=result.seed)
    ref = reference_execute(program)
    seq = _Sequencer(program, path_ordered=result.path_ordered,
                     chaos=result.chaos > 0.0)
    ops = program.ops
    epochs = program.epochs()
    n_epochs = (epochs[-1] + 1) if epochs else 1

    # ------------------------------------------------------------------
    # Data variables: admissible finals, pomset-legal reads, RYW.
    # ------------------------------------------------------------------
    ryw_locs: Set[Tuple[int, int, int]] = set()
    report.checks_run.append("final-state")
    report.checks_run.append("pomset-reads")

    for v in program.vars_of("data"):
        loc = result.locations[v.vid]
        widx = [i for i, op in enumerate(ops)
                if op.var == v.vid and op.kind in _WRITE_KINDS]
        ridx = [i for i, op in enumerate(ops)
                if op.var == v.vid and op.kind in _READ_KINDS]

        # -- final state ------------------------------------------------
        superseded: Set[int] = set()
        for x in widx:
            for y in widx:
                if y <= x:
                    continue
                if epochs[x] < epochs[y] or (
                        ops[x].rank == ops[y].rank and seq.sequenced(x, y)):
                    superseded.add(x)
                    break
        admissible = ({ops[i].value for i in widx if i not in superseded}
                      if widx else {0})
        uniform, fill = _uniform_fill(result.finals[v.vid])
        if not uniform:
            report.violations.append(CheckViolation(
                "final-state",
                f"torn final value {result.finals[v.vid]!r}", v.vid))
        elif fill not in admissible:
            report.violations.append(CheckViolation(
                "final-state",
                f"final value {fill} not in admissible set "
                f"{sorted(admissible)} (writes "
                f"{[(i, ops[i].value) for i in widx]})", v.vid))

        # -- match traced reads back to program reads -------------------
        # (per rank: trace order == program order, both are this rank's
        # sequential execution)
        reads_by_rank: Dict[int, List[int]] = {}
        for j in ridx:
            reads_by_rank.setdefault(ops[j].rank, []).append(j)
        read_values: Dict[int, Tuple[int, ...]] = {}
        trace_ok = True
        for rank, prog_reads in reads_by_rank.items():
            traced = [m for m in result.history.by_process(rank)
                      if m.location == loc and m.kind == "read"]
            if len(traced) != len(prog_reads):
                report.violations.append(CheckViolation(
                    "trace",
                    f"rank {rank} issued {len(prog_reads)} reads of var "
                    f"{v.vid} but traced {len(traced)}", v.vid))
                trace_ok = False
                continue
            for j, m in zip(prog_reads, traced):
                read_values[j] = tuple(m.value)

        # -- pomset frontier legality -----------------------------------
        if trace_ok:
            pom = LocationPomset(loc, initial=(0,) * 8)
            chain_of: Dict[int, Tuple[str, int]] = {}
            prev_by_rank: Dict[int, int] = {}
            n_chains = 0
            for i in widx:
                r = ops[i].rank
                p = prev_by_rank.get(r)
                if p is not None and seq.sequenced(p, i):
                    chain_of[i] = chain_of[p]
                else:
                    chain_of[i] = ("c", n_chains)
                    n_chains += 1
                prev_by_rank[r] = i
            readers = [("r", r) for r in range(program.n_ranks)]
            waits = [j for j, op in enumerate(ops)
                     if op.kind == "wait_notify" and op.var == v.vid]
            put_by_match = {ops[i].notify: i for i in widx
                           if ops[i].notify}
            wid_of: Dict[int, int] = {}
            for e in range(n_epochs):
                for i in widx:
                    if epochs[i] == e:
                        wid_of[i] = pom.write(chain_of[i],
                                              (ops[i].value,) * 8)
                for j in sorted(ridx + waits):
                    if epochs[j] != e:
                        continue
                    if ops[j].kind == "wait_notify":
                        # The wait returned, so the matching notified
                        # put is applied at this rank's memory: bind the
                        # waiter's frontier to that specific write (its
                        # chain predecessors become illegal; unrelated
                        # chains stay in the frontier).
                        i = put_by_match.get(ops[j].notify)
                        if i is not None and i in wid_of:
                            pom.observe(("r", ops[j].rank), wid_of[i])
                        continue
                    if j not in read_values:
                        continue
                    val = read_values[j]
                    if not pom.is_legal_read(("r", ops[j].rank), val):
                        report.violations.append(CheckViolation(
                            "pomset-reads",
                            f"rank {ops[j].rank} read {val[0] if len(set(val)) == 1 else val!r} "
                            f"at op {j}, outside the legal frontier "
                            f"{sorted({t[0] for t in pom.legal_read_values(('r', ops[j].rank))})}",
                            v.vid))
                # Epoch boundary: the collective completion publishes
                # every chain's latest write to every rank.
                for chain in set(chain_of.values()):
                    for reader in readers:
                        pom.synchronize(chain, reader)

        # -- read-your-writes eligibility -------------------------------
        writers = {ops[i].rank for i in widx}
        if len(writers) == 1:
            (r,) = writers
            eligible = True
            for j in ridx:
                if ops[j].rank != r:
                    continue
                prior = [i for i in widx if i < j]
                if prior and not seq.sequenced(prior[-1], j):
                    eligible = False
                    break
            if eligible:
                ryw_locs.add(loc)

    if ryw_locs:
        report.checks_run.append("read-your-writes")
        for violation in check_read_your_writes(
                result.history.restrict(ryw_locs)):
            report.violations.append(CheckViolation(
                "read-your-writes", str(violation)))

    # ------------------------------------------------------------------
    # Notified puts: exactly-once board delivery, chaos included.
    # ------------------------------------------------------------------
    notified = [(i, op) for i, op in enumerate(ops)
                if op.notify and op.kind in _WRITE_KINDS]
    if notified:
        report.checks_run.append("notify-exactly-once")
        expected: Dict[Tuple[int, int], int] = {}
        for i, op in notified:
            key = (program.var(op.var).owner, op.notify)
            expected[key] = expected.get(key, 0) + 1
        for key, want in sorted(expected.items()):
            got = result.notify_counts.get(key, 0)
            if got != want:
                report.violations.append(CheckViolation(
                    "notify-exactly-once",
                    f"match {key[1]} at rank {key[0]}: {got} board "
                    f"deliveries for {want} notified put(s)"))
        for key, got in sorted(result.notify_counts.items()):
            if got and key not in expected:
                report.violations.append(CheckViolation(
                    "notify-exactly-once",
                    f"phantom delivery: match {key[1]} at rank {key[0]} "
                    f"delivered {got}x but no program op notifies it"))

    # ------------------------------------------------------------------
    # Counter variables: exact sum, distinct in-range fetch returns.
    # ------------------------------------------------------------------
    counters = program.vars_of("counter")
    if counters:
        report.checks_run.append("counter-sum")
    for v in counters:
        total = ref.counter_sums[v.vid]
        final = result.final_int(v.vid)
        if final != total:
            report.violations.append(CheckViolation(
                "counter-sum",
                f"final {final} != expected sum {total}", v.vid))
        fetches = [i for i, op in enumerate(ops)
                   if op.var == v.vid and op.kind in _FETCH_KINDS]
        got = [result.returns[i] for i in fetches if i in result.returns]
        if len(got) != len(fetches):
            report.violations.append(CheckViolation(
                "counter-sum",
                f"{len(fetches) - len(got)} fetch return(s) missing",
                v.vid))
        if len(set(got)) != len(got):
            report.violations.append(CheckViolation(
                "counter-sum",
                f"fetch returns not distinct: {sorted(got)}", v.vid))
        for val in got:
            if not 0 <= val < max(total, 1):
                report.violations.append(CheckViolation(
                    "counter-sum",
                    f"fetch returned {val}, outside [0, {total})", v.vid))

    # ------------------------------------------------------------------
    # RMW variables: exact differential match with the reference.
    # ------------------------------------------------------------------
    rmws = program.vars_of("rmw")
    if rmws:
        report.checks_run.append("rmw-differential")
    for v in rmws:
        final = result.final_int(v.vid)
        if final != ref.finals[v.vid]:
            report.violations.append(CheckViolation(
                "rmw-differential",
                f"final {final} != reference {ref.finals[v.vid]}", v.vid))
        for i, op in enumerate(ops):
            if op.var != v.vid or op.kind not in ("cas", "swap",
                                                  "fetch_add"):
                continue
            got = result.returns.get(i)
            want = ref.returns.get(i)
            if got != want:
                report.violations.append(CheckViolation(
                    "rmw-differential",
                    f"op {i} ({op.kind}) returned {got}, reference says "
                    f"{want}", v.vid))

    # ------------------------------------------------------------------
    # Strict programs: the full consistency ladder.
    # ------------------------------------------------------------------
    if program.strict:
        report.checks_run.append("causal")
        for violation in check_causal(result.history):
            report.violations.append(CheckViolation("causal",
                                                    str(violation)))
        outcome = check_sequential(result.history)
        if isinstance(outcome, Skipped):
            report.skipped.append(f"sequential: {outcome.reason}")
        else:
            report.checks_run.append("sequential")
            for violation in outcome:
                report.violations.append(CheckViolation(
                    "sequential", str(violation)))

    return report
