"""Durability checking: the ``durable_kv`` workload and its oracle.

The workload is an open-loop replicated key-value store on a
:class:`~repro.ga.replicated.ReplicatedGlobalArray`: every rank is a
client doing seeded ``put``/``acc``/``get`` traffic (hot-key skewed,
single-writer key partitioning — client ``c`` writes keys ``k`` with
``k % n_ranks == c``, which keeps the oracle exact) while a fault plan
kills one rank mid-run (optionally restarting it, optionally under
drop/dup/delay chaos).  Clients watch the failure detector; one settle
period after their first suspicion the survivors collectively
:meth:`~repro.ga.replicated.ReplicatedGlobalArray.recover`, then keep
serving.  At the end the lowest surviving rank reads every key back.

The oracle checks the **durability contract**: an *acknowledged* write
(the workload records the ledger entry only after ``put``/``acc``
returned, i.e. after every live replica applied it) must never be
lost.  Per key it folds the issue-ordered op log into the set of
admissible finals — acked ops must apply, unacked ops (failed or
in-flight at the kill) may or may not have applied — and flags any
final outside that set.

Violations ddmin-shrink to a 1-minimal op list
(:func:`repro.check.shrink.ddmin_list`) and serialize to replayable
JSON artifacts, exactly like the conformance fuzzer's.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "KvOp", "KvCase", "KvResult", "generate_case", "run_kv", "check_kv",
    "shrink_kv", "save_kv_artifact", "load_kv_artifact",
    "replay_kv_artifact", "sweep",
]

KV_ARTIFACT_VERSION = 1
KV_ARTIFACT_KIND = "durable_kv"


@dataclass(frozen=True)
class KvOp:
    """One client operation (plain data; any subsequence is valid)."""

    client: int
    kind: str          # "put" | "acc" | "get"
    key: int
    value: float       # put value / acc delta (ignored for get)
    think: float       # pre-op think time, µs


@dataclass(frozen=True)
class KvCase:
    """One seeded durability scenario."""

    seed: int
    victim: int
    kill_at: float
    restart_at: Optional[float] = None
    n_ranks: int = 4
    n_keys: int = 16
    rf: int = 2
    chaos: float = 0.0


@dataclass
class KvResult:
    """Everything the oracle needs from one run."""

    case: KvCase
    #: key -> [(op, acked)] in issue order (single writer per key).
    key_log: Dict[int, List[Tuple[KvOp, bool]]]
    finals: Dict[int, float]
    survivors: List[int]
    deadlock: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)


def generate_case(seed: int, rf: int = 2, chaos: float = 0.0,
                  n_ranks: int = 4, n_keys: int = 16,
                  ops_per_client: int = 25) -> Tuple[KvCase, List[KvOp]]:
    """Seeded scenario + op list (deterministic in all arguments)."""
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(n_ranks))
    kill_at = float(rng.uniform(800.0, 2600.0))
    restart_at = None
    if rng.random() < 0.5:
        restart_at = kill_at + float(rng.uniform(400.0, 1200.0))
    case = KvCase(seed=seed, victim=victim, kill_at=kill_at,
                  restart_at=restart_at, n_ranks=n_ranks, n_keys=n_keys,
                  rf=rf, chaos=chaos)
    ops: List[KvOp] = []
    for client in range(n_ranks):
        crng = np.random.default_rng((seed, client))
        own = [k for k in range(n_keys) if k % n_ranks == client]
        hot = own[:max(1, min(2, len(own)))]
        for i in range(ops_per_client):
            r = crng.random()
            kind = "put" if r < 0.45 else ("acc" if r < 0.8 else "get")
            if kind == "get":
                key = int(crng.integers(n_keys))
                value = 0.0
            else:
                pool = hot if crng.random() < 0.8 else own
                key = int(pool[crng.integers(len(pool))])
                value = float(client * 1_000_000 + i) if kind == "put" \
                    else float(i + 1)
            think = float(crng.exponential(60.0) + 5.0)
            ops.append(KvOp(client, kind, key, value, think))
    return case, ops


def run_kv(case: KvCase, ops: Sequence[KvOp],
           mutations: Tuple[str, ...] = (),
           world_out: Optional[List] = None) -> KvResult:
    """Execute the workload; returns the evidence for :func:`check_kv`.

    ``world_out``, when given, receives the finished :class:`World` so
    callers (the ``--resil`` observability report) can read its full
    metrics registry, not just the summary ``stats``."""
    from repro.faults.plan import FaultPlan
    from repro.ga.global_array import GaError
    from repro.ga.replicated import ReplicatedGlobalArray
    from repro.resil.detector import ResilienceConfig
    from repro.rma.target_mem import RmaError
    from repro.runtime import World
    from repro.sim.core import SimulationError

    plan = FaultPlan().kill(case.victim, case.kill_at,
                            restart_at=case.restart_at)
    if case.chaos:
        p = case.chaos
        plan.drop(p).duplicate(p / 2).delay(p, mean=20.0)
    config = ResilienceConfig()
    world = World(n_ranks=case.n_ranks, seed=case.seed, fault_plan=plan,
                  resilience=config)

    settle = config.suspicion_timeout * 1.5
    horizon = case.kill_at + config.suspicion_timeout + settle + 2000.0
    by_client: Dict[int, List[KvOp]] = {r: [] for r in range(case.n_ranks)}
    for op in ops:
        by_client[op.client].append(op)

    key_log: Dict[int, List] = {}   # entries are mutable [op, acked]
    finals: Dict[int, float] = {}
    survivors = [r for r in range(case.n_ranks) if r != case.victim]
    reader = min(survivors)

    def program(ctx):
        ga = yield from ReplicatedGlobalArray.create(
            ctx, (case.n_keys,), dtype="float64", rf=case.rf)
        ga.conformance_mutations = frozenset(mutations)
        yield from ga.sync()
        if case.rf == 1:
            yield from ga.checkpoint()
        resil = ctx.world.resil
        my_ops = by_client[ctx.rank]
        i = 0
        first_suspect = None
        recovered = False
        while True:
            if first_suspect is None and resil.suspected(ctx.rank):
                first_suspect = ctx.sim.now
            if (not recovered and first_suspect is not None
                    and ctx.sim.now >= first_suspect + settle):
                yield from ga.recover()
                recovered = True
            if i < len(my_ops):
                op = my_ops[i]
                i += 1
                yield ctx.sim.timeout(op.think)
                if op.kind == "get":
                    try:
                        yield from ga.get(op.key)
                    except (RmaError, GaError):
                        pass
                    continue
                entry = [op, False]
                key_log.setdefault(op.key, []).append(entry)
                try:
                    if op.kind == "put":
                        yield from ga.put(op.key, [op.value])
                    else:
                        yield from ga.acc(op.key, [op.value])
                except (RmaError, GaError):
                    continue          # unacked: may or may not have applied
                entry[1] = True       # the ack point: now durable
            else:
                if ctx.sim.now >= horizon:
                    break
                yield ctx.sim.timeout(150.0)
        if ctx.rank == reader:
            yield ctx.sim.timeout(500.0)  # let peers' last acks drain
            for key in range(case.n_keys):
                finals[key] = float((yield from ga.get(key))[0])
        return None

    deadlock = None
    try:
        world.run(program, limit=horizon * 4)
    except SimulationError as exc:
        deadlock = str(exc)

    detect = world.metrics.histogram("resil.detect_latency")
    mttr = world.metrics.histogram("resil.mttr")
    stats = {
        "detect_latency_max": detect.max or 0.0,
        "mttr_max": mttr.max or 0.0,
        "suspects": world.resil.stats["suspects"],
        "false_suspects": world.resil.stats["false_suspects"],
    }
    if world_out is not None:
        world_out.append(world)
    return KvResult(
        case=case,
        key_log={k: [(op, acked) for op, acked in v]
                 for k, v in key_log.items()},
        finals=finals, survivors=survivors, deadlock=deadlock, stats=stats,
    )


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------
_ADMISSIBLE_CAP = 4096


def _admissible(log: List[Tuple[KvOp, bool]]) -> set:
    """Fold a key's issue-ordered op log into the admissible finals.

    Acked ops must apply; unacked ops may apply (at their slot, or —
    for the rare chaos-delayed stragglers — late: a late put overrides,
    late acc deltas add on top).  The per-op values are distinct
    integers in float64, so set membership is exact.
    """
    vals = {0.0}
    late_puts = set()
    late_accs = []
    for op, acked in log:
        if op.kind == "put":
            applied = {op.value}
        else:
            applied = {v + op.value for v in vals}
        if acked:
            vals = applied
        else:
            vals = vals | applied
            if op.kind == "put":
                late_puts.add(op.value)
            else:
                late_accs.append(op.value)
        if len(vals) > _ADMISSIBLE_CAP:  # pragma: no cover - safety valve
            break
    vals |= late_puts
    for delta in late_accs[:8]:
        vals |= {v + delta for v in vals}
    return vals


def check_kv(result: KvResult) -> List[str]:
    """Durability violations in ``result`` (empty list = clean run)."""
    violations: List[str] = []
    if result.deadlock is not None:
        violations.append(f"deadlock: {result.deadlock}")
        return violations
    if not result.finals:
        violations.append("no finals: reader produced no state")
        return violations
    for key in sorted(result.key_log):
        log = result.key_log[key]
        final = result.finals.get(key)
        admissible = _admissible(log)
        if final not in admissible:
            acked = [op.value for op, a in log if a]
            violations.append(
                f"key {key}: final {final!r} not admissible "
                f"(acked values {acked}, {len(log)} ops, "
                f"{len(admissible)} admissible)"
            )
    return violations


# ----------------------------------------------------------------------
# Shrinking + artifacts
# ----------------------------------------------------------------------
def shrink_kv(case: KvCase, ops: Sequence[KvOp],
              mutations: Tuple[str, ...] = (),
              max_executions: int = 200):
    """ddmin the op list to a 1-minimal still-violating reproducer.

    Returns ``(ops, violations, executions)``."""
    from repro.check.shrink import ddmin_list

    def fails(candidate: List[KvOp]) -> Optional[List[str]]:
        try:
            violations = check_kv(run_kv(case, candidate, mutations))
        except Exception:  # a weird subset crashing is not our failure
            return None
        return violations or None

    return ddmin_list(list(ops), fails, max_executions)


def save_kv_artifact(path: str, case: KvCase, ops: Sequence[KvOp],
                     violations: Sequence[str],
                     mutations: Tuple[str, ...] = ()) -> None:
    """Write a self-contained replayable durability artifact."""
    doc = {
        "version": KV_ARTIFACT_VERSION,
        "kind": KV_ARTIFACT_KIND,
        "case": asdict(case),
        "mutations": list(mutations),
        "ops": [asdict(op) for op in ops],
        "violations": list(violations),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_kv_artifact(path: str) -> Tuple[KvCase, List[KvOp], Tuple[str, ...]]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("kind") != KV_ARTIFACT_KIND:
        raise ValueError(f"{path} is not a {KV_ARTIFACT_KIND} artifact")
    if doc.get("version") != KV_ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported kv artifact version {doc.get('version')!r}")
    case = KvCase(**doc["case"])
    ops = [KvOp(**d) for d in doc["ops"]]
    return case, ops, tuple(doc.get("mutations", ()))


def replay_kv_artifact(path: str) -> List[str]:
    """Re-run a durability artifact; returns the fresh violations."""
    case, ops, mutations = load_kv_artifact(path)
    return check_kv(run_kv(case, ops, mutations))


# ----------------------------------------------------------------------
# The sweep driver (CLI's --durability mode)
# ----------------------------------------------------------------------
def sweep(seeds, *, rf: int = 2, chaos: float = 0.0,
          do_shrink: bool = False, artifact_dir: str = ".",
          mutations: Tuple[str, ...] = (), max_failures: int = 5,
          quiet: bool = False) -> int:
    """Run the durability oracle over ``seeds``; returns failure count."""
    import os

    failures = 0
    for seed in seeds:
        case, ops = generate_case(seed, rf=rf, chaos=chaos)
        result = run_kv(case, ops, mutations)
        violations = check_kv(result)
        tag = (f"seed {seed} [rf={rf} victim={case.victim} "
               f"kill@{case.kill_at:.0f}"
               + (f" restart@{case.restart_at:.0f}" if case.restart_at
                  else "") + "]")
        if not violations:
            if not quiet:
                print(f"{tag}: durable "
                      f"({sum(len(v) for v in result.key_log.values())} "
                      f"writes, detect {result.stats['detect_latency_max']:.0f}us, "
                      f"mttr {result.stats['mttr_max']:.0f}us)")
            continue
        failures += 1
        print(f"{tag}: {len(violations)} DURABILITY VIOLATION(S)")
        for v in violations:
            print(f"  {v}")
        out_ops = list(ops)
        out_violations = violations
        if do_shrink:
            try:
                out_ops, out_violations, execs = shrink_kv(
                    case, ops, mutations)
                print(f"  shrunk {len(ops)} -> {len(out_ops)} ops "
                      f"in {execs} executions")
            except ValueError:
                print("  (violation did not reproduce under shrink)")
        path = os.path.join(artifact_dir, f"kv-fail-rf{rf}-s{seed}.json")
        save_kv_artifact(path, case, out_ops, out_violations, mutations)
        print(f"  artifact: {path}")
        if failures >= max_failures:
            print(f"stopping after {failures} failing case(s)")
            break
    return failures
