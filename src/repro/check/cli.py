"""``python -m repro.check`` — the conformance-fuzzing driver.

Examples::

    python -m repro.check --seeds 0:100 --fabric all
    python -m repro.check --seeds time:60 --fabric ordered,torus --shrink
    python -m repro.check --seeds 50 --chaos 0.03
    python -m repro.check --notify --seeds 0:25 --chaos 0.02
    python -m repro.check --replay check-fail-unordered-s7.json

Exit status: 0 — every program conformed; 1 — at least one violation
(failing-program artifacts are written to ``--artifact-dir``);
2 — usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Iterator, List, Optional, Tuple

from repro.check.config import RunConfig
from repro.check.generator import generate_program
from repro.check.runner import FABRICS
from repro.check.shrink import replay_artifact, save_artifact, shrink
from repro.obs.metrics import MetricsRegistry

__all__ = ["main"]


def _parse_seeds(spec: str) -> Tuple[Optional[Iterator[int]], float]:
    """``N`` | ``A:B`` | ``time:SECONDS`` -> (seed iterator, budget).

    A time budget returns an unbounded iterator; the caller stops when
    the wall-clock budget runs out."""
    if spec.startswith("time:"):
        budget = float(spec[len("time:"):])
        if budget <= 0:
            raise ValueError("time budget must be positive")

        def unbounded() -> Iterator[int]:
            seed = 0
            while True:
                yield seed
                seed += 1

        return unbounded(), budget
    if ":" in spec:
        lo_s, hi_s = spec.split(":", 1)
        lo, hi = int(lo_s), int(hi_s)
        if hi <= lo:
            raise ValueError(f"empty seed range {spec!r}")
        return iter(range(lo, hi)), float("inf")
    n = int(spec)
    if n <= 0:
        raise ValueError("seed count must be positive")
    return iter(range(n)), float("inf")


def _parse_fabrics(spec: str) -> List[str]:
    if spec == "all":
        return sorted(FABRICS)
    names = [s.strip() for s in spec.split(",") if s.strip()]
    for name in names:
        if name not in FABRICS:
            raise ValueError(
                f"unknown fabric {name!r}; choose from {sorted(FABRICS)} "
                "or 'all'")
    if not names:
        raise ValueError("no fabrics selected")
    return names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Model-based RMA conformance fuzzing.",
    )
    parser.add_argument(
        "--seeds", default="25",
        help="N (seeds 0..N-1), A:B (half-open range), or time:SECONDS "
             "(fuzz until the wall-clock budget runs out). Default: 25.")
    parser.add_argument(
        "--fabric", default="all",
        help=f"comma-separated fabric names or 'all' "
             f"({', '.join(sorted(FABRICS))}). Default: all.")
    parser.add_argument(
        "--chaos", nargs="?", type=float, const=0.02, default=0.0,
        metavar="P",
        help="run under a lossy FaultPlan (drop/dup/delay, no kills); "
             "optional per-packet probability, default 0.02 when given "
             "without a value.")
    parser.add_argument(
        "--shrink", action="store_true",
        help="ddmin-minimize each failing program before writing its "
             "artifact.")
    parser.add_argument(
        "--replay", metavar="FILE.json",
        help="re-execute a failing-program artifact and re-check it. "
             "The artifact's recorded configuration (fabric, seed, "
             "chaos, mutations, shared machine shape) is restored "
             "automatically — --seeds/--fabric/--chaos/--shared/"
             "--mutate are ignored; durability artifacts replay "
             "through the durability oracle.")
    parser.add_argument(
        "--durability", action="store_true",
        help="run the durable_kv workload instead of conformance "
             "fuzzing: seeded kill/restart scenarios checked by the "
             "acknowledged-write durability oracle (see "
             "repro.check.durability).")
    parser.add_argument(
        "--rf", type=int, default=2,
        help="replication factor for --durability runs. Default: 2.")
    parser.add_argument(
        "--artifact-dir", default=".",
        help="where failing-program JSON artifacts are written.")
    parser.add_argument(
        "--shared", action="store_true",
        help="run every program on a paired machine (two ranks per "
             "node) with the shared-memory window flavor forced on, so "
             "co-located ops take the load/store fast path under the "
             "consistency oracle.")
    parser.add_argument(
        "--notify", action="store_true",
        help="generate programs with the notified-RMA clause: puts "
             "carrying notification matches, owner-side wait_notify + "
             "load pairs, checked for payload-before-notify and "
             "exactly-once board delivery.")
    parser.add_argument(
        "--mutate", action="append", default=[],
        metavar="NAME",
        help="apply a test-only engine mutation (e.g. drop_order_barrier) "
             "— used to prove the oracle catches planted bugs.")
    parser.add_argument(
        "--ir-opt", action="store_true",
        help="run every program through the IR optimizing pipeline and "
             "check all three differential arms (original, optimized, "
             "refinement against the original's oracle).")
    parser.add_argument(
        "--ir-passes", metavar="NAMES",
        help="comma-separated IR pass names to apply instead of the "
             "full pipeline (implies --ir-opt); test-only passes like "
             "coalesce_too_eager are allowed here.")
    parser.add_argument(
        "--max-failures", type=int, default=5,
        help="stop after this many violating programs. Default: 5.")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.replay:
        import json as _json

        with open(args.replay) as fh:
            doc = _json.load(fh)
        if doc.get("kind") == "durable_kv":
            from repro.check.durability import replay_kv_artifact

            violations = replay_kv_artifact(args.replay)
            for v in violations:
                print(f"  {v}")
            if not violations:
                print(f"replay of {args.replay}: no violation reproduced")
                return 0
            print(f"replay of {args.replay}: {len(violations)} "
                  f"violation(s) reproduced")
            return 1
        if args.shared or args.chaos or args.mutate or args.ir_opt \
                or args.ir_passes:
            print("note: --shared/--chaos/--mutate/--ir-opt are ignored "
                  "during replay; the artifact's recorded configuration "
                  "is restored instead")
        restored = RunConfig.from_artifact(doc)
        print(f"replaying {args.replay} [{restored.describe()}]")
        report = replay_artifact(args.replay)
        for v in report.violations:
            print(f"  {v}")
        if report.ok:
            print(f"replay of {args.replay}: no violation reproduced")
            return 0
        print(f"replay of {args.replay}: {len(report.violations)} "
              f"violation(s) reproduced")
        return 1

    try:
        seeds, budget = _parse_seeds(args.seeds)
        fabrics = _parse_fabrics(args.fabric)
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    if args.durability:
        from repro.check.durability import sweep

        failures = sweep(
            seeds, rf=args.rf, chaos=args.chaos, do_shrink=args.shrink,
            artifact_dir=args.artifact_dir, mutations=tuple(args.mutate),
            max_failures=args.max_failures, quiet=args.quiet,
        )
        return 1 if failures else 0

    mutations = tuple(args.mutate)
    if args.ir_passes:
        ir_passes = tuple(
            p.strip() for p in args.ir_passes.split(",") if p.strip())
    elif args.ir_opt:
        from repro.ir.passes import PIPELINE

        ir_passes = PIPELINE
    else:
        ir_passes = ()
    if ir_passes:
        from repro.ir.passes import PASSES

        for name in ir_passes:
            if name not in PASSES:
                parser.error(f"unknown IR pass {name!r}; choose from "
                             f"{sorted(PASSES)}")
    metrics = MetricsRegistry()
    programs = metrics.counter("check.programs")
    ops_counter = metrics.counter("check.ops")
    violations_counter = metrics.counter("check.violations")
    skipped_counter = metrics.counter("check.sequential_skipped")

    started = time.monotonic()
    failures = 0
    artifacts: List[str] = []

    for seed in seeds:
        if time.monotonic() - started >= budget:
            break
        program = generate_program(seed, notify=args.notify)
        for fabric in fabrics:
            if time.monotonic() - started >= budget:
                break
            config = RunConfig(
                fabric=fabric, seed=seed, chaos=args.chaos,
                mutations=mutations, shared=args.shared,
                notify=args.notify, ir_passes=ir_passes)
            report = config.check(program)
            programs.inc()
            ops_counter.inc(len(program.ops))
            skipped_counter.inc(len(report.skipped))
            for note in report.skipped:
                if not args.quiet:
                    print(f"seed {seed} [{fabric}]: skipped {note}")
            if report.ok:
                if not args.quiet:
                    arms = (", 3 differential arms"
                            if "ir-refinement" in report.checks_run else "")
                    print(f"seed {seed} [{fabric}]: ok "
                          f"({len(program.ops)} ops{arms})")
                continue

            failures += 1
            violations_counter.inc(len(report.violations))
            print(f"seed {seed} [{fabric}]: "
                  f"{len(report.violations)} VIOLATION(S)")
            for v in report.violations:
                print(f"  {v}")
            if args.shrink:
                res = shrink(program, config=config)
                program_out, report_out = res.program, res.report
                print(f"  shrunk {res.original_ops} -> {res.shrunk_ops} "
                      f"ops in {res.executions} executions")
            else:
                program_out, report_out = program, report
            path = os.path.join(
                args.artifact_dir, f"check-fail-{fabric}-s{seed}.json")
            save_artifact(path, program_out, report_out, config=config)
            artifacts.append(path)
            print(f"  artifact: {path}")
            if failures >= args.max_failures:
                break
        if failures >= args.max_failures:
            print(f"stopping after {failures} failing program(s)")
            break

    totals = metrics.counter_totals()
    print(f"checked {totals.get('check.programs', 0)} program-runs, "
          f"{totals.get('check.ops', 0)} ops, "
          f"{totals.get('check.violations', 0)} violation(s), "
          f"{totals.get('check.sequential_skipped', 0)} sequential "
          f"check(s) skipped "
          f"[{time.monotonic() - started:.1f}s]")
    if artifacts:
        print("failing-program artifacts:")
        for path in artifacts:
            print(f"  {path}")
    return 1 if failures else 0
