"""The generated-program IR.

A :class:`RmaProgram` is plain data: a set of typed variables living in
each rank's exposed region plus a single global list of operations.  The
global list order is the *canonical interleaving* (what the zero-latency
reference executor runs); per-rank program order is its restriction to
one rank.  Keeping one flat list makes delta-debugging trivial — any
subsequence of ``ops`` is again a valid program.

Region layout (one ``region_size``-byte exposure per rank):

- variable slots: 8 bytes each at ``disp = 8 * vid`` in the *owner*'s
  region (so slots never collide, whoever owns them);
- scratch: ``[region_size // 2, region_size)`` — the playground for
  "noise" puts, which deliberately overlap each other and are large
  enough (> 16 bytes) to stay out of the consistency trace, and for
  "peek" reads, blocking gets over a scratch range whose byte checksum
  becomes an op return (the observable that catches a shared-window
  access racing un-flushed in-flight traffic).

Variable types:

- ``data`` — written with whole-slot fill-byte writes (put or local
  store), read with gets/loads.  Every write carries a program-unique
  fill value so reads-from relations are unambiguous.
- ``counter`` — targeted only by accumulating ops (``acc``,
  ``fetch_add``, ``getacc``) with operand 1; checked by final sum and
  fetch-return distinctness.
- ``rmw`` — owned by one rank, *used* by exactly one other rank via
  blocking CAS/fetch-add/swap; checked exactly against the reference
  executor.

Notified RMA (DESIGN §15) appears as a ``notify`` field: a ``put``
with ``notify > 0`` carries that match value to the target's
notification board, and a ``wait_notify`` op blocks the issuing rank
until the matching delivery.  Matches are program-unique so the oracle
can attribute every board delivery to exactly one op.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["VarSpec", "ProgOp", "RmaProgram", "SLOT_BYTES"]

#: Every variable is one full 8-byte slot.
SLOT_BYTES = 8

#: Operation kinds a :class:`ProgOp` may carry.
OP_KINDS = (
    "put",        # remote whole-slot write of a data var
    "store",      # local whole-slot write of an own data var
    "get",        # remote read of a data var (always blocking)
    "load",       # local read of an own data var
    "acc",        # accumulate(sum, operand) on a counter var
    "fetch_add",  # atomic fetch-and-add on a counter or rmw var
    "getacc",     # get_accumulate(sum, operand) on a counter var
    "cas",        # compare-and-swap on an rmw var
    "swap",       # atomic swap on an rmw var
    "order",      # MPI_RMA_order to one target (or all)
    "complete",   # MPI_RMA_complete to one target (or all)
    "sync",       # collective complete_collective — an epoch boundary
    "noise",      # large overlapping put into the target's scratch area
    "peek",       # blocking get of a scratch range (returns a checksum)
    "compute",    # local compute phase (perturbs schedules)
    "wait_notify",  # block until a notified put's board delivery
)


@dataclass(frozen=True)
class VarSpec:
    """One 8-byte variable slot in some rank's exposed region."""

    vid: int
    vtype: str       # "data" | "counter" | "rmw"
    owner: int       # rank whose region holds the slot
    user: int = -1   # rmw vars: the single rank allowed to touch it

    @property
    def disp(self) -> int:
        return SLOT_BYTES * self.vid

    def to_dict(self) -> Dict[str, Any]:
        return {"vid": self.vid, "vtype": self.vtype, "owner": self.owner,
                "user": self.user}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "VarSpec":
        return cls(vid=d["vid"], vtype=d["vtype"], owner=d["owner"],
                   user=d.get("user", -1))


@dataclass(frozen=True)
class ProgOp:
    """One operation of the canonical interleaving.

    ``rank`` is the issuing rank; ``sync`` ops have ``rank = -1`` (they
    are executed by every rank).  ``attrs`` holds only the RmaAttrs
    flags that are on.  ``via_xfer`` routes put/get/acc through the
    unified ``MPI_RMA_xfer`` entry point instead of the typed call.
    """

    rank: int
    kind: str
    var: int = -1                 # vid, when the op touches a variable
    value: int = 0                # fill byte / operand / rmw value
    compare: int = 0              # cas compare value
    target: int = -1              # order/complete/noise target (-1 = all)
    attrs: Tuple[str, ...] = ()   # RmaAttrs flags that are set
    via_xfer: bool = False
    nbytes: int = 0               # noise put size
    disp: int = 0                 # noise put displacement
    duration: float = 0.0         # compute phase length (µs)
    notify: int = 0               # notification match value (0 = none);
                                  # on a put: the op notifies; on a
                                  # wait_notify: the match awaited

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")

    def has(self, flag: str) -> bool:
        return flag in self.attrs

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"rank": self.rank, "kind": self.kind}
        if self.var >= 0:
            d["var"] = self.var
        if self.value:
            d["value"] = self.value
        if self.compare:
            d["compare"] = self.compare
        if self.target >= 0:
            d["target"] = self.target
        if self.attrs:
            d["attrs"] = list(self.attrs)
        if self.via_xfer:
            d["via_xfer"] = True
        if self.nbytes:
            d["nbytes"] = self.nbytes
        if self.disp:
            d["disp"] = self.disp
        if self.duration:
            d["duration"] = self.duration
        if self.notify:
            d["notify"] = self.notify
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ProgOp":
        return cls(
            rank=d["rank"], kind=d["kind"], var=d.get("var", -1),
            value=d.get("value", 0), compare=d.get("compare", 0),
            target=d.get("target", -1), attrs=tuple(d.get("attrs", ())),
            via_xfer=d.get("via_xfer", False), nbytes=d.get("nbytes", 0),
            disp=d.get("disp", 0), duration=d.get("duration", 0.0),
            notify=d.get("notify", 0),
        )


@dataclass(frozen=True)
class RmaProgram:
    """A complete generated program (see module docstring)."""

    n_ranks: int
    vars: Tuple[VarSpec, ...]
    ops: Tuple[ProgOp, ...]
    region_size: int = 1024
    strict: bool = False    # every op ran with RmaAttrs.strict()
    label: str = ""

    # -- views -----------------------------------------------------------
    def var(self, vid: int) -> VarSpec:
        return self.vars[vid]

    def vars_of(self, vtype: str) -> List[VarSpec]:
        return [v for v in self.vars if v.vtype == vtype]

    def epochs(self) -> List[int]:
        """Epoch number of each op index (number of preceding syncs)."""
        out, epoch = [], 0
        for op in self.ops:
            out.append(epoch)
            if op.kind == "sync":
                epoch += 1
        return out

    def ops_for(self, rank: int) -> List[Tuple[int, ProgOp]]:
        """This rank's program: its own ops plus every collective sync,
        as (global index, op) pairs in canonical order."""
        return [(i, op) for i, op in enumerate(self.ops)
                if op.rank == rank or op.kind == "sync"]

    def with_ops(self, ops) -> "RmaProgram":
        return replace(self, ops=tuple(ops))

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        if not 2 <= self.n_ranks <= 64:
            raise ValueError(f"n_ranks out of range: {self.n_ranks}")
        scratch = self.region_size // 2
        if SLOT_BYTES * len(self.vars) > scratch:
            raise ValueError("variable slots overflow into scratch")
        for v in self.vars:
            if not 0 <= v.owner < self.n_ranks:
                raise ValueError(f"var {v.vid}: bad owner {v.owner}")
        for op in self.ops:
            if op.kind != "sync" and not 0 <= op.rank < self.n_ranks:
                raise ValueError(f"bad rank in {op}")
            if op.kind in ("noise", "peek"):
                if not 0 <= op.target < self.n_ranks or op.target == op.rank:
                    raise ValueError(f"bad {op.kind} target in {op}")
                if op.disp < scratch or op.disp + op.nbytes > self.region_size:
                    raise ValueError(f"{op.kind} outside scratch in {op}")
                if op.nbytes <= 16:
                    raise ValueError(
                        f"{op.kind} ops must stay untraced (> 16 B)")
            if op.var >= 0 and op.var >= len(self.vars):
                raise ValueError(f"unknown var in {op}")
            if op.kind == "wait_notify" and op.notify <= 0:
                raise ValueError(f"wait_notify needs a match value in {op}")
            if op.notify and op.kind not in ("put", "wait_notify"):
                raise ValueError(f"notify on a non-put op in {op}")

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_ranks": self.n_ranks,
            "region_size": self.region_size,
            "strict": self.strict,
            "label": self.label,
            "vars": [v.to_dict() for v in self.vars],
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RmaProgram":
        return cls(
            n_ranks=d["n_ranks"],
            region_size=d.get("region_size", 1024),
            strict=d.get("strict", False),
            label=d.get("label", ""),
            vars=tuple(VarSpec.from_dict(v) for v in d["vars"]),
            ops=tuple(ProgOp.from_dict(o) for o in d["ops"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RmaProgram":
        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:
        n_sync = sum(1 for op in self.ops if op.kind == "sync")
        return (f"<RmaProgram {self.label or 'anon'}: {self.n_ranks} ranks, "
                f"{len(self.vars)} vars, {len(self.ops)} ops, "
                f"{n_sync + 1} epoch(s){', strict' if self.strict else ''}>")
