"""Zero-latency atomic reference executor.

Executes a program's canonical op list sequentially against plain
dictionaries: every operation applies atomically and instantly, in
canonical order.  This yields *one* legal outcome of the program — the
differential baseline the oracle compares against wherever the derived
guarantees make the outcome deterministic:

- rmw variables (single blocking user): returns and final value are
  exact on any fabric, because the one user's program order *is* the
  canonical order restricted to it;
- counter variables: the final value ``init + sum(operands)`` is
  interleaving-independent (commutative ops, applied exactly once);
- fully-sequenced single-writer data variables: the final value is the
  last write of the canonical order.

Everything racy (unsequenced data writes, fetch-return interleavings)
is checked against admissible *sets* by the oracle instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.check.program import RmaProgram

__all__ = ["RefResult", "reference_execute"]


@dataclass
class RefResult:
    """Outcome of the canonical zero-latency execution."""

    #: vid -> final integer value (fill byte for data vars).
    finals: Dict[int, int] = field(default_factory=dict)
    #: global op index -> fetched old value (rmw/getacc/fetch_add ops).
    returns: Dict[int, int] = field(default_factory=dict)
    #: vid -> total accumulated into a counter var.
    counter_sums: Dict[int, int] = field(default_factory=dict)


def reference_execute(program: RmaProgram) -> RefResult:
    """Run the canonical interleaving with atomic instant application."""
    res = RefResult()
    mem: Dict[int, int] = {v.vid: 0 for v in program.vars}
    for vid in mem:
        res.counter_sums[vid] = 0

    for idx, op in enumerate(program.ops):
        kind = op.kind
        if kind in ("put", "store"):
            mem[op.var] = op.value
        elif kind in ("get", "load"):
            res.returns.setdefault(idx, mem[op.var])
        elif kind == "acc":
            mem[op.var] += op.value
            res.counter_sums[op.var] += op.value
        elif kind in ("fetch_add", "getacc"):
            res.returns[idx] = mem[op.var]
            mem[op.var] += op.value
            res.counter_sums[op.var] += op.value
        elif kind == "cas":
            res.returns[idx] = mem[op.var]
            if mem[op.var] == op.compare:
                mem[op.var] = op.value
        elif kind == "swap":
            res.returns[idx] = mem[op.var]
            mem[op.var] = op.value
        # order/complete/sync/noise/compute don't touch variables

    res.finals = dict(mem)
    return res
