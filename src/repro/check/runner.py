"""Execute a generated program on the full simulated stack.

The runner builds a traced :class:`~repro.runtime.World` for a named
fabric, runs the program's canonical op list restricted to each rank,
and collects everything the oracle needs: the consistency history, the
final bytes of every variable slot, per-op return values of the
fetching ops, and the fabric facts (path ordering, chaos) that decide
which sequencing guarantees may be assumed.

Local loads/stores are traced here with the same ``(rank, mem_id,
disp)`` location keys the RMA engine uses for small puts/gets, so one
:class:`~repro.consistency.history.History` covers both remote and
local accesses in per-rank program order.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.check.program import SLOT_BYTES, RmaProgram
from repro.consistency import History, history_from_tracer
from repro.datatypes import BYTE, INT64
from repro.faults import FaultPlan
from repro.machine import generic_cluster
from repro.network.config import (
    NetworkConfig,
    generic_rdma,
    infiniband_like,
    quadrics_like,
    seastar_portals,
)
from repro.rma.attributes import ALL_RANKS, RmaAttrs
from repro.runtime import World
from repro.topo import fattree_network, torus_network

__all__ = ["FABRICS", "RunResult", "build_world", "run_program",
           "chaos_plan"]

#: Fabric registry: name -> zero-arg NetworkConfig factory.  Routed
#: presets are sized for up to 8 ranks (the generator's maximum).
FABRICS: Dict[str, Callable[[], NetworkConfig]] = {
    "ordered": generic_rdma,
    "unordered": quadrics_like,
    "portals": seastar_portals,
    "infiniband": infiniband_like,
    "torus": lambda: torus_network((2, 2, 2)),
    "torus-adaptive": lambda: torus_network((2, 2, 2), adaptive=True),
    "fattree": lambda: fattree_network(),
}


def chaos_plan(p: float) -> FaultPlan:
    """The conformance chaos plan: lossy but survivable — drops,
    duplicates and delays, never kills or partitions."""
    return (FaultPlan()
            .drop(p)
            .duplicate(p / 2.0)
            .delay(p, mean=25.0))


@dataclass
class RunResult:
    """Everything one execution exposes to the oracle."""

    program: RmaProgram
    fabric: str
    seed: int
    chaos: float
    history: History
    #: vid -> final slot bytes (owner's memory after the closing sync).
    finals: Dict[int, bytes]
    #: global op index -> integer return (fetch_add/getacc/cas/swap/get).
    returns: Dict[int, int]
    #: vid -> the (rank, mem_id, disp) location key of its slot.
    locations: Dict[int, Tuple[int, int, int]]
    #: Whether the flat fabric preset guarantees point-to-point order.
    path_ordered: bool
    endianness: str = "little"
    sim_time: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)
    #: (target rank, match) -> board delivery count (notified puts).
    notify_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def final_int(self, vid: int) -> int:
        return int.from_bytes(self.finals[vid], self.endianness, signed=True)


def build_world(fabric: str, n_ranks: int, seed: int,
                chaos: float = 0.0, trace: bool = True,
                colocate: bool = False) -> World:
    """A world on the named fabric with ``n_ranks`` ranks.

    ``trace=False`` builds it untraced — the consistency oracle loses
    its history, but the op-train fast path (which self-disables under
    tracing) becomes reachable, so differential train-on/off runs can
    fuzz the batch timing against the per-op path.

    ``colocate=True`` packs the ranks two per node instead of one, so
    partner ranks ``(0,1), (2,3), ...`` share a cache-coherent node and
    the shared-memory window fast path becomes reachable.  Machines are
    regular (``n_nodes * ranks_per_node`` ranks always), so an odd rank
    count gets one padding rank that runs an empty program; it takes
    part in collectives only."""
    try:
        net = FABRICS[fabric]()
    except KeyError:
        raise ValueError(
            f"unknown fabric {fabric!r}; choose from {sorted(FABRICS)}"
        ) from None
    plan = chaos_plan(chaos) if chaos > 0.0 else None
    if colocate:
        machine = generic_cluster(n_nodes=(n_ranks + 1) // 2,
                                  ranks_per_node=2)
    else:
        machine = generic_cluster(n_nodes=n_ranks)
    return World(
        machine=machine,
        network=net,
        seed=seed,
        trace=trace,
        fault_plan=plan,
    )


def _i64_bytes(value: int, endianness: str) -> np.ndarray:
    order = "<" if endianness == "little" else ">"
    return np.frombuffer(
        np.array([value], dtype=np.dtype(np.int64).newbyteorder(order))
        .tobytes(),
        dtype=np.uint8,
    ).copy()


def run_program(
    program: RmaProgram,
    fabric: str,
    seed: int,
    chaos: float = 0.0,
    mutations: Tuple[str, ...] = (),
    limit: Optional[float] = 10_000_000.0,
    trace: bool = True,
    colocate: bool = False,
    shared: bool = False,
) -> RunResult:
    """Run ``program`` and collect a :class:`RunResult`.

    ``mutations`` names test-only engine misbehaviours (see
    ``RmaEngine.conformance_mutations``) used to prove the oracle can
    catch real semantic bugs.  ``trace=False`` runs untraced (empty
    history) so the op-train fast path may engage; the differential
    oracle then compares final state, returns and simulated time
    against a train-disabled run of the same program.

    ``shared=True`` turns on the shared-memory window flavor for every
    exposure (per-engine ``shared_default``) on a co-located machine
    (``colocate`` is implied): partner ranks then reach each other's
    regions by load/store.  ``colocate=True`` alone builds the paired
    machine with the flavor off — the control arm of a differential
    shared-on/off run, holding placement and topology fixed.
    """
    program.validate()
    world = build_world(fabric, program.n_ranks, seed, chaos, trace=trace,
                        colocate=colocate or shared)
    if shared:
        for ctx in world.contexts.values():
            # Instance attribute: descriptors stay wire-identical, only
            # this world's engines treat every window as shared.
            ctx.rma.engine.shared_default = True
    if mutations:
        for ctx in world.contexts.values():
            ctx.rma.engine.conformance_mutations = frozenset(mutations)

    tracer = world.tracer
    endianness = world.memories[0].space.endianness
    returns: Dict[int, int] = {}
    allocs: Dict[int, object] = {}
    mem_ids: Dict[int, int] = {}
    by_vid = {v.vid: v for v in program.vars}

    def rank_program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(
            program.region_size)
        allocs[ctx.rank] = alloc
        mem_ids[ctx.rank] = tmems[ctx.rank].mem_id
        space = ctx.mem.space
        yield from ctx.comm.barrier()

        def attrs_of(op):
            a = RmaAttrs(**{name: True for name in op.attrs})
            if op.notify and op.kind == "put":
                a = a.with_(notify=op.notify)
            return a

        for idx, op in program.ops_for(ctx.rank):
            kind = op.kind
            if kind == "sync":
                yield from ctx.rma.complete_collective(ctx.comm)
                continue
            if kind == "compute":
                yield ctx.sim.timeout(op.duration)
                continue
            if kind == "order":
                target = ALL_RANKS if op.target < 0 else op.target
                yield from ctx.rma.order(ctx.comm, target)
                continue
            if kind == "complete":
                target = ALL_RANKS if op.target < 0 else op.target
                yield from ctx.rma.complete(ctx.comm, target)
                continue

            v = by_vid.get(op.var)
            if kind == "store":
                data = np.full(SLOT_BYTES, op.value, dtype=np.uint8)
                ctx.mem.store(alloc, v.disp, data)
                tracer.record(
                    ctx.sim.now, "consistency", "write", rank=ctx.rank,
                    location=(ctx.rank, mem_ids[ctx.rank], v.disp),
                    value=(op.value,) * SLOT_BYTES,
                )
                continue
            if kind == "load":
                ctx.rma.engine.materialize_inbound()
                ctx.mem.fence()
                data = ctx.mem.load(alloc, v.disp, SLOT_BYTES)
                tracer.record(
                    ctx.sim.now, "consistency", "read", rank=ctx.rank,
                    location=(ctx.rank, mem_ids[ctx.rank], v.disp),
                    value=tuple(int(b) for b in data),
                )
                continue
            if kind == "wait_notify":
                # Block until the matching notified put's board delivery
                # on this rank's own exposure (the runner only generates
                # waits at the variable's owner).
                yield from ctx.rma.wait_notify(
                    tmems[ctx.rank], op.notify)
                continue
            if kind == "put":
                src = space.alloc(SLOT_BYTES, fill=op.value)
                a = attrs_of(op)
                if op.via_xfer:
                    yield from ctx.rma.xfer(
                        "put", src, 0, SLOT_BYTES, BYTE, tmems[v.owner],
                        v.disp, SLOT_BYTES, BYTE, attrs=a)
                else:
                    yield from ctx.rma.put(
                        src, 0, SLOT_BYTES, BYTE, tmems[v.owner], v.disp,
                        SLOT_BYTES, BYTE, attrs=a)
                continue
            if kind == "get":
                dst = space.alloc(SLOT_BYTES)
                a = attrs_of(op).with_(blocking=True)
                if op.via_xfer:
                    yield from ctx.rma.xfer(
                        "get", dst, 0, SLOT_BYTES, BYTE, tmems[v.owner],
                        v.disp, SLOT_BYTES, BYTE, attrs=a)
                else:
                    yield from ctx.rma.get(
                        dst, 0, SLOT_BYTES, BYTE, tmems[v.owner], v.disp,
                        SLOT_BYTES, BYTE, attrs=a)
                returns[idx] = int.from_bytes(
                    bytes(space.buffer(dst)[:SLOT_BYTES]), endianness,
                    signed=True)
                continue
            if kind == "acc":
                src = space.alloc(SLOT_BYTES)
                space.buffer(src)[:] = _i64_bytes(op.value, endianness)
                a = attrs_of(op)
                if op.via_xfer:
                    yield from ctx.rma.xfer(
                        "accumulate", src, 0, 1, INT64, tmems[v.owner],
                        v.disp, 1, INT64, attrs=a, accumulate_optype="sum")
                else:
                    yield from ctx.rma.accumulate(
                        src, 0, 1, INT64, tmems[v.owner], v.disp, 1,
                        INT64, op="sum", attrs=a)
                continue
            if kind == "getacc":
                buf = space.alloc(SLOT_BYTES)
                space.buffer(buf)[:] = _i64_bytes(op.value, endianness)
                yield from ctx.rma.get_accumulate(
                    buf, 0, 1, INT64, tmems[v.owner], v.disp, 1, INT64,
                    op="sum", blocking=True)
                returns[idx] = int.from_bytes(
                    bytes(space.buffer(buf)[:SLOT_BYTES]), endianness,
                    signed=True)
                continue
            if kind == "fetch_add":
                old = yield from ctx.rma.fetch_and_add(
                    tmems[v.owner], v.disp, "int64", op.value,
                    blocking=True)
                returns[idx] = int(old)
                continue
            if kind == "cas":
                old = yield from ctx.rma.compare_and_swap(
                    tmems[v.owner], v.disp, "int64", op.compare, op.value,
                    blocking=True)
                returns[idx] = int(old)
                continue
            if kind == "swap":
                old = yield from ctx.rma.swap(
                    tmems[v.owner], v.disp, "int64", op.value,
                    blocking=True)
                returns[idx] = int(old)
                continue
            if kind == "noise":
                src = space.alloc(op.nbytes, fill=op.value)
                yield from ctx.rma.put(
                    src, 0, op.nbytes, BYTE, tmems[op.target], op.disp,
                    op.nbytes, BYTE, attrs=attrs_of(op))
                continue
            if kind == "peek":
                dst = space.alloc(op.nbytes)
                a = attrs_of(op).with_(blocking=True)
                yield from ctx.rma.get(
                    dst, 0, op.nbytes, BYTE, tmems[op.target], op.disp,
                    op.nbytes, BYTE, attrs=a)
                returns[idx] = zlib.crc32(
                    bytes(space.buffer(dst)[:op.nbytes]))
                continue
            raise AssertionError(f"unhandled op kind {kind!r}")

        # Closing sync: every op applied everywhere before the final
        # state is read.  Not part of ``program.ops`` so the shrinker
        # can never remove it.
        yield from ctx.rma.complete_collective(ctx.comm)
        return None

    world.run(rank_program, limit=limit)

    finals: Dict[int, bytes] = {}
    locations: Dict[int, Tuple[int, int, int]] = {}
    for v in program.vars:
        buf = world.memories[v.owner].space.buffer(allocs[v.owner])
        finals[v.vid] = bytes(buf[v.disp:v.disp + SLOT_BYTES])
        locations[v.vid] = (v.owner, mem_ids[v.owner], v.disp)

    history = history_from_tracer(tracer)
    data_locs = {locations[v.vid] for v in program.vars
                 if v.vtype == "data"}
    history = history.restrict(data_locs)

    # Board deliveries, rekeyed from (mem_id, match) to (rank, match):
    # the exactly-once observable for notified puts.
    notify_counts: Dict[Tuple[int, int], int] = {}
    for rank, ctx in world.contexts.items():
        for (mem_id, match), n in ctx.rma.engine.notify_delivered().items():
            if mem_id == mem_ids.get(rank):
                notify_counts[(rank, match)] = \
                    notify_counts.get((rank, match), 0) + n

    return RunResult(
        program=program,
        fabric=fabric,
        seed=seed,
        chaos=chaos,
        history=history,
        finals=finals,
        returns=returns,
        locations=locations,
        path_ordered=bool(world.network.ordered),
        endianness=endianness,
        sim_time=world.sim.now,
        stats={
            "ops": len(program.ops),
            "history_ops": len(history),
            "train_ops": sum(ctx.rma.engine.stats["train_ops"]
                             for ctx in world.contexts.values()),
            "train_bytes": sum(ctx.rma.engine.stats["train_bytes"]
                               for ctx in world.contexts.values()),
            "shm_ops": sum(ctx.rma.engine.stats["shm_ops"]
                           for ctx in world.contexts.values()),
            "notifies": sum(ctx.rma.engine.stats["notifies"]
                            for ctx in world.contexts.values()),
        },
        notify_counts=notify_counts,
    )
