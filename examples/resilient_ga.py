#!/usr/bin/env python
"""Surviving a rank failure: replicated GlobalArray + ULFM recovery.

A four-rank world runs a small replicated key-value table
(``ReplicatedGlobalArray``, rf=2) while a fault plan kills rank 1
mid-run.  The survivors keep writing straight through the failure —
every acknowledged put has already reached all live replicas, so
nothing is lost — then the heartbeat detector's verdict triggers a
collective ``recover()``: agree on the dead set, shrink the
communicator, and re-replicate every under-replicated block back to
full strength.  The epilogue reads the whole table and proves every
acked write survived, and prints the detector/recovery metrics.

Run:  python examples/resilient_ga.py
"""

import numpy as np

from repro import World
from repro.faults import FaultPlan
from repro.ga.replicated import ReplicatedGlobalArray

N_KEYS = 32
WRITES_PER_RANK = 20
KILL_AT = 1200.0  # µs


def program(ctx):
    ga = yield from ReplicatedGlobalArray.create(ctx, (N_KEYS,), rf=2)
    yield from ga.sync()

    if ctx.rank == 1:  # the victim idles until the fault plan kills it
        yield ctx.sim.timeout(60_000.0)
        return None

    # write through the failure: key k belongs to rank k % n_ranks,
    # values are distinct so the final table is checkable
    acked = {}
    for i in range(WRITES_PER_RANK):
        key = (ctx.rank + 4 * i) % N_KEYS
        if key % 4 == 1:  # skip the victim's keys: nobody else writes them
            key = (key + 1) % N_KEYS
        value = float(ctx.rank * 1000 + i)
        yield from ga.put(key, [value])   # returns = all live replicas hold it
        acked[key] = value
        yield ctx.sim.timeout(90.0)

    # wait for the detector's verdict, settle, then recover collectively
    resil = ctx.world.resil
    while not resil.suspected(ctx.rank):
        yield ctx.sim.timeout(100.0)
    yield ctx.sim.timeout(1500.0)
    scomm = yield from ga.recover()
    assert scomm.size == 3 and ga.epoch == 1

    # every block is back to two live holders, none of them the dead rank
    for b in range(ga.comm.size):
        holders = ga.holders_of(b)
        assert len(holders) == 2 and 1 not in holders, (b, holders)

    # the durability check: every acked write must still be readable
    for key, value in acked.items():
        got = yield from ga.get(key)
        assert got[0] == value, (key, got[0], value)
    return len(acked)


def main():
    plan = FaultPlan().kill(rank=1, at=KILL_AT)
    world = World(n_ranks=4, seed=0, fault_plan=plan, resilience=True)
    out = world.run(program)

    checked = sum(n for n in out if n)
    detect = world.metrics.histogram("resil.detect_latency")
    mttr = world.metrics.histogram("resil.mttr")
    print(f"rank 1 killed at {KILL_AT:.0f}us; survivors wrote on")
    print(f"acked writes verified after recovery: {checked}")
    print(f"detect latency: max {detect.max:.0f}us over {detect.count} verdicts")
    print(f"recoveries: {world.metrics.counter('resil.recoveries').value}, "
          f"re-replicated {world.metrics.counter('resil.rereplicated_bytes').value} bytes, "
          f"mttr {mttr.max:.0f}us")
    assert world.resil.stats["false_suspects"] == 0


if __name__ == "__main__":
    main()
