#!/usr/bin/env python
"""Quickstart: the strawman MPI-3 RMA API in one file.

Runs a 4-rank simulated job on a generic cluster and walks through the
core API surface: non-collective memory exposure, put/get/accumulate
with attributes, request completion, ``rma_complete``/``rma_order``,
and an atomic fetch-and-add.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RmaAttrs, World
from repro.datatypes import BYTE, FLOAT64, INT32


def program(ctx):
    # -- expose memory (collective convenience wrapper) -----------------
    alloc, tmems = yield from ctx.rma.expose_collective(4096)
    # tmems[r] describes rank r's exposed region; it is plain data and
    # could equally have been shipped point-to-point (non-collective).

    if ctx.rank == 0:
        print(f"[t={ctx.sim.now:8.1f}us] rank 0 exposed "
              f"{tmems[0].size} bytes (mem_id={tmems[0].mem_id}, "
              f"{tmems[0].endianness}-endian, "
              f"{'coherent' if tmems[0].coherent else 'non-coherent'})")

    # -- a blocking, remotely-complete put -------------------------------
    if ctx.rank == 1:
        src = ctx.mem.space.alloc(64)
        ctx.mem.store(src, 0, np.arange(64, dtype=np.uint8))
        yield from ctx.rma.put(
            src, 0, 64, BYTE,          # origin: 64 bytes at offset 0
            tmems[0], 0, 64, BYTE,     # target: rank 0's region
            blocking=True, remote_completion=True,
        )
        print(f"[t={ctx.sim.now:8.1f}us] rank 1 put 64 B into rank 0 "
              "(blocking + remote completion: data is there *now*)")

    # -- nonblocking puts + one completion call --------------------------
    if ctx.rank == 2:
        src = ctx.mem.space.alloc(256, fill=7)
        reqs = []
        for i in range(4):
            req = yield from ctx.rma.put(
                src, 0, 64, BYTE, tmems[0], 256 + i * 64, 64, BYTE,
            )
            reqs.append(req)
        yield from ctx.rma.complete(ctx.comm, target_rank=0)
        print(f"[t={ctx.sim.now:8.1f}us] rank 2 pipelined 4 puts, then "
              "one rma_complete(comm, 0)")

    # -- everyone syncs, then rank 3 reads back ---------------------------
    yield from ctx.comm.barrier()
    if ctx.rank == 3:
        dst = ctx.mem.space.alloc(64)
        yield from ctx.rma.get(dst, 0, 64, BYTE, tmems[0], 0, 64, BYTE,
                               blocking=True)
        got = ctx.mem.load(dst, 0, 8).tolist()
        print(f"[t={ctx.sim.now:8.1f}us] rank 3 got rank 0's first bytes: "
              f"{got}")

    # -- accumulate: a remote float64 reduction ---------------------------
    if ctx.rank != 0:
        vals = ctx.mem.space.alloc(16)
        ctx.mem.space.view(vals, "float64")[:2] = [1.0, float(ctx.rank)]
        yield from ctx.rma.accumulate(
            vals, 0, 2, FLOAT64, tmems[0], 1024, 2, FLOAT64,
            op="sum", atomicity=True, blocking=True,
        )
    yield from ctx.rma.complete_collective(ctx.comm)
    if ctx.rank == 0:
        acc = ctx.mem.space.view(alloc, "float64", offset=1024, count=2)
        print(f"[t={ctx.sim.now:8.1f}us] atomic accumulate from 3 ranks: "
              f"{acc.tolist()}  (expect [3.0, 6.0])")

    # -- RMW: fetch-and-add on a shared counter ---------------------------
    old = yield from ctx.rma.fetch_and_add(tmems[0], 2048, "int64", 1)
    yield from ctx.comm.barrier()
    if ctx.rank == 0:
        counter = int(ctx.mem.space.view(alloc, "int64", offset=2048)[0])
        print(f"[t={ctx.sim.now:8.1f}us] 4 ranks fetch_and_add -> counter="
              f"{counter}; my (rank 0) fetched old value was {int(old)}")

    # -- strict debugging mode (per-communicator default) -----------------
    ctx.rma.set_default_attrs(RmaAttrs.strict(), ctx.comm)
    if ctx.rank == 1:
        src = ctx.mem.space.alloc(4)
        ctx.mem.space.view(src, "int32")[0] = 99
        req = yield from ctx.rma.put(src, 0, 1, INT32, tmems[0], 3072, 1,
                                     INT32)  # strict default applies
        assert req.complete  # strict => blocking: done on return
    yield from ctx.comm.barrier()
    return ctx.rank


def main():
    world = World(n_ranks=4, seed=1)
    world.run(program)
    print(f"\nsimulated time elapsed: {world.now:.1f} µs "
          f"({world.fabric.packets_delivered} packets on the fabric)")


if __name__ == "__main__":
    main()
