#!/usr/bin/env python
"""Rank placement on a 3-D torus: why the job scheduler matters.

A 3-D halo exchange (6 neighbours per rank) runs on a 4x4x4 torus —
the Cray XT's SeaStar network from the paper's §III-B1.  The *same*
communication pattern is timed under two rank-to-node placements:

- ``block``: rank r lands on host r, so logical halo neighbours are
  physical torus neighbours — every put travels one hop.
- ``random``: ranks are scattered (seeded, reproducible), so halo
  puts cross several hops, share links, and queue behind each other.

The physics is identical; only the mapping changes.  The gap is pure
network topology — invisible on the flat LogGP fabric, where every
pair of ranks is one latency apart by construction.

Run:  python examples/torus_placement.py
"""

from repro.bench.workloads import torus_halo_time
from repro.topo import torus_network

DIMS = (4, 4, 4)
HALO_BYTES = 4096
ITERS = 5


def main():
    n_hosts = DIMS[0] * DIMS[1] * DIMS[2]
    net = torus_network(DIMS)
    print(f"3-D halo exchange on a {DIMS[0]}x{DIMS[1]}x{DIMS[2]} torus "
          f"({n_hosts} ranks, {HALO_BYTES} B faces, {ITERS} iters)")
    print(f"network: {net.name}\n")

    block = torus_halo_time(dims=DIMS, halo_bytes=HALO_BYTES,
                            iterations=ITERS, placement="block")
    print(f"  block placement   : {block:9.2f} us/iter  "
          "(halo neighbours 1 hop apart)")

    for seed in (1, 2, 3):
        rand = torus_halo_time(dims=DIMS, halo_bytes=HALO_BYTES,
                               iterations=ITERS, placement="random",
                               placement_seed=seed)
        print(f"  random (seed {seed})   : {rand:9.2f} us/iter  "
              f"({rand / block:5.2f}x block)")

    print("\nSame puts, same bytes, same fabric — only the rank-to-node "
          "mapping moved.")


if __name__ == "__main__":
    main()
