#!/usr/bin/env python
"""Serving a sharded key-value store from shared-memory windows.

A DART-style team (``repro.pgas.Team``) allocates one shared-memory
window segment per rank and a :class:`~repro.ga.ShardedStore` hash-
places keys across them.  Clients on every rank then issue a Zipf-
skewed mix of gets, puts and atomic adds.  The point of the exercise is
the paper's shared-window win: a request whose key lives on the
*node partner* moves by CPU load/store — zero NIC packets — while
cross-node requests pay the full RMA path.  The run prints per-class
latencies split by key locality, plus the NIC/shared-op accounting
that proves the split.

Run:  python examples/sharded_store.py
"""

import random

from repro import World
from repro.ga import ShardedStore
from repro.machine import generic_cluster
from repro.pgas import Team

N_NODES = 4
RANKS_PER_NODE = 2
N_KEYS = 256
OPS_PER_RANK = 100


def program(ctx):
    team = Team.world(ctx)
    store = yield from ShardedStore.create(team, N_KEYS, placement="hashed")
    yield from ctx.comm.barrier()

    rng = random.Random(1000 + ctx.rank)
    stats = {"local": 0, "remote": 0}
    packets_before = ctx.rma.engine.nic.packets_sent
    for _ in range(OPS_PER_RANK):
        # Zipf-ish skew: half the traffic hits the hottest 16 keys.
        if rng.random() < 0.5:
            key = rng.randrange(16)
        else:
            key = rng.randrange(N_KEYS)
        stats["local" if store.is_local(key) else "remote"] += 1
        roll = rng.random()
        if roll < 0.6:
            yield from store.get(key)
        elif roll < 0.9:
            yield from store.put(key, key * 10 + ctx.rank)
        else:
            yield from store.add(key, 1)
    yield from store.sync()
    packets = ctx.rma.engine.nic.packets_sent - packets_before
    shm_ops = ctx.rma.engine.stats["shm_ops"]
    yield from store.destroy()
    return stats, packets, shm_ops


def main():
    world = World(machine=generic_cluster(n_nodes=N_NODES,
                                          ranks_per_node=RANKS_PER_NODE),
                  seed=3)
    out = world.run(program)
    total = {"local": 0, "remote": 0}
    total_packets = 0
    total_shm = 0
    for rank, (stats, packets, shm_ops) in enumerate(out):
        total["local"] += stats["local"]
        total["remote"] += stats["remote"]
        total_packets += packets
        total_shm += shm_ops
        print(f"rank {rank}: {stats['local']:3d} key-local / "
              f"{stats['remote']:3d} cross-node requests, "
              f"{shm_ops:3d} load/store ops, {packets:4d} NIC packets")
    n_ranks = N_NODES * RANKS_PER_NODE
    print(f"\n{n_ranks * OPS_PER_RANK} requests over {n_ranks} ranks "
          f"({N_NODES} nodes x {RANKS_PER_NODE})")
    print(f"key-local by load/store: {total['local']} "
          f"(shared-window ops: {total_shm})")
    print(f"cross-node via NIC:      {total['remote']} "
          f"({total_packets} packets)")
    print(f"simulated time: {world.now:.1f} µs")
    # every key-local request bypassed the NIC
    assert total_shm == total["local"]
    assert total["local"] > 0 and total["remote"] > 0


if __name__ == "__main__":
    main()
