#!/usr/bin/env python
"""1-D heat diffusion with RMA halo exchange — verified numerics.

A classic stencil workload: the global domain is block-distributed, and
every iteration each rank pushes its boundary cells into its
neighbours' halo slots with RMA puts, then synchronizes.  Three
synchronization strategies are compared on identical physics:

- MPI-2 fence epochs (paper Fig. 1a);
- MPI-2 post/start/complete/wait (Fig. 1b, neighbour-scoped);
- the strawman API: plain puts + ``rma_complete_collective``.

All three must produce bit-identical results, matching a serial
reference; the timings show what the synchronization style costs.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro import World
from repro.datatypes import FLOAT64

N_GLOBAL = 256
N_RANKS = 8
ITERS = 40
ALPHA = 0.25


def serial_reference():
    u = np.zeros(N_GLOBAL)
    u[N_GLOBAL // 3] = 100.0
    u[2 * N_GLOBAL // 3] = -50.0
    for _ in range(ITERS):
        left = np.roll(u, 1)
        right = np.roll(u, -1)
        left[0] = 0.0          # fixed boundaries
        right[-1] = 0.0
        u = u + ALPHA * (left - 2 * u + right)
        u[0] = u[-1] = 0.0
    return u


def make_program(mode):
    local_n = N_GLOBAL // N_RANKS

    def program(ctx):
        # layout: [halo_left][local cells][halo_right], all float64
        nbytes = (local_n + 2) * 8
        alloc, tmems = yield from ctx.rma.expose_collective(nbytes)
        win = yield from ctx.mpi2.win_create(alloc)
        u = ctx.mem.space.view(alloc, "float64")
        lo = ctx.rank * local_n
        for k in range(local_n):
            g = lo + k
            if g == N_GLOBAL // 3:
                u[1 + k] = 100.0
            elif g == 2 * N_GLOBAL // 3:
                u[1 + k] = -50.0
        left = ctx.rank - 1 if ctx.rank > 0 else None
        right = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
        # scratch buffers holding the boundary cells to push
        sbuf = ctx.mem.space.alloc(16)
        sview = ctx.mem.space.view(sbuf, "float64")

        yield from ctx.comm.barrier()
        t0 = ctx.sim.now
        for _ in range(ITERS):
            sview[0] = u[1]            # my left boundary cell
            sview[1] = u[local_n]      # my right boundary cell
            if mode == "fence":
                yield from win.fence()
                if left is not None:   # into left neighbour's right halo
                    yield from win.put(sbuf, 0, 1, FLOAT64, left,
                                       (local_n + 1) * 8)
                if right is not None:  # into right neighbour's left halo
                    yield from win.put(sbuf, 8, 1, FLOAT64, right, 0)
                yield from win.fence()
            elif mode == "pscw":
                group = [r for r in (left, right) if r is not None]
                yield from win.post(group)
                yield from win.start(group)
                if left is not None:
                    yield from win.put(sbuf, 0, 1, FLOAT64, left,
                                       (local_n + 1) * 8)
                if right is not None:
                    yield from win.put(sbuf, 8, 1, FLOAT64, right, 0)
                yield from win.complete()
                yield from win.wait()
            elif mode == "strawman":
                # note the epoch discipline this workload still needs:
                # without the trailing barrier (below, after the update)
                # a fast neighbour's *next* put could overwrite our halo
                # before we consumed it — RMA frees you from per-op
                # synchronization, not from algorithmic phases.
                if left is not None:
                    yield from ctx.rma.put(sbuf, 0, 1, FLOAT64, tmems[left],
                                           (local_n + 1) * 8, 1, FLOAT64)
                if right is not None:
                    yield from ctx.rma.put(sbuf, 8, 1, FLOAT64, tmems[right],
                                           0, 1, FLOAT64)
                yield from ctx.rma.complete_collective(ctx.comm)
            else:
                raise ValueError(mode)

            # stencil update (fixed global boundaries)
            halo_l = u[0] if left is not None else 0.0
            halo_r = u[local_n + 1] if right is not None else 0.0
            interior = u[1 : local_n + 1].copy()
            shifted_l = np.concatenate(([halo_l], interior[:-1]))
            shifted_r = np.concatenate((interior[1:], [halo_r]))
            new = interior + ALPHA * (shifted_l - 2 * interior + shifted_r)
            if ctx.rank == 0:
                new[0] = 0.0
            if ctx.rank == ctx.size - 1:
                new[-1] = 0.0
            u[1 : local_n + 1] = new
            if mode == "strawman":
                yield from ctx.comm.barrier()  # halos consumed: next epoch
        elapsed = ctx.sim.now - t0
        result = yield from ctx.comm.gather(u[1 : local_n + 1].copy(), root=0)
        if ctx.rank == 0:
            return (np.concatenate(result), elapsed)
        return (None, elapsed)

    return program


def main():
    ref = serial_reference()
    print(f"1-D heat diffusion, {N_GLOBAL} cells / {N_RANKS} ranks, "
          f"{ITERS} iterations\n")
    for mode in ("fence", "pscw", "strawman"):
        world = World(n_ranks=N_RANKS)
        out = world.run(make_program(mode))
        field = out[0][0]
        per_iter = max(e for _, e in out) / ITERS
        err = float(np.abs(field - ref).max())
        status = "OK" if err < 1e-12 else f"MISMATCH (max err {err:.2e})"
        print(f"{mode:>9}: {per_iter:8.2f} µs/iter   numerics: {status}")
        assert err < 1e-12, mode


if __name__ == "__main__":
    main()
