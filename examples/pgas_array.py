#!/usr/bin/env python
"""PGAS-style programming: a Global-Arrays library on the strawman API.

The paper's §II motivation in miniature: ``repro.ga.GlobalArray`` is a
library-level global address space built purely on the strawman RMA
interface.  This example runs a distributed matrix-vector product where
rows are processed via *work stealing* (an atomic read-inc counter), so
any rank may compute any row — fetching the row and the vector with
one-sided gets and accumulating its contribution back, no matter who
owns what.

Run:  python examples/pgas_array.py
"""

import numpy as np

from repro import World
from repro.ga import GlobalArray

N = 48  # matrix is N x N


def program(ctx):
    A = yield from GlobalArray.create(ctx, (N, N))
    x = yield from GlobalArray.create(ctx, (N,))
    y = yield from GlobalArray.create(ctx, (N,))
    counter = yield from GlobalArray.create(ctx, (1,), dtype="int64")

    # rank 0 initializes A and x through one-sided puts only
    if ctx.rank == 0:
        rng = np.random.default_rng(7)
        yield from A.put((slice(0, N), slice(0, N)),
                         rng.integers(-3, 4, (N, N)).astype(float))
        yield from x.put(slice(0, N), rng.integers(-2, 3, N).astype(float))
    yield from y.fill(0.0)
    yield from counter.fill(0)
    yield from A.sync()
    yield from x.sync()

    # work-stolen y = A @ x : grab rows off the shared counter
    xv = yield from x.get(slice(0, N))
    rows_done = 0
    while True:
        row = yield from counter.read_inc(0)
        if row >= N:
            break
        arow = yield from A.get((row, slice(0, N)))
        yield from ctx.compute(2.0)  # the flops
        yield from y.put((row,), np.array([float(arow.reshape(-1) @ xv)]))
        rows_done += 1
    yield from y.sync()

    result = None
    if ctx.rank == 0:
        yv = yield from y.get(slice(0, N))
        av = yield from A.get((slice(0, N), slice(0, N)))
        result = (yv, av, xv)
    yield from A.destroy()
    yield from x.destroy()
    yield from y.destroy()
    yield from counter.destroy()
    return (result, rows_done)


def main():
    world = World(n_ranks=6, seed=11)
    out = world.run(program)
    (yv, av, xv), _ = out[0]
    ref = av @ xv
    err = float(np.abs(yv - ref).max())
    shares = [r for _, r in out]
    print(f"distributed mat-vec, {N}x{N} over 6 ranks (work-stolen rows)")
    print(f"rows per rank: {shares} (sum={sum(shares)})")
    print(f"max |y - A@x| = {err:.2e}")
    print(f"simulated time: {world.now:.1f} µs")
    assert err == 0.0
    assert sum(shares) == N


if __name__ == "__main__":
    main()
