#!/usr/bin/env python
"""A streaming pipeline built from notified RMA — no two-sided messages.

Four ranks form a chain: a source, two transform stages and a sink.
Adjacent stages are connected by :class:`repro.notify.NotifyQueue`, a
single-producer/single-consumer ring that lives in the *consumer's*
window.  A push is one RMA put carrying a notification (the payload is
guaranteed visible before the consumer's ``wait_notify`` returns) and
flow control is a credit notification travelling the other way — the
producer parks only when the ring is full.

The same work is then run with the flush-style alternative the paper's
strawman would force: every hand-off is a put + full completion + an
ack put the receiver polls with a second completion.  Both variants
compute identical results; the simulated clock shows what carrying the
notification on the data packet saves.

Run:  python examples/notified_pipeline.py
"""

import numpy as np

from repro import World
from repro.datatypes import BYTE
from repro.notify import NotifyQueue

N_RANKS = 4
ITEMS = 24
SLOT = 64
CAPACITY = 3


def transform(stage, data):
    """Each stage adds its (1-based) stage number to every byte."""
    return (data + stage) % np.uint8(251)


def expected_checksum():
    vals = np.arange(ITEMS, dtype=np.uint64) % 251
    # two transform stages: +1 then +2
    return int(((vals + 3) % 251).sum())


def notified_program(ctx):
    queues = []
    for stage in range(ctx.size - 1):
        q = yield from NotifyQueue.create(
            ctx, producer=stage, consumer=stage + 1,
            capacity=CAPACITY, slot_bytes=SLOT, name=f"hop{stage}")
        queues.append(q)
    yield from ctx.comm.barrier()
    t0 = ctx.sim.now
    checksum = 0
    if ctx.rank == 0:
        for i in range(ITEMS):
            yield from queues[0].push(
                np.full(SLOT, i % 251, dtype=np.uint8))
    elif ctx.rank < ctx.size - 1:
        for _ in range(ITEMS):
            data = yield from queues[ctx.rank - 1].pop()
            yield from queues[ctx.rank].push(transform(ctx.rank, data))
    else:
        for _ in range(ITEMS):
            data = yield from queues[ctx.rank - 1].pop()
            checksum += int(data[0])
    elapsed = ctx.sim.now - t0
    yield from ctx.comm.barrier()
    return elapsed, checksum


def flush_program(ctx):
    """The same chain, hand-synchronized: every hand-off is a payload
    put + full completion, a sequence-flag put the receiver polls with
    RMA reads of its own window, and an ack flag travelling back
    before the sender may reuse the slot."""
    nbytes = SLOT + 16  # payload slot + sequence flag + ack flag
    alloc, tmems = yield from ctx.rma.expose_collective(nbytes)
    sbuf = ctx.mem.space.alloc(SLOT)
    sview = ctx.mem.space.view(sbuf, "uint8")
    fbuf = ctx.mem.space.alloc(8)
    fview = ctx.mem.space.view(fbuf, "uint8")
    pbuf = ctx.mem.space.alloc(SLOT)  # poll/copy-out landing buffer
    pview = ctx.mem.space.view(pbuf, "uint8")
    yield from ctx.comm.barrier()
    t0 = ctx.sim.now
    checksum = 0

    def poll(disp, want):
        # Flush-style completion detection: read the flag through the
        # RMA interface (a get on our own window) until it advances.
        while True:
            yield from ctx.rma.get(pbuf, 0, 1, BYTE,
                                   tmems[ctx.rank], disp, 1, BYTE,
                                   blocking=True)
            if int(pview[0]) >= want:
                return
            yield ctx.sim.timeout(1.0)

    def send(item_no, data):
        sview[:] = data
        yield from ctx.rma.put(sbuf, 0, SLOT, BYTE,
                               tmems[ctx.rank + 1], 0, SLOT, BYTE,
                               blocking=True, remote_completion=True)
        fview[0] = item_no + 1
        yield from ctx.rma.put(fbuf, 0, 1, BYTE,
                               tmems[ctx.rank + 1], SLOT, 1, BYTE,
                               blocking=True, remote_completion=True)
        yield from poll(SLOT + 8, item_no + 1)  # wait for the ack

    def recv(item_no):
        yield from poll(SLOT, item_no + 1)      # wait for the flag
        yield from ctx.rma.get(pbuf, 0, SLOT, BYTE,
                               tmems[ctx.rank], 0, SLOT, BYTE,
                               blocking=True)
        data = pview[:SLOT].copy()
        fview[0] = item_no + 1                  # slot free: ack upstream
        yield from ctx.rma.put(fbuf, 0, 1, BYTE,
                               tmems[ctx.rank - 1], SLOT + 8, 1, BYTE,
                               blocking=True, remote_completion=True)
        return data

    if ctx.rank == 0:
        for i in range(ITEMS):
            yield from send(i, np.full(SLOT, i % 251, dtype=np.uint8))
    elif ctx.rank < ctx.size - 1:
        for i in range(ITEMS):
            data = yield from recv(i)
            yield from send(i, transform(ctx.rank, data))
    else:
        for i in range(ITEMS):
            data = yield from recv(i)
            checksum += int(data[0])
    elapsed = ctx.sim.now - t0
    yield from ctx.rma.complete_collective(ctx.comm)
    return elapsed, checksum


def run(program):
    world = World(n_ranks=N_RANKS, seed=0)
    out = world.run(program)
    makespan = max(e for e, _ in out)
    return makespan, out[-1][1], world


def main():
    want = expected_checksum()

    t_notify, sum_notify, world = run(notified_program)
    assert sum_notify == want, (sum_notify, want)
    metrics = world.collect_metrics()
    lat = metrics.histogram("notify.latency_us", rank=1)

    t_flush, sum_flush, _ = run(flush_program)
    assert sum_flush == want, (sum_flush, want)

    print(f"{ITEMS} items through {N_RANKS - 1} hops "
          f"(capacity {CAPACITY}, {SLOT} B slots)")
    print(f"  notified queues : {t_notify:8.1f} us simulated "
          f"({t_notify / ITEMS:6.2f} us/item)")
    print(f"  flush + ack poll: {t_flush:8.1f} us simulated "
          f"({t_flush / ITEMS:6.2f} us/item)")
    print(f"  speedup         : {t_flush / t_notify:8.2f}x")
    print(f"  checksum        : {sum_notify} (matches serial reference)")
    if lat is not None and lat.count:
        print(f"  notify latency  : {lat.count} deliveries at rank 1, "
              f"max {lat.max:.2f} us")


if __name__ == "__main__":
    main()
