#!/usr/bin/env python
"""Consistency models, observed and checked (paper §II-B / §III-A).

Runs small RMA litmus programs on different fabric personalities with
tracing on, extracts read/write histories, and feeds them to the
checkers — showing concretely which attribute buys which consistency
model:

1. no attributes on an unordered fabric → read-your-writes can fail;
2. the ordering attribute restores it;
3. independent writers without atomicity → causally fine, sequentially
   inconsistent observations are possible;
4. the location-consistency pomset shows what a non-coherent machine is
   allowed to return before/after synchronization.

Run:  python examples/consistency_litmus.py
"""

from repro import World
from repro.consistency import (
    LocationPomset,
    check_causal,
    check_read_your_writes,
    check_sequential,
    history_from_tracer,
)
from repro.datatypes import BYTE
from repro.network import quadrics_like
from repro.rma import RmaAttrs


def put_then_get(ordering):
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(16)
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(8, fill=42)
            dst = ctx.mem.space.alloc(8)
            attrs = RmaAttrs(ordering=ordering)
            yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                   attrs=attrs)
            yield from ctx.rma.get(dst, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                   attrs=attrs.with_(blocking=True))
        yield from ctx.comm.barrier()

    return program


def main():
    # -- 1 & 2: read-your-writes vs the ordering attribute ---------------
    print("litmus 1/2: put;get on an unordered (Quadrics-like) fabric")
    stale = 0
    for seed in range(30):
        w = World(n_ranks=2, network=quadrics_like(), seed=seed, trace=True)
        w.run(put_then_get(ordering=False))
        if check_read_your_writes(history_from_tracer(w.tracer)):
            stale += 1
    print(f"  no attributes : {stale}/30 seeds violate read-your-writes")

    stale = 0
    for seed in range(30):
        w = World(n_ranks=2, network=quadrics_like(), seed=seed, trace=True)
        w.run(put_then_get(ordering=True))
        if check_read_your_writes(history_from_tracer(w.tracer)):
            stale += 1
    print(f"  ordering attr : {stale}/30 seeds violate read-your-writes\n")
    assert stale == 0

    # -- 3: IRIW — causal but not sequential ------------------------------
    print("litmus 3: independent reads of independent writes (IRIW)")
    from repro.consistency import History

    h = History()
    h.write(0, "x", 1)
    h.write(1, "y", 1)
    h.read(2, "x", 1)
    h.read(2, "y", 0)
    h.read(3, "y", 1)
    h.read(3, "x", 0)
    causal = check_causal(h)
    seq = check_sequential(h)
    print(f"  causal check    : {'OK' if not causal else causal[0]}")
    print(f"  sequential check: "
          f"{'OK' if not seq else 'VIOLATION — ' + seq[0].message}")
    print("  => exactly the gap the atomicity attribute (serialization)"
          " closes\n")

    # -- 4: location consistency on a non-coherent machine -----------------
    print("litmus 4: location-consistency pomset (NEC-SX-style memory)")
    p = LocationPomset("flag")
    p.write(0, "new")
    print(f"  before any sync, P1 may legally read: "
          f"{p.legal_read_values(1)}")
    p.synchronize(before_process=0, after_process=1)
    print(f"  after a fence/sync edge, P1 may read : "
          f"{p.legal_read_values(1)}")


if __name__ == "__main__":
    main()
