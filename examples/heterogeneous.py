#!/usr/bin/env python
"""RMA across a hybrid machine (paper §III-B3).

A Roadrunner-flavoured system: big-endian 64-bit host nodes plus
little-endian 32-bit accelerator nodes, all as first-class MPI tasks.
The strawman API's ``target_mem`` descriptors carry the target's
address-space properties, and MPI datatypes drive representation
conversion — so typed puts and gets cross the endianness boundary
transparently while raw byte transfers stay untouched.

Run:  python examples/heterogeneous.py
"""

import numpy as np

from repro import World, hybrid_accelerator
from repro.datatypes import BYTE, FLOAT64, INT32, struct_type


def program(ctx):
    alloc, tmems = yield from ctx.rma.expose_collective(4096)
    me = tmems[ctx.rank]
    if ctx.rank == 0:
        print("node personalities (from the target_mem descriptors):")
        for r, tm in enumerate(tmems):
            print(f"  rank {r}: {tm.endianness:>6}-endian, "
                  f"{tm.pointer_bits}-bit address space")
        print()

    host, accel = 0, 2  # big-endian 64-bit vs little-endian 32-bit

    # -- typed put: accelerator -> host, converted automatically --------
    if ctx.rank == accel:
        src = ctx.mem.space.alloc(64)
        ctx.mem.space.view(src, "int32")[:4] = [1, 2, 3, 0x01020304]
        yield from ctx.rma.put(src, 0, 4, INT32, tmems[host], 0, 4, INT32,
                               blocking=True, remote_completion=True)
    yield from ctx.comm.barrier()
    if ctx.rank == host:
        vals = ctx.mem.space.view(alloc, "int32", count=4).tolist()
        raw = ctx.mem.load(alloc, 12, 4).tolist()
        print(f"host reads typed int32s: {vals[:3]} + {vals[3]:#x}")
        print(f"host raw bytes of the 4th value: {raw} "
              "(big-endian storage, as the host expects)")

    # -- typed get: host data read by the accelerator ---------------------
    if ctx.rank == host:
        ctx.mem.space.view(alloc, "float64", offset=64, count=2)[:] = [
            3.14159, -2.5,
        ]
    yield from ctx.comm.barrier()
    if ctx.rank == accel:
        dst = ctx.mem.space.alloc(16)
        yield from ctx.rma.get(dst, 0, 2, FLOAT64, tmems[host], 64, 2,
                               FLOAT64, blocking=True)
        got = ctx.mem.space.view(dst, "float64").tolist()
        print(f"accelerator gets host float64s: {got}")

    # -- struct datatype across the boundary ------------------------------
    record = struct_type([1, 1], [0, 8], [INT32, FLOAT64], extent=16)
    if ctx.rank == accel:
        src = ctx.mem.space.alloc(32)
        ctx.mem.space.view(src, "int32", offset=0)[0] = 7
        ctx.mem.space.view(src, "float64", offset=8, count=1)[0] = 0.5
        yield from ctx.rma.put(src, 0, 1, record, tmems[host], 128, 1,
                               record, blocking=True,
                               remote_completion=True)
    yield from ctx.comm.barrier()
    if ctx.rank == host:
        i = int(ctx.mem.space.view(alloc, "int32", offset=128, count=1)[0])
        f = float(
            ctx.mem.space.view(alloc, "float64", offset=136, count=1)[0]
        )
        print(f"host reads mixed struct: int={i} float={f} "
              "(per-field conversion granularity)")

    # -- 32-bit address-space limits are enforced --------------------------
    if ctx.rank == host:
        src = ctx.mem.space.alloc(8)
        try:
            bad = tmems[accel]
            # a displacement beyond the 32-bit space must be rejected
            from dataclasses import replace

            huge = replace(bad, size=2**40)
            yield from ctx.rma.put(src, 0, 8, BYTE, huge, 2**33, 8, BYTE)
        except Exception as err:
            print(f"oversized displacement rejected: {err}")
    yield from ctx.comm.barrier()


def main():
    world = World(machine=hybrid_accelerator(n_host_nodes=2,
                                             n_accel_nodes=2))
    world.run(program)
    print(f"\nsimulated time: {world.now:.1f} µs")


if __name__ == "__main__":
    main()
