#!/usr/bin/env python
"""Regenerate the paper's Figure 2 as a table and ASCII plot.

"The cost of each attribute on the Cray XT5": 7 origin ranks each issue
100 blocking RMA Puts to overlapping memory on rank 0, then one
RMA_Complete, for payload sizes 8 B – 1 KB, under the paper's four
measured configurations (plus both serializers for atomicity).

Run:  python examples/figure2.py
"""

from repro.bench import FIG2_ATTR_MODES, fig2_attribute_cost, format_table
from repro.bench.harness import Series

SIZES = [8, 16, 32, 64, 128, 256, 512, 1024]


def ascii_plot(series, sizes, width=60, height=16):
    """A rough log-x scatter plot, one mark per series."""
    marks = "ox+*#"
    all_vals = [v for s in series.values() for v in s.values]
    lo, hi = min(all_vals), max(all_vals)
    rows = [[" "] * width for _ in range(height)]
    import math

    for si, (label, s) in enumerate(series.items()):
        for i, size in enumerate(sizes):
            x = int(
                (math.log(size) - math.log(sizes[0]))
                / (math.log(sizes[-1]) - math.log(sizes[0]))
                * (width - 1)
            )
            y = int((s.values[i] - lo) / (hi - lo) * (height - 1))
            rows[height - 1 - y][x] = marks[si % len(marks)]
    out = [f"{hi / 1000:8.2f} ms +" + "-" * width]
    for row in rows:
        out.append(" " * 11 + "|" + "".join(row))
    out.append(f"{lo / 1000:8.2f} ms +" + "-" * width)
    out.append(" " * 12 + f"{sizes[0]} B" + " " * (width - 12) + f"{sizes[-1]} B")
    legend = "   ".join(
        f"{marks[i % len(marks)]}={label}"
        for i, label in enumerate(series)
    )
    out.append("  " + legend)
    return "\n".join(out)


def main():
    series = {}
    for mode in FIG2_ATTR_MODES:
        print(f"running {mode} ...", flush=True)
        series[mode] = Series(
            mode, [fig2_attribute_cost(mode, s) for s in SIZES]
        )
    print()
    print(format_table(
        "Figure 2: time (ms) for 100 RMA Puts + 1 RMA Complete",
        "bytes/put", SIZES, series, unit="ms", scale=1e-3,
    ))
    print()
    print(ascii_plot(series, SIZES))


if __name__ == "__main__":
    main()
